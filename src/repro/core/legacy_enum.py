"""Pre-refactor reference enumerators (frozen for cross-checks and benchmarks).

``LegacyADCEnum`` and ``LegacyMMCS`` are faithful snapshots of the
enumeration core *before* it was rebuilt on packed uint64 word planes
(:mod:`repro.core.adc_enum` / :mod:`repro.core.hitting_set`).  They are kept
for two purposes only:

* the cross-check tests assert that the word-native enumerators emit
  **bit-identical** output lists (same masks, same order, same scores);
* ``benchmarks/bench_enum_core.py`` measures the word-native speedup against
  this exact pre-refactor baseline.

Do not use these classes in the pipeline; they deliberately retain the
Python-int mask churn (per-node ``mask_to_words`` splits, ``evidence.masks``
lookups, ``dict[int, set[int]]`` criticality bookkeeping with ``np.fromiter``
round-trips) that the word-native core eliminates.

One deviation from the historical code is pinned down on purpose:
``LegacyMMCS._choose_subset`` iterates the uncovered set in **sorted index
order** rather than Python-set order, so its tie-breaking (lowest index among
the subsets with the fewest candidate elements) is well defined.  The
word-native :class:`~repro.core.hitting_set.MMCS` implements the same rule,
which is what lets the cross-check assert exact output order instead of mere
set equality; the enumerated *set* of minimal hitting sets is unaffected by
the choice rule.
"""

from __future__ import annotations

import math
import sys
from typing import Iterator, Sequence

import numpy as np

from repro.core.adc_enum import DiscoveredADC, EnumerationStatistics, SelectionStrategy
from repro.core.approximation import ApproximationFunction, F1
from repro.core.dc import DenialConstraint
from repro.core.evidence import EvidenceSet
from repro.core.hitting_set import MMCSStatistics
from repro.core.predicate_space import iter_bits

_WORD_BITS = 64
_WORD_MASK = 0xFFFFFFFFFFFFFFFF


def _legacy_mask_to_words(mask: int, n_words: int) -> np.ndarray:
    """The pre-refactor word splitter (Python loop over word shifts)."""
    words = np.zeros(n_words, dtype=np.uint64)
    for word in range(n_words):
        words[word] = (mask >> (_WORD_BITS * word)) & _WORD_MASK
    return words


class LegacyADCEnum:
    """The pre-refactor ADCEnum (Python-int masks inside the recursion)."""

    def __init__(
        self,
        evidence: EvidenceSet,
        function: ApproximationFunction | None = None,
        epsilon: float = 0.01,
        selection: SelectionStrategy = "max",
        max_dc_size: int | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if selection not in ("max", "min", "random"):
            raise ValueError(f"unknown selection strategy {selection!r}")
        self.evidence = evidence
        self.function = function if function is not None else F1()
        self.epsilon = float(epsilon)
        self.selection: SelectionStrategy = selection
        self.max_dc_size = max_dc_size
        self.statistics = EnumerationStatistics()
        if self.function.requires_participation and not evidence.has_participation:
            raise ValueError(
                f"approximation function {self.function.name} needs tuple participation; "
                "build the evidence set with include_participation=True"
            )
        self._n_evidences = len(self.evidence)
        self._n_words = self.evidence.n_words
        self._ev_words = self.evidence.words
        self._counts = np.asarray(self.evidence.counts, dtype=np.int64)
        self._contains = self.evidence.predicate_membership()

    def enumerate(self) -> list[DiscoveredADC]:
        return list(self.iter_adcs())

    def iter_adcs(self) -> Iterator[DiscoveredADC]:
        self.statistics = EnumerationStatistics()
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 50_000))

        space = self.evidence.space
        uncov = np.arange(self._n_evidences, dtype=np.int64)
        can_hit = np.ones(self._n_evidences, dtype=bool)
        uncovered_pairs = int(self._counts.sum()) if self._n_evidences else 0
        cand = (1 << len(space)) - 1
        crit: dict[int, set[int]] = {}
        seen_outputs: set[int] = set()

        yield from self._search(
            s_mask=0,
            s_elements=[],
            crit=crit,
            uncov=uncov,
            uncovered_pairs=uncovered_pairs,
            cand=cand,
            can_hit=can_hit,
            seen_outputs=seen_outputs,
        )

    def _violation_score(self, uncov_indices: Sequence[int], uncovered_pairs: int) -> float:
        total = self.evidence.total_pairs
        if total == 0:
            return 0.0
        pair_fraction = uncovered_pairs / total
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return math.inf
        return self.function.violation_score(self.evidence, uncov_indices)

    def _passes(self, uncov_indices: Sequence[int], uncovered_pairs: int) -> bool:
        return self._violation_score(uncov_indices, uncovered_pairs) <= self.epsilon

    def _passes_lazy(self, uncov: np.ndarray, uncovered_pairs: int) -> bool:
        total = self.evidence.total_pairs
        if total == 0:
            return True
        pair_fraction = uncovered_pairs / total
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut <= self.epsilon
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return False
        score = self.function.violation_score(self.evidence, uncov)
        return score <= self.epsilon

    def _is_minimal(
        self,
        s_elements: list[int],
        crit: dict[int, set[int]],
        uncov: np.ndarray,
        uncovered_pairs: int,
    ) -> bool:
        self.statistics.minimality_checks += 1
        uncov_indices: list[int] | None = None
        for element in s_elements:
            critical = crit.get(element, set())
            extra_pairs = int(self._counts[list(critical)].sum()) if critical else 0
            pair_fraction_known = self.function.violation_score_from_pair_fraction(
                (uncovered_pairs + extra_pairs) / max(self.evidence.total_pairs, 1),
                self.evidence.total_pairs,
            )
            if pair_fraction_known is not None:
                if pair_fraction_known <= self.epsilon:
                    return False
                continue
            if uncov_indices is None:
                uncov_indices = uncov.tolist()
            if self._passes(uncov_indices + list(critical), uncovered_pairs + extra_pairs):
                return False
        return True

    def _search(
        self,
        s_mask: int,
        s_elements: list[int],
        crit: dict[int, set[int]],
        uncov: np.ndarray,
        uncovered_pairs: int,
        cand: int,
        can_hit: np.ndarray,
        seen_outputs: set[int],
    ) -> Iterator[DiscoveredADC]:
        self.statistics.recursive_calls += 1
        space = self.evidence.space

        if self._passes_lazy(uncov, uncovered_pairs):
            if self._is_minimal(s_elements, crit, uncov, uncovered_pairs):
                yield from self._emit(s_mask, uncov, seen_outputs)
            return

        cand_words = _legacy_mask_to_words(cand, self._n_words)
        overlap = (self._ev_words[uncov] & cand_words).any(axis=1)
        hittable = can_hit[uncov]
        selectable = uncov[hittable & overlap]
        if selectable.size == 0:
            return
        chosen = self._choose_evidence(selectable, cand_words)
        chosen_mask = self.evidence.masks[chosen]

        reduced_cand = cand & ~chosen_mask
        reduced_words = _legacy_mask_to_words(reduced_cand, self._n_words)
        reduced_overlap = (self._ev_words[uncov] & reduced_words).any(axis=1)
        blocked = uncov[hittable & ~reduced_overlap]
        will_cover_uncov = uncov[~reduced_overlap]
        will_cover_pairs = int(self._counts[will_cover_uncov].sum())
        if self._passes_lazy(will_cover_uncov, will_cover_pairs):
            self.statistics.skip_branches += 1
            can_hit[blocked] = False
            yield from self._search(
                s_mask, s_elements, crit, uncov, uncovered_pairs,
                reduced_cand, can_hit, seen_outputs,
            )
            can_hit[blocked] = True
        else:
            self.statistics.pruned_by_willcover += 1

        if self.max_dc_size is not None and len(s_elements) >= self.max_dc_size:
            return
        to_try = chosen_mask & cand
        cand &= ~chosen_mask
        for element in iter_bits(to_try):
            element_contains = self._contains[element]
            covered_here = element_contains[uncov]
            newly_covered = uncov[covered_here]
            remaining_uncov = uncov[~covered_here]
            covered_pairs = int(self._counts[newly_covered].sum())
            crit[element] = set(newly_covered.tolist())
            removed_from_crit: dict[int, list[int]] = {}
            for member in s_elements:
                critical = crit[member]
                if not critical:
                    continue
                critical_array = np.fromiter(critical, dtype=np.int64, count=len(critical))
                removed_array = critical_array[element_contains[critical_array]]
                if removed_array.size:
                    removed = removed_array.tolist()
                    removed_from_crit[member] = removed
                    crit[member].difference_update(removed)

            if all(crit[member] for member in s_elements):
                self.statistics.hit_branches += 1
                pruned_cand = cand & ~space.group_mask(element)
                s_elements.append(element)
                yield from self._search(
                    s_mask | (1 << element),
                    s_elements,
                    crit,
                    remaining_uncov,
                    uncovered_pairs - covered_pairs,
                    pruned_cand,
                    can_hit,
                    seen_outputs,
                )
                s_elements.pop()
                cand |= 1 << element
            else:
                self.statistics.pruned_by_criticality += 1

            crit.pop(element, None)
            for member, removed in removed_from_crit.items():
                crit[member].update(removed)

    def _choose_evidence(self, selectable: np.ndarray, cand_words: np.ndarray) -> int:
        if self.selection == "random":
            return int(selectable[self.statistics.recursive_calls % selectable.size])
        intersections = np.bitwise_count(
            self._ev_words[selectable] & cand_words
        ).sum(axis=1)
        if self.selection == "max":
            return int(selectable[int(np.argmax(intersections))])
        return int(selectable[int(np.argmin(intersections))])

    def _emit(
        self,
        s_mask: int,
        uncov: np.ndarray,
        seen_outputs: set[int],
    ) -> Iterator[DiscoveredADC]:
        if s_mask == 0 or s_mask in seen_outputs:
            return
        space = self.evidence.space
        dc_predicates = [space[space.complement_index(index)] for index in iter_bits(s_mask)]
        constraint = DenialConstraint(dc_predicates)
        if constraint.is_trivial():
            return
        seen_outputs.add(s_mask)
        score = self.function.violation_score(self.evidence, uncov)
        self.statistics.outputs += 1
        yield DiscoveredADC(constraint, s_mask, score)


class LegacyMMCS:
    """The pre-refactor MMCS (Python sets and int masks), tie-break pinned."""

    def __init__(self, subsets: Sequence[int], n_elements: int) -> None:
        self.subsets = list(subsets)
        self.n_elements = int(n_elements)
        self.statistics = MMCSStatistics()

    def enumerate(self) -> list[int]:
        return list(self.iter_minimal_hitting_sets())

    def iter_minimal_hitting_sets(self) -> Iterator[int]:
        self.statistics = MMCSStatistics()
        if any(subset == 0 for subset in self.subsets):
            return
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000))
        uncov = set(range(len(self.subsets)))
        cand = (1 << self.n_elements) - 1
        crit: dict[int, set[int]] = {}
        yield from self._search(0, crit, uncov, cand)

    def _search(
        self,
        current: int,
        crit: dict[int, set[int]],
        uncov: set[int],
        cand: int,
    ) -> Iterator[int]:
        self.statistics.recursive_calls += 1
        if not uncov:
            self.statistics.outputs += 1
            yield current
            return
        chosen = self._choose_subset(uncov, cand)
        subset_mask = self.subsets[chosen]
        to_try = subset_mask & cand
        cand &= ~subset_mask
        for element in iter_bits(to_try):
            newly_covered, removed_from_crit = self._update_crit_uncov(element, current, crit, uncov)
            if all(crit[member] for member in iter_bits(current)):
                yield from self._search(current | (1 << element), crit, uncov, cand)
                cand |= 1 << element
            else:
                self.statistics.pruned_by_criticality += 1
            self._undo_crit_uncov(element, crit, uncov, newly_covered, removed_from_crit)

    def _choose_subset(self, uncov: set[int], cand: int) -> int:
        # Sorted iteration pins the tie-break to the lowest index (see the
        # module docstring); the historical code iterated in set order.
        return min(sorted(uncov), key=lambda index: bin(self.subsets[index] & cand).count("1"))

    def _update_crit_uncov(
        self,
        element: int,
        current: int,
        crit: dict[int, set[int]],
        uncov: set[int],
    ) -> tuple[list[int], dict[int, list[int]]]:
        element_bit = 1 << element
        newly_covered = [index for index in uncov if self.subsets[index] & element_bit]
        for index in newly_covered:
            uncov.discard(index)
        crit[element] = set(newly_covered)
        removed_from_crit: dict[int, list[int]] = {}
        for member in iter_bits(current):
            removed = [index for index in crit[member] if self.subsets[index] & element_bit]
            if removed:
                removed_from_crit[member] = removed
                crit[member].difference_update(removed)
        return newly_covered, removed_from_crit

    def _undo_crit_uncov(
        self,
        element: int,
        crit: dict[int, set[int]],
        uncov: set[int],
        newly_covered: list[int],
        removed_from_crit: dict[int, list[int]],
    ) -> None:
        uncov.update(newly_covered)
        crit.pop(element, None)
        for member, removed in removed_from_crit.items():
            crit[member].update(removed)
