"""ADCMiner — the end-to-end mining pipeline (Figure 1).

``ADCMiner`` chains the four components of the paper's algorithm:

1. the predicate space generator,
2. the sampler,
3. the evidence set constructor,
4. the ADCEnum enumeration algorithm,

and reports per-phase timings so the benchmarks can decompose total running
time the way Figure 8 does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.adc_enum import ADCEnum, DiscoveredADC, EnumerationStatistics, SelectionStrategy
from repro.core.approximation import ApproximationFunction, F1, get_approximation_function
from repro.core.dc import DenialConstraint
from repro.core.evidence import EvidenceSet
from repro.core.evidence_builder import EVIDENCE_METHODS, build_evidence_set
from repro.core.predicate_space import PredicateSpace, PredicateSpaceConfig, build_predicate_space
from repro.core.sampling import SamplePlan, adjusted_function, draw_sample
from repro.data.relation import Relation


@dataclass
class MiningTimings:
    """Wall-clock seconds spent in each phase of the pipeline."""

    predicate_space: float = 0.0
    sampling: float = 0.0
    evidence: float = 0.0
    enumeration: float = 0.0

    @property
    def total(self) -> float:
        """Total pipeline time."""
        return self.predicate_space + self.sampling + self.evidence + self.enumeration


@dataclass
class MiningResult:
    """Everything produced by one :class:`ADCMiner` run."""

    adcs: list[DiscoveredADC]
    predicate_space: PredicateSpace
    evidence: EvidenceSet
    sample_plan: SamplePlan
    function_name: str
    epsilon: float
    timings: MiningTimings = field(default_factory=MiningTimings)
    enumeration_statistics: EnumerationStatistics = field(default_factory=EnumerationStatistics)

    @property
    def constraints(self) -> list[DenialConstraint]:
        """The discovered constraints without their scores."""
        return [adc.constraint for adc in self.adcs]

    def __len__(self) -> int:
        return len(self.adcs)

    def describe(self, limit: int = 20) -> str:
        """Human readable run summary."""
        lines = [
            f"ADCMiner: {len(self.adcs)} minimal ADCs "
            f"(function={self.function_name}, epsilon={self.epsilon}, "
            f"sample={self.sample_plan.fraction:.0%})",
            f"  predicate space: {len(self.predicate_space)} predicates",
            f"  evidence set:    {len(self.evidence)} distinct evidences over "
            f"{self.evidence.recorded_pairs} pairs",
            f"  timings [s]:     space={self.timings.predicate_space:.3f} "
            f"sample={self.timings.sampling:.3f} evidence={self.timings.evidence:.3f} "
            f"enum={self.timings.enumeration:.3f} total={self.timings.total:.3f}",
            f"  enumeration:     {self.enumeration_statistics.recursive_calls} nodes "
            f"({self.enumeration_statistics.nodes_per_second:,.0f} nodes/s)",
        ]
        for adc in self.adcs[:limit]:
            lines.append(f"    {adc}")
        if len(self.adcs) > limit:
            lines.append(f"    ... and {len(self.adcs) - limit} more")
        return "\n".join(lines)


def run_enumeration(
    evidence: EvidenceSet,
    function: ApproximationFunction,
    epsilon: float,
    selection: SelectionStrategy = "max",
    max_dc_size: int | None = None,
    progress=None,
    progress_interval: int = 8192,
) -> tuple[list[DiscoveredADC], EnumerationStatistics]:
    """Run ADCEnum over an evidence set, returning the ADCs and statistics.

    This is the enumeration step of the pipeline factored out so that both
    :meth:`ADCMiner.mine` and the incremental store's
    :meth:`~repro.incremental.store.EvidenceStore.remine` feed word planes
    into the same enumerator call.  ``progress`` (called with the live
    :class:`~repro.core.adc_enum.EnumerationStatistics` every
    ``progress_interval`` visited nodes) is the observability hook the
    serving layer uses to export nodes/sec gauges mid-run.
    """
    enumerator = ADCEnum(
        evidence,
        function,
        epsilon,
        selection=selection,
        max_dc_size=max_dc_size,
        progress=progress,
        progress_interval=progress_interval,
    )
    adcs = enumerator.enumerate()
    return adcs, enumerator.statistics


class ADCMiner:
    """The ADCMiner algorithm of Figure 1.

    Parameters
    ----------
    function:
        A valid approximation function, or its name (``"f1"``, ``"f2"``,
        ``"f3"``).
    epsilon:
        The approximation threshold.
    sample_fraction:
        Fraction of tuples to sample before building the evidence set
        (1.0 mines the full relation).
    adjust_for_sample:
        When mining a strict sample with the pair-based function, replace f1
        by the adjusted ``f1'`` of Section 7.2 so that discovered DCs carry
        the database-level guarantee with confidence ``1 - alpha``.
    alpha:
        Error probability used by the adjustment.
    space_config:
        Predicate space generation knobs.
    selection:
        Evidence selection strategy of the enumerator (Figure 10 ablation).
    evidence_method:
        ``"tiled"`` (blocked word-plane builder, default), ``"parallel"``
        (the process-pool tile engine of :mod:`repro.engine`, bit-identical
        to ``"tiled"``), ``"cluster"`` (the distributed fabric of
        :mod:`repro.cluster`, also bit-identical; requires ``cluster=``),
        ``"dense"`` (full-plane oracle), or ``"pairwise"`` (AFASTDC-style
        reference builder).  ``"vectorized"`` is a legacy alias of
        ``"tiled"``.
    tile_rows:
        Tile edge length of the tiled/parallel evidence builders; ``None``
        (default) picks it adaptively from a memory budget.
    n_workers:
        Worker processes of the ``"parallel"`` evidence builder (``None``
        uses all CPUs); ignored by the other methods.  Validated eagerly:
        a non-positive count raises here, not at mine time.
    cluster:
        A :class:`~repro.cluster.coordinator.ClusterCoordinator` or
        :class:`~repro.cluster.local.LocalCluster`.  When given, evidence
        tiles are built over the cluster (``evidence_method`` switches to
        ``"cluster"`` unless explicitly set to an oracle method).
    cluster_enumeration:
        Also farm the enumeration's root subtrees over the cluster
        (:func:`repro.cluster.enum.parallel_enumerate`; returns the exact
        serial DC list).  Requires ``cluster``.
    max_dc_size:
        Optional cap on predicates per DC.
    seed:
        Seed of the tuple sampler.
    """

    def __init__(
        self,
        function: ApproximationFunction | str = "f1",
        epsilon: float = 0.01,
        sample_fraction: float = 1.0,
        adjust_for_sample: bool = False,
        alpha: float = 0.05,
        space_config: PredicateSpaceConfig | None = None,
        selection: SelectionStrategy = "max",
        evidence_method: str = "tiled",
        tile_rows: int | None = None,
        n_workers: int | None = None,
        cluster: object | None = None,
        cluster_enumeration: bool = False,
        max_dc_size: int | None = None,
        seed: int | None = None,
    ) -> None:
        if isinstance(function, str):
            function = get_approximation_function(function)
        if cluster is not None and evidence_method in ("tiled", "vectorized"):
            evidence_method = "cluster"
        if evidence_method not in EVIDENCE_METHODS:
            raise ValueError(
                f"unknown evidence method {evidence_method!r}; "
                f"valid methods are {', '.join(EVIDENCE_METHODS)}"
            )
        if evidence_method == "cluster" and cluster is None:
            raise ValueError("evidence_method='cluster' needs a cluster= coordinator")
        if cluster_enumeration and cluster is None:
            raise ValueError("cluster_enumeration=True needs a cluster= coordinator")
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be positive")
        self.function = function
        self.epsilon = float(epsilon)
        self.sample_fraction = float(sample_fraction)
        self.adjust_for_sample = bool(adjust_for_sample)
        self.alpha = float(alpha)
        self.space_config = space_config or PredicateSpaceConfig()
        self.selection: SelectionStrategy = selection
        self.evidence_method = evidence_method
        self.tile_rows = int(tile_rows) if tile_rows is not None else None
        self.n_workers = int(n_workers) if n_workers is not None else None
        self.cluster = cluster
        self.cluster_enumeration = bool(cluster_enumeration)
        self.max_dc_size = max_dc_size
        self.seed = seed

    def mine(self, relation: Relation) -> MiningResult:
        """Run the full pipeline on ``relation`` and return the result."""
        timings = MiningTimings()

        started = time.perf_counter()
        space = build_predicate_space(relation, self.space_config)
        timings.predicate_space = time.perf_counter() - started

        started = time.perf_counter()
        plan = draw_sample(relation, self.sample_fraction, self.seed)
        timings.sampling = time.perf_counter() - started

        started = time.perf_counter()
        needs_participation = self.function.requires_participation
        evidence = build_evidence_set(
            plan.sample,
            space,
            include_participation=needs_participation,
            method=self.evidence_method,
            tile_rows=self.tile_rows,
            n_workers=self.n_workers,
            cluster=self.cluster,
        )
        timings.evidence = time.perf_counter() - started

        function = self.function
        if self.adjust_for_sample and self.sample_fraction < 1.0 and isinstance(function, F1):
            function = adjusted_function(plan.sample_pairs, self.alpha)

        started = time.perf_counter()
        if self.cluster_enumeration:
            from repro.cluster.enum import parallel_enumerate

            adcs, enum_statistics = parallel_enumerate(
                evidence,
                function,
                self.epsilon,
                self.cluster,
                selection=self.selection,
                max_dc_size=self.max_dc_size,
            )
        else:
            adcs, enum_statistics = run_enumeration(
                evidence,
                function,
                self.epsilon,
                selection=self.selection,
                max_dc_size=self.max_dc_size,
            )
        timings.enumeration = time.perf_counter() - started

        return MiningResult(
            adcs=adcs,
            predicate_space=space,
            evidence=evidence,
            sample_plan=plan,
            function_name=function.name,
            epsilon=self.epsilon,
            timings=timings,
            enumeration_statistics=enum_statistics,
        )


def mine_adcs(
    relation: Relation,
    function: ApproximationFunction | str = "f1",
    epsilon: float = 0.01,
    sample_fraction: float = 1.0,
    **kwargs: object,
) -> MiningResult:
    """One-call convenience wrapper around :class:`ADCMiner`."""
    miner = ADCMiner(function, epsilon, sample_fraction, **kwargs)  # type: ignore[arg-type]
    return miner.mine(relation)
