"""Denial constraints.

A denial constraint (DC) ``forall t, t' not (P_1 and ... and P_m)`` states
that no ordered pair of tuples may satisfy all of its predicates
simultaneously.  This module provides the :class:`DenialConstraint` value
object together with the semantic operations the rest of the library needs:
satisfaction on a tuple pair, violation counting on a relation, triviality,
normalisation (dropping predicates implied by others), and generality
comparisons between DCs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.operators import operators_satisfiable_together
from repro.core.predicates import Predicate, PredicateForm
from repro.data.relation import Relation


@dataclass(frozen=True)
class DenialConstraint:
    """A denial constraint identified with its set of predicates ``S_phi``."""

    predicates: frozenset[Predicate]

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        object.__setattr__(self, "predicates", frozenset(predicates))

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(sorted(self.predicates))

    def __str__(self) -> str:
        body = " and ".join(str(p) for p in sorted(self.predicates))
        return f"forall t, t': not ({body})"

    @property
    def is_empty(self) -> bool:
        """Whether the DC has no predicates (violated by every pair)."""
        return not self.predicates

    @property
    def spans_two_tuples(self) -> bool:
        """Whether any predicate references the second tuple ``t'``."""
        return any(p.form.spans_two_tuples for p in self.predicates)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def satisfied_by_pair(self, left_row: dict[str, object], right_row: dict[str, object]) -> bool:
        """Whether the ordered pair ``(t, t')`` satisfies the DC.

        A pair satisfies the DC when at least one predicate does *not* hold
        on it.
        """
        return not all(p.evaluate(left_row, right_row) for p in self.predicates)

    def violating_pairs(self, relation: Relation) -> list[tuple[int, int]]:
        """Ordered pairs of distinct row indices that jointly violate the DC."""
        rows = [relation.row(i) for i in range(relation.n_rows)]
        violations = []
        for i, j in itertools.permutations(range(relation.n_rows), 2):
            if not self.satisfied_by_pair(rows[i], rows[j]):
                violations.append((i, j))
        return violations

    def violation_count(self, relation: Relation) -> int:
        """Number of ordered distinct pairs violating the DC."""
        return len(self.violating_pairs(relation))

    def violating_tuples(self, relation: Relation) -> set[int]:
        """Row indices involved in at least one violating pair."""
        involved: set[int] = set()
        for i, j in self.violating_pairs(relation):
            involved.add(i)
            involved.add(j)
        return involved

    def is_satisfied(self, relation: Relation) -> bool:
        """Whether the DC is a valid (exact) DC of the relation."""
        rows = [relation.row(i) for i in range(relation.n_rows)]
        for i, j in itertools.permutations(range(relation.n_rows), 2):
            if not self.satisfied_by_pair(rows[i], rows[j]):
                return False
        return True

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    def is_trivial(self) -> bool:
        """Whether the DC is trivially satisfied by every tuple pair.

        The paper excludes trivial DCs (Problem 4.6 asks for *nontrivial*
        minimal ADCs).  A DC is trivial when its predicates cannot all hold
        simultaneously, which we detect per column-pair group: a group whose
        operators are jointly unsatisfiable (e.g. ``{<, >=}``) makes the
        whole conjunction unsatisfiable.  An empty DC is also treated as
        trivial (it carries no information).
        """
        if not self.predicates:
            return True
        by_group: dict[tuple[str, str, PredicateForm], set] = {}
        for predicate in self.predicates:
            by_group.setdefault(predicate.group_key, set()).add(predicate.operator)
        return any(
            not operators_satisfiable_together(operators) for operators in by_group.values()
        )

    def normalized(self) -> "DenialConstraint":
        """Drop predicates implied by another predicate of the constraint.

        For example ``t[A] <= t'[A]`` is redundant in the presence of
        ``t[A] < t'[A]``; removing it does not change the set of satisfying
        pairs (this is exactly the redundancy the *indifference to
        redundancy* axiom talks about).
        """
        kept: list[Predicate] = []
        for predicate in self.predicates:
            implied_by_other = any(
                other != predicate and other.implies(predicate) for other in self.predicates
            )
            if not implied_by_other:
                kept.append(predicate)
        return DenialConstraint(kept)

    def generalizes(self, other: "DenialConstraint") -> bool:
        """Whether this DC is at least as general as ``other``.

        ``phi`` generalizes ``phi'`` when ``S_phi`` is a subset of
        ``S_phi'`` (fewer predicates means fewer exceptions allowed, i.e. a
        stronger, more general rule).
        """
        return self.predicates <= other.predicates

    def same_constraint(self, other: "DenialConstraint") -> bool:
        """Whether two DCs have identical normalised predicate sets."""
        return self.normalized().predicates == other.normalized().predicates


def minimize_dcs(constraints: Sequence[DenialConstraint]) -> list[DenialConstraint]:
    """Keep only the minimal constraints of a collection.

    A constraint is dropped when another constraint in the collection has a
    strictly smaller predicate set (i.e. strictly generalizes it).  Exact
    duplicates are also collapsed.
    """
    unique: list[DenialConstraint] = []
    seen: set[frozenset[Predicate]] = set()
    for constraint in constraints:
        if constraint.predicates not in seen:
            seen.add(constraint.predicates)
            unique.append(constraint)
    minimal: list[DenialConstraint] = []
    for constraint in unique:
        dominated = any(
            other.predicates < constraint.predicates for other in unique
        )
        if not dominated:
            minimal.append(constraint)
    return minimal


def format_dc_set(constraints: Iterable[DenialConstraint]) -> str:
    """Render a collection of DCs, one per line, for reports and examples."""
    return "\n".join(str(constraint) for constraint in sorted(constraints, key=str))
