"""Figure 9 — ADCEnum vs SearchMC enumeration time for varying sample sizes."""

from conftest import report

from repro.experiments import figure9_sample_sizes


def test_figure9_enumeration_time_vs_sample_size(benchmark, config):
    # The full figure sweeps all eight datasets; the benchmark uses four
    # representative ones to keep the suite's wall-clock time reasonable.
    restricted = config.restricted(("tax", "stock", "hospital", "adult"))
    rows = benchmark.pedantic(figure9_sample_sizes, args=(restricted,), iterations=1, rounds=1)
    report("Figure 9: enumeration time (seconds) for varying sample sizes", rows)
    assert {row["dataset"] for row in rows} == set(restricted.datasets)
    assert {row["sample"] for row in rows} == {0.2, 0.4, 0.6, 0.8, 1.0}
