"""Shared fixtures and helpers of the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment function once inside ``pytest-benchmark`` and prints
the resulting rows, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and reproduces the numbers.

The scale of the whole suite can be adjusted with the ``REPRO_SCALE``
environment variable (e.g. ``REPRO_SCALE=0.5`` halves every dataset).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.config import default_config


@pytest.fixture(scope="session")
def config():
    """The benchmark experiment configuration."""
    return default_config()


def report(title: str, rows: list[dict[str, object]], columns: list[str] | None = None) -> None:
    """Print one reproduced table/figure under a clear banner."""
    print()
    print("=" * 78)
    print(format_table(rows, columns, title=title))
    print("=" * 78)
