"""Exact minimal hitting set enumeration (MMCS).

The algorithm of Murakami and Uno [32] (Figure 3 of the paper) enumerates all
minimal hitting sets of a family of subsets.  ADCEnum extends it to the
approximate setting; the exact version is kept both as a reusable substrate
(valid-DC discovery corresponds to epsilon = 0) and as a reference for the
tests of Theorem 6.1.

Subsets and hitting sets are represented as Python-int bitmasks over element
indices ``0 .. n_elements - 1``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.predicate_space import iter_bits


@dataclass
class MMCSStatistics:
    """Counters describing one enumeration run (used by benchmarks)."""

    recursive_calls: int = 0
    outputs: int = 0
    pruned_by_criticality: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class MMCS:
    """Minimal hitting set enumerator of Murakami and Uno.

    Parameters
    ----------
    subsets:
        The family ``M`` of subsets to hit, as bitmasks.
    n_elements:
        Size of the ground set ``K``.
    """

    def __init__(self, subsets: Sequence[int], n_elements: int) -> None:
        self.subsets = list(subsets)
        self.n_elements = int(n_elements)
        self.statistics = MMCSStatistics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enumerate(self) -> list[int]:
        """Return all minimal hitting sets as bitmasks."""
        return list(self.iter_minimal_hitting_sets())

    def iter_minimal_hitting_sets(self) -> Iterator[int]:
        """Yield every minimal hitting set exactly once."""
        self.statistics = MMCSStatistics()
        if any(subset == 0 for subset in self.subsets):
            # An empty subset can never be hit; there are no hitting sets.
            return
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000))
        uncov = set(range(len(self.subsets)))
        cand = (1 << self.n_elements) - 1
        crit: dict[int, set[int]] = {}
        yield from self._search(0, crit, uncov, cand)

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _search(
        self,
        current: int,
        crit: dict[int, set[int]],
        uncov: set[int],
        cand: int,
    ) -> Iterator[int]:
        self.statistics.recursive_calls += 1
        if not uncov:
            self.statistics.outputs += 1
            yield current
            return
        chosen = self._choose_subset(uncov, cand)
        subset_mask = self.subsets[chosen]
        to_try = subset_mask & cand
        cand &= ~subset_mask
        for element in iter_bits(to_try):
            newly_covered, removed_from_crit = self._update_crit_uncov(element, current, crit, uncov)
            if all(crit[member] for member in iter_bits(current)):
                yield from self._search(current | (1 << element), crit, uncov, cand)
                cand |= 1 << element
            else:
                self.statistics.pruned_by_criticality += 1
            self._undo_crit_uncov(element, crit, uncov, newly_covered, removed_from_crit)

    def _choose_subset(self, uncov: set[int], cand: int) -> int:
        """Pick the uncovered subset with the fewest candidate elements.

        This is the selection rule recommended in [32]; ADCEnum flips it to
        the maximum-intersection rule (Section 6.2, Figure 10).
        """
        return min(uncov, key=lambda index: bin(self.subsets[index] & cand).count("1"))

    def _update_crit_uncov(
        self,
        element: int,
        current: int,
        crit: dict[int, set[int]],
        uncov: set[int],
    ) -> tuple[list[int], dict[int, list[int]]]:
        """Apply the UpdateCritUncov subroutine; return the changes for undo."""
        element_bit = 1 << element
        newly_covered = [index for index in uncov if self.subsets[index] & element_bit]
        for index in newly_covered:
            uncov.discard(index)
        crit[element] = set(newly_covered)
        removed_from_crit: dict[int, list[int]] = {}
        for member in iter_bits(current):
            removed = [index for index in crit[member] if self.subsets[index] & element_bit]
            if removed:
                removed_from_crit[member] = removed
                crit[member].difference_update(removed)
        return newly_covered, removed_from_crit

    def _undo_crit_uncov(
        self,
        element: int,
        crit: dict[int, set[int]],
        uncov: set[int],
        newly_covered: list[int],
        removed_from_crit: dict[int, list[int]],
    ) -> None:
        """Revert the changes of :meth:`_update_crit_uncov`."""
        uncov.update(newly_covered)
        crit.pop(element, None)
        for member, removed in removed_from_crit.items():
            crit[member].update(removed)


def minimal_hitting_sets(subsets: Iterable[int], n_elements: int) -> list[int]:
    """Convenience wrapper returning all minimal hitting sets as bitmasks."""
    return MMCS(list(subsets), n_elements).enumerate()


def brute_force_minimal_hitting_sets(subsets: Sequence[int], n_elements: int) -> list[int]:
    """Exponential reference implementation used to validate MMCS in tests."""
    subsets = list(subsets)
    if any(subset == 0 for subset in subsets):
        return []
    hitting: list[int] = []
    for candidate in range(1 << n_elements):
        if all(candidate & subset for subset in subsets):
            hitting.append(candidate)
    minimal = []
    for candidate in hitting:
        if not any(other != candidate and other & candidate == other for other in hitting):
            minimal.append(candidate)
    return minimal


def is_hitting_set(candidate: int, subsets: Iterable[int]) -> bool:
    """Whether ``candidate`` intersects every subset."""
    return all(candidate & subset for subset in subsets)
