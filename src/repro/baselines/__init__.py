"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.fastdc` — ``SearchMC``, the SearchMinimalCovers DFS
  of FASTDC [11] with the AFASTDC approximate base case; this is the
  enumeration baseline of Figures 6 and 9.
* :mod:`repro.baselines.pairwise` — the naive quadratic evidence-set
  construction of AFASTDC, used as the slow evidence baseline of Figures 7
  and 8 (the fast builder plays the DCFinder role).
"""

from repro.baselines.fastdc import SearchMC, search_minimal_covers
from repro.baselines.pairwise import PairwiseEvidenceBuilder, afastdc_mine, dcfinder_mine

__all__ = [
    "SearchMC",
    "search_minimal_covers",
    "PairwiseEvidenceBuilder",
    "afastdc_mine",
    "dcfinder_mine",
]
