"""Figure 11 — F1 of sample-mined ADCs against full-data ADCs."""

from conftest import report

from repro.experiments import figure11_sampling_quality


def test_figure11_sampling_quality(benchmark, config):
    # The figure sweeps all eight datasets and three functions; the benchmark
    # reproduces the shape on three representative datasets to keep the
    # number of mining runs manageable.
    restricted = config.restricted(("tax", "hospital", "adult"))
    rows = benchmark.pedantic(
        figure11_sampling_quality,
        args=(restricted,),
        kwargs={"sample_fractions": (0.2, 0.3, 0.4), "thresholds": (0.05, 0.1, 0.2)},
        iterations=1,
        rounds=1,
    )
    report("Figure 11: F1 score of sample-mined ADCs vs full-data ADCs", rows)
    # Larger samples should not hurt quality on average.
    sample_rows = [row for row in rows if row["sweep"] == "sample"]
    small = [row["f1_score"] for row in sample_rows if row["sample"] == 0.2]
    large = [row["f1_score"] for row in sample_rows if row["sample"] == 0.4]
    assert sum(large) / len(large) >= sum(small) / len(small) - 0.1
