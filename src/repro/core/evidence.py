"""The evidence set.

For every ordered pair of distinct tuples ``(t, t')`` the *evidence*
``Sat(t, t')`` is the set of predicates of the predicate space satisfied by
the pair; the *evidence set* ``Evi(D)`` is the bag of all evidences
(Section 3).  As in the paper, evidences are stored once with a
multiplicity, because only the distinct evidences and their counts matter to
the enumeration algorithm.

Each evidence is represented as a Python integer bitmask over predicate
indices of the :class:`~repro.core.predicate_space.PredicateSpace`, which
makes intersection tests (the inner loop of the enumerators) single ``&``
operations.

The class also stores the ``vios`` structure of Figure 2: for every distinct
evidence, the tuples participating in pairs with that evidence and how many
such pairs each tuple participates in.  This is what the tuple-based
approximation functions (f2 and the greedy replacement of f3) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.predicate_space import PredicateSpace, iter_bits
from repro.core.predicates import Predicate


@dataclass(frozen=True)
class TupleParticipation:
    """Tuples participating in pairs carrying one evidence.

    ``tuple_ids[k]`` participates in ``pair_counts[k]`` ordered pairs whose
    evidence is the owning entry — the row of the ``vios`` table of Figure 2.
    """

    tuple_ids: np.ndarray
    pair_counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.tuple_ids) != len(self.pair_counts):
            raise ValueError("tuple_ids and pair_counts must have equal length")


class EvidenceSet:
    """The bag ``Evi(D)`` of predicate-satisfaction evidences.

    Parameters
    ----------
    space:
        The predicate space the evidence bitmasks index into.
    masks:
        Distinct evidence bitmasks.
    counts:
        Multiplicity of each distinct evidence (number of ordered pairs).
    n_rows:
        Number of tuples of the underlying relation.
    participation:
        Optional per-evidence tuple participation (the ``vios`` structure);
        required by the f2/f3 approximation functions.
    """

    def __init__(
        self,
        space: PredicateSpace,
        masks: Sequence[int],
        counts: Sequence[int],
        n_rows: int,
        participation: Sequence[TupleParticipation] | None = None,
    ) -> None:
        if len(masks) != len(counts):
            raise ValueError("masks and counts must have equal length")
        if participation is not None and len(participation) != len(masks):
            raise ValueError("participation must align with masks")
        self.space = space
        self.masks: list[int] = list(masks)
        self.counts: np.ndarray = np.asarray(counts, dtype=np.int64)
        self.n_rows = int(n_rows)
        self._participation = list(participation) if participation is not None else None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.masks)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(mask, count)`` pairs."""
        for mask, count in zip(self.masks, self.counts):
            yield mask, int(count)

    @property
    def total_pairs(self) -> int:
        """Number of ordered distinct tuple pairs, ``|D| * (|D| - 1)``."""
        return self.n_rows * (self.n_rows - 1)

    @property
    def recorded_pairs(self) -> int:
        """Number of pairs actually recorded (sum of multiplicities)."""
        return int(self.counts.sum())

    @property
    def has_participation(self) -> bool:
        """Whether the ``vios`` structure is available."""
        return self._participation is not None

    def participation(self, evidence_index: int) -> TupleParticipation:
        """Tuple participation of one distinct evidence."""
        if self._participation is None:
            raise RuntimeError(
                "evidence set was built without tuple participation; "
                "rebuild with include_participation=True to use f2/f3"
            )
        return self._participation[evidence_index]

    def predicates_of(self, evidence_index: int) -> tuple[Predicate, ...]:
        """Predicates satisfied by the pairs of one distinct evidence."""
        return self.space.predicates_of(self.masks[evidence_index])

    # ------------------------------------------------------------------
    # Queries used by the approximation functions and tests
    # ------------------------------------------------------------------
    def uncovered_indices(self, hitting_mask: int) -> list[int]:
        """Indices of evidences with empty intersection with ``hitting_mask``.

        In DC terms these are the evidences of the pairs *violating* the DC
        whose complement-predicate set is ``hitting_mask``.
        """
        return [index for index, mask in enumerate(self.masks) if mask & hitting_mask == 0]

    def uncovered_pair_count(self, hitting_mask: int) -> int:
        """Number of pairs whose evidence is not hit by ``hitting_mask``."""
        return int(
            sum(
                int(count)
                for mask, count in zip(self.masks, self.counts)
                if mask & hitting_mask == 0
            )
        )

    def pair_count_of(self, evidence_indices: Iterable[int]) -> int:
        """Total number of pairs over a collection of evidence indices."""
        return int(sum(int(self.counts[index]) for index in evidence_indices))

    def tuples_involved(self, evidence_indices: Iterable[int]) -> set[int]:
        """Distinct tuples participating in pairs of the given evidences."""
        involved: set[int] = set()
        for index in evidence_indices:
            involved.update(self.participation(index).tuple_ids.tolist())
        return involved

    def violation_counts_per_tuple(self, evidence_indices: Iterable[int]) -> np.ndarray:
        """Per-tuple number of violating pairs over the given evidences.

        This is the ``v(t)`` vector computed by ``SortTuples`` in Figure 2.
        """
        totals = np.zeros(self.n_rows, dtype=np.int64)
        for index in evidence_indices:
            part = self.participation(index)
            totals[part.tuple_ids] += part.pair_counts
        return totals

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def restrict_to_predicates(self, predicate_mask: int) -> "EvidenceSet":
        """Project every evidence onto a subset of the predicate space.

        Evidences that become identical after the projection are merged
        (their multiplicities added); participation is dropped because the
        merge makes it ambiguous.
        """
        merged: dict[int, int] = {}
        for mask, count in self:
            key = mask & predicate_mask
            merged[key] = merged.get(key, 0) + count
        masks = list(merged)
        counts = [merged[mask] for mask in masks]
        return EvidenceSet(self.space, masks, counts, self.n_rows)

    def describe(self, limit: int = 10) -> str:
        """Human readable summary of the evidence multiset."""
        lines = [
            f"evidence set: {len(self)} distinct evidences over "
            f"{self.recorded_pairs} pairs ({self.n_rows} tuples)"
        ]
        order = np.argsort(-self.counts)
        for index in order[:limit]:
            predicates = ", ".join(str(p) for p in self.predicates_of(int(index)))
            lines.append(f"  x{int(self.counts[index]):>6}  {{{predicates}}}")
        if len(self) > limit:
            lines.append(f"  ... and {len(self) - limit} more")
        return "\n".join(lines)


def evidence_from_pair_masks(
    space: PredicateSpace,
    pair_masks: Iterable[int],
    n_rows: int,
    pair_tuples: Iterable[tuple[int, int]] | None = None,
) -> EvidenceSet:
    """Build an :class:`EvidenceSet` from per-pair bitmasks.

    ``pair_tuples`` optionally provides, for every mask, the ordered pair of
    row indices it came from, enabling the tuple-participation structure.
    This constructor is used by the naive pairwise builder and by tests.
    """
    pair_masks = list(pair_masks)
    counts: dict[int, int] = {}
    tuple_counts: dict[int, dict[int, int]] = {}
    pairs = list(pair_tuples) if pair_tuples is not None else None
    if pairs is not None and len(pairs) != len(pair_masks):
        raise ValueError("pair_tuples must align with pair_masks")
    for position, mask in enumerate(pair_masks):
        counts[mask] = counts.get(mask, 0) + 1
        if pairs is not None:
            i, j = pairs[position]
            per_tuple = tuple_counts.setdefault(mask, {})
            per_tuple[i] = per_tuple.get(i, 0) + 1
            per_tuple[j] = per_tuple.get(j, 0) + 1
    masks = list(counts)
    participation = None
    if pairs is not None:
        participation = []
        for mask in masks:
            per_tuple = tuple_counts[mask]
            ids = np.asarray(sorted(per_tuple), dtype=np.int64)
            per_pair = np.asarray([per_tuple[t] for t in ids.tolist()], dtype=np.int64)
            participation.append(TupleParticipation(ids, per_pair))
    return EvidenceSet(space, masks, [counts[m] for m in masks], n_rows, participation)


def mask_to_predicate_indices(mask: int) -> list[int]:
    """Positions of the set bits of an evidence or hitting-set mask."""
    return list(iter_bits(mask))
