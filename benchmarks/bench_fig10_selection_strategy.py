"""Figure 10 — evidence selection: maximal vs minimal candidate intersection."""

from conftest import report

from repro.experiments import figure10_selection_strategy


def test_figure10_selection_strategy(benchmark, config):
    rows = benchmark.pedantic(figure10_selection_strategy, args=(config,), iterations=1, rounds=1)
    report(
        "Figure 10: ADCEnum with max- vs min-intersection evidence selection (seconds)",
        rows,
    )
    assert {row["function"] for row in rows} == {"f1", "f2", "f3"}
