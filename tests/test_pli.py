"""Tests for position list indexes."""

from __future__ import annotations

import pytest

from repro.data.pli import build_all_plis, build_pli, shared_value_fraction
from repro.data.relation import Relation, running_example


@pytest.fixture(scope="module")
def relation() -> Relation:
    return running_example()


class TestBuildPli:
    def test_clusters_partition_all_rows(self, relation):
        pli = build_pli(relation, "State")
        assert pli.n_rows == relation.n_rows
        assert pli.n_clusters == 3

    def test_cluster_of_value(self, relation):
        pli = build_pli(relation, "State")
        assert set(pli.cluster_of("IL").tolist()) == {13, 14}
        assert pli.cluster_of("ZZ").size == 0

    def test_stripped_partition_drops_singletons(self, relation):
        pli = build_pli(relation, "Zip")
        stripped = pli.stripped()
        assert all(len(cluster) >= 2 for cluster in stripped)

    def test_equal_pair_count_matches_definition(self, relation):
        pli = build_pli(relation, "State")
        # 5 NY tuples, 8 WA tuples, 2 IL tuples.
        assert pli.equal_pair_count() == 5 * 4 + 8 * 7 + 2 * 1

    def test_row_to_cluster_mapping(self, relation):
        pli = build_pli(relation, "State")
        mapping = pli.row_to_cluster()
        assert mapping[0] == mapping[1]  # both NY
        assert mapping[0] != mapping[5]  # NY vs WA

    def test_build_all_plis(self, relation):
        plis = build_all_plis(relation)
        assert set(plis) == set(relation.column_names)

    def test_numeric_column(self, relation):
        pli = build_pli(relation, "Tax")
        assert pli.n_rows == 15
        assert any(len(cluster) == 2 for cluster in pli.clusters)  # the two 5K taxes


class TestSharedValueFraction:
    def test_identical_columns_share_everything(self):
        relation = Relation("r", {"a": [1, 2, 3], "b": [1, 2, 3]})
        assert shared_value_fraction(relation, "a", "b") == 1.0

    def test_disjoint_columns_share_nothing(self):
        relation = Relation("r", {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert shared_value_fraction(relation, "a", "b") == 0.0

    def test_subset_domain_counts_against_smaller_side(self):
        relation = Relation("r", {"a": [1, 1, 2, 2], "b": [1, 2, 3, 4]})
        assert shared_value_fraction(relation, "a", "b") == 1.0

    def test_income_and_tax_do_not_qualify(self, relation):
        assert shared_value_fraction(relation, "Income", "Tax") < 0.3
