"""Build the compiled kernel library from the bundled C source.

The native backend ships as plain C (``csrc/kernels.c``) compiled on first
use with whatever C compiler the host has — no build-time dependency, no
wheel.  The shared object is cached under ``~/.cache/repro-native/`` (or
``$REPRO_NATIVE_CACHE``) keyed by a hash of the source text and the compile
command, so a source edit or flag change triggers exactly one rebuild and
every later import is a single ``dlopen``.

Compilation failures never raise out of :func:`build_library`: the dispatch
layer treats ``None`` as "this backend is unavailable" and falls back to the
pure-numpy kernels (or raises, if ``REPRO_NATIVE`` explicitly demanded the
compiled backend).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

SOURCE_PATH = Path(__file__).resolve().parent / "csrc" / "kernels.c"

#: Flags tried in order; the first command that compiles wins.  The
#: ``-march=native`` variant unlocks hardware popcount on x86; the plain
#: variant is the portable fallback for compilers that reject the flag.
_FLAG_SETS = (
    ["-O3", "-march=native", "-fPIC", "-shared", "-fno-math-errno"],
    ["-O3", "-fPIC", "-shared"],
)

_COMPILERS = ("cc", "gcc", "clang")


def cache_dir() -> Path:
    """Directory holding compiled kernel libraries."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")) / "repro-native"


def _library_path(source: str, command: list[str]) -> Path:
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update("\0".join(command).encode())
    return cache_dir() / f"kernels-{digest.hexdigest()[:16]}.so"


def _compile(compiler: str, flags: list[str], source: str) -> Path | None:
    command = [compiler, *flags]
    target = _library_path(source, command)
    if target.exists():
        return target
    target.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=target.parent) as work:
        source_file = Path(work) / "kernels.c"
        source_file.write_text(source)
        out_file = Path(work) / "kernels.so"
        try:
            result = subprocess.run(
                [*command, str(source_file), "-o", str(out_file)],
                capture_output=True,
                timeout=120,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if result.returncode != 0 or not out_file.exists():
            return None
        # Atomic publish: concurrent builders race to the same content-keyed
        # name, so whichever rename lands last wins with identical bytes.
        os.replace(out_file, target)
    return target


def build_library() -> Path | None:
    """Compile (or fetch from cache) the kernel library; ``None`` on failure."""
    try:
        source = SOURCE_PATH.read_text()
    except OSError:
        return None
    for compiler in _COMPILERS:
        if shutil.which(compiler) is None:
            continue
        for flags in _FLAG_SETS:
            library = _compile(compiler, list(flags), source)
            if library is not None:
                return library
    return None
