"""Deep skip-chain regression: the explicit-stack driver outlives recursion.

The pre-refactor enumerator papered over deep skip chains by raising
``sys.setrecursionlimit(50_000)`` as a module side effect.  The explicit
stack (:meth:`ADCEnum._run_search`, :class:`MMCS`) removed both the
mutation and the depth ceiling; this module pins that down by

* mining an adversarial evidence set whose skip chain descends ``n``
  frames for ``n`` beyond the default interpreter recursion limit,
* forbidding ``sys.setrecursionlimit`` while the enumeration runs, and
* asserting the word-native modules contain no call to it at all (only
  :mod:`repro.core.legacy_enum`, the frozen reference implementation,
  still carries one).
"""

from __future__ import annotations

import inspect
import sys

from repro.core import adc_enum, hitting_set
from repro.core.adc_enum import ADCEnum
from repro.core.approximation import F1
from repro.core.evidence import EvidenceSet
from repro.core.legacy_enum import LegacyADCEnum
from repro.core.operators import Operator
from repro.core.predicate_space import PredicateSpace
from repro.core.predicates import Predicate, PredicateForm


def _chain_evidence(n: int) -> EvidenceSet:
    """``n`` single-predicate evidences ``{EQ_i}`` forcing an ``n``-deep chain.

    Each evidence holds exactly one equality predicate over its own column.
    ``n_rows`` is the smallest ``m`` with ``m * (m - 1) >= n`` pairs; the
    first ``n - 1`` evidences carry one pair each and the last absorbs the
    remainder, so with ``epsilon = (total - 1) / total``:

    * every skip branch kills one single-pair evidence and stays inside the
      WillCover budget, so the skip chain descends all ``n`` levels;
    * every hit branch covers its evidence, passes the base case at once
      (``uncovered <= total - 1``) and emits the minimal single-predicate
      DC ``not(t.c_i == t'.c_i)``.

    The tree is therefore linear — ``2n`` nodes, stack depth ``n`` — which
    is exactly the adversarial shape for a recursive implementation.
    """
    n_rows = 2
    while n_rows * (n_rows - 1) < n:
        n_rows += 1
    total = n_rows * (n_rows - 1)
    predicates = []
    for i in range(n):
        column = f"c{i}"
        predicates.append(
            Predicate(column, Operator.EQ, column, PredicateForm.TWO_TUPLE_SAME_COLUMN)
        )
        predicates.append(
            Predicate(column, Operator.NE, column, PredicateForm.TWO_TUPLE_SAME_COLUMN)
        )
    space = PredicateSpace(predicates)
    masks = [1 << (2 * i) for i in range(n)]
    counts = [1] * (n - 1) + [total - (n - 1)]
    return EvidenceSet(space, masks=masks, counts=counts, n_rows=n_rows)


def _chain_epsilon(evidence: EvidenceSet) -> float:
    total = evidence.total_pairs
    return (total - 1) / total


class TestNoRecursionLimitMutation:
    def test_word_native_modules_never_touch_the_limit(self):
        # Prose may mention the removed mutation; an actual call may not.
        assert "setrecursionlimit(" not in inspect.getsource(adc_enum)
        assert "setrecursionlimit(" not in inspect.getsource(hitting_set)

    def test_enumeration_never_calls_setrecursionlimit(self, monkeypatch):
        def forbid(limit):
            raise AssertionError(f"sys.setrecursionlimit({limit}) was called")

        monkeypatch.setattr(sys, "setrecursionlimit", forbid)
        evidence = _chain_evidence(50)
        results = ADCEnum(evidence, F1(), epsilon=_chain_epsilon(evidence)).enumerate()
        assert len(results) == 50

    def test_enumeration_leaves_the_limit_alone(self):
        before = sys.getrecursionlimit()
        evidence = _chain_evidence(50)
        ADCEnum(evidence, F1(), epsilon=_chain_epsilon(evidence)).enumerate()
        assert sys.getrecursionlimit() == before


class TestDeepSkipChain:
    def test_chain_descends_beyond_the_recursion_limit(self):
        """A 1200-deep skip chain mines correctly with the default
        interpreter recursion limit (1000) untouched."""
        n = 1200
        before = sys.getrecursionlimit()
        assert n > before  # the construction must actually exceed the limit
        evidence = _chain_evidence(n)
        enum = ADCEnum(evidence, F1(), epsilon=_chain_epsilon(evidence))
        results = enum.enumerate()
        assert sys.getrecursionlimit() == before
        assert enum.statistics.extra["max_stack_depth"] > before
        assert enum.statistics.extra["max_stack_depth"] == n
        # One minimal single-predicate DC per evidence, each leaving every
        # other evidence's pairs uncovered.
        assert {adc.hitting_set_mask for adc in results} == {
            1 << (2 * i) for i in range(n)
        }
        total = evidence.total_pairs
        counts = evidence.counts
        expected = {
            1 << (2 * i): (total - int(counts[i])) / total for i in range(n)
        }
        assert all(
            adc.violation_score == expected[adc.hitting_set_mask] for adc in results
        )
        assert all(
            len(adc.constraint.predicates) == 1
            and next(iter(adc.constraint.predicates)).operator is Operator.NE
            for adc in results
        )

    def test_small_chain_matches_legacy(self):
        """The chain construction itself is cross-validated against the
        recursive reference at a depth the old implementation can reach."""
        n = 120
        evidence = _chain_evidence(n)
        epsilon = _chain_epsilon(evidence)
        new = ADCEnum(evidence, F1(), epsilon=epsilon)
        old = LegacyADCEnum(evidence, F1(), epsilon=epsilon)
        new_out = [(a.hitting_set_mask, a.violation_score) for a in new.enumerate()]
        old_out = [(a.hitting_set_mask, a.violation_score) for a in old.enumerate()]
        assert new_out == old_out
        assert len(new_out) == n
        assert new.statistics.recursive_calls == old.statistics.recursive_calls
        assert new.statistics.hit_branches == old.statistics.hit_branches
        assert new.statistics.skip_branches == old.statistics.skip_branches
        assert new.statistics.outputs == old.statistics.outputs
