"""Optional numba backend for the flat kernels.

Importing this module raises :class:`ImportError` when numba is not
installed; the dispatch layer treats that as "backend unavailable" (and
turns it into a clean :class:`RuntimeError` when ``REPRO_NATIVE=numba``
demanded it).  The jitted functions mirror the C contracts exactly and are
compiled lazily on first call with ``cache=True`` so warm processes skip
recompilation.

The explicit-stack search workspace stays on the shared arena
implementation (:class:`~repro.native.numpy_backend.NumpySearchWorkspace`);
only the flat kernels are jitted here.  Auto-detection therefore prefers
the C extension — which accelerates the search arena as well — and reaches
for numba only when no C compiler is available.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401  (ImportError here = backend unavailable)

NAME = "numba"


@njit(cache=True)
def _popcount_word(word):
    count = 0
    while word:
        word &= word - np.uint64(1)
        count += 1
    return count


@njit(cache=True)
def _popcount(words, out):
    for i in range(words.size):
        out[i] = _popcount_word(words[i])


@njit(cache=True)
def _intersection_counts(ev, mask, out):
    n_words, n_cols = ev.shape
    for e in range(n_cols):
        out[e] = 0
    for w in range(n_words):
        m = mask[w]
        if m == np.uint64(0):
            continue
        for e in range(n_cols):
            out[e] += _popcount_word(ev[w, e] & m)


@njit(cache=True)
def _crit_apply(rows, depth, new_row, covers, removed):
    viable = True
    n_words = rows.shape[1]
    for d in range(depth):
        any_left = np.uint64(0)
        for w in range(n_words):
            r = rows[d, w] & covers[w]
            removed[d, w] = r
            rows[d, w] ^= r
            any_left |= rows[d, w]
        if any_left == np.uint64(0):
            viable = False
    rows[depth] = new_row
    return viable


@njit(cache=True)
def _crit_undo(rows, depth, removed):
    n_words = rows.shape[1]
    for d in range(depth):
        for w in range(n_words):
            rows[d, w] |= removed[d, w]


@njit(cache=True)
def _tile_plane(kinds, a, b, lookup, i0, i1, j0, j1, out):
    n_words = lookup.shape[2]
    width = j1 - j0
    for i in range(i0, i1):
        row_base = (i - i0) * width
        for g in range(kinds.size):
            kind = kinds[g]
            if kind == 0:
                cat = np.int64(a[g, i])
                for j in range(j0, j1):
                    p = row_base + (j - j0)
                    for w in range(n_words):
                        out[p, w] |= lookup[g, cat, w]
            elif kind == 1:
                left = a[g, i]
                for j in range(j0, j1):
                    d = left - b[g, j]
                    cat = 0 if d < 0.0 else (1 if d == 0.0 else 2)
                    p = row_base + (j - j0)
                    for w in range(n_words):
                        out[p, w] |= lookup[g, cat, w]
            else:
                left = a[g, i]
                for j in range(j0, j1):
                    cat = 1 if left == b[g, j] else 0
                    p = row_base + (j - j0)
                    for w in range(n_words):
                        out[p, w] |= lookup[g, cat, w]


@njit(cache=True)
def _unique_rows(words, table, uniq, inverse, counts):
    n, w = words.shape
    mask = np.uint64(table.size - 1)
    n_unique = 0
    for r in range(n):
        h = np.uint64(1469598103934665603)
        for k in range(w):
            h = (h ^ words[r, k]) * np.uint64(1099511628211)
        slot = np.int64(h & mask)
        while True:
            u = table[slot]
            if u < 0:
                table[slot] = n_unique
                for k in range(w):
                    uniq[n_unique, k] = words[r, k]
                counts[n_unique] = 1
                inverse[r] = n_unique
                n_unique += 1
                break
            match = True
            for k in range(w):
                if uniq[u, k] != words[r, k]:
                    match = False
                    break
            if match:
                counts[u] += 1
                inverse[r] = u
                break
            slot = (slot + 1) & np.int64(mask)
    return n_unique


class NumbaKernels:
    """Flat kernels jitted with numba, numpy-compatible signatures."""

    name = NAME

    @staticmethod
    def popcount(words: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(words, dtype=np.uint64).ravel()
        out = np.empty(flat.size, dtype=np.uint8)
        _popcount(flat, out)
        return out.reshape(np.shape(words))

    @staticmethod
    def intersection_counts(ev_planes: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
        ev = np.ascontiguousarray(ev_planes, dtype=np.uint64)
        out = np.empty(ev.shape[1], dtype=np.uint32)
        _intersection_counts(ev, np.ascontiguousarray(mask_words, dtype=np.uint64), out)
        return out

    @staticmethod
    def crit_apply(
        rows: np.ndarray, depth: int, new_row: np.ndarray, covers: np.ndarray
    ) -> tuple[bool, np.ndarray]:
        removed = np.zeros((depth, rows.shape[1]), dtype=np.uint64)
        viable = _crit_apply(
            rows, depth,
            np.ascontiguousarray(new_row, dtype=np.uint64),
            np.ascontiguousarray(covers, dtype=np.uint64),
            removed,
        )
        return bool(viable), removed

    @staticmethod
    def crit_undo(rows: np.ndarray, depth: int, removed: np.ndarray) -> None:
        _crit_undo(rows, depth, removed)

    @staticmethod
    def tile_plane(
        kinds: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        lookup: np.ndarray,
        i0: int,
        i1: int,
        j0: int,
        j1: int,
        n_words: int,
    ) -> np.ndarray:
        out = np.zeros(((i1 - i0) * (j1 - j0), n_words), dtype=np.uint64)
        _tile_plane(kinds, a, b, lookup, i0, i1, j0, j1, out)
        return out

    @staticmethod
    def unique_rows(words: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        flat = np.ascontiguousarray(words, dtype=np.uint64)
        n, n_words = flat.shape
        if n == 0:
            return flat, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        table_size = 1
        while table_size < 2 * n:
            table_size <<= 1
        table = np.full(table_size, -1, dtype=np.int64)
        uniq = np.empty((n, n_words), dtype=np.uint64)
        inverse = np.empty(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
        n_unique = int(_unique_rows(flat, table, uniq, inverse, counts))
        uniq = uniq[:n_unique]
        counts = counts[:n_unique]
        # First-seen hash order -> canonical lexicographic order.
        keys = tuple(uniq[:, word] for word in range(n_words - 1, -1, -1))
        order = np.lexsort(keys)
        rank = np.empty(n_unique, dtype=np.int64)
        rank[order] = np.arange(n_unique, dtype=np.int64)
        return np.ascontiguousarray(uniq[order]), rank[inverse], counts[order]
