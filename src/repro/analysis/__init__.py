"""Evaluation metrics and reporting helpers."""

from repro.analysis.metrics import (
    DCSetComparison,
    compare_dc_sets,
    dataset_statistics,
    f1_score,
    g_recall,
    precision_recall_f1,
)
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "DCSetComparison",
    "compare_dc_sets",
    "precision_recall_f1",
    "f1_score",
    "g_recall",
    "dataset_statistics",
    "format_table",
    "format_series",
]
