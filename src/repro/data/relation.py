"""Typed in-memory relations.

A :class:`Relation` is the database abstraction the whole library operates
on: a named, ordered collection of typed columns backed by numpy arrays.
It supports the operations the mining pipeline needs — row access, column
access, uniform row sampling, projection, and CSV round-trips — and nothing
more.  The running example of the paper (Table 1) is provided by
:func:`running_example`.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.types import ColumnType, coerce_values, infer_column_type


@dataclass(frozen=True)
class Column:
    """A single typed column of a relation."""

    name: str
    type: ColumnType
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.values)

    def distinct_count(self) -> int:
        """Number of distinct values in the column."""
        return len(np.unique(self.values))

    def value_set(self) -> set[object]:
        """Distinct values as a Python set (used by the 30% sharing rule)."""
        return set(self.values.tolist())


class Relation:
    """A finite set of tuples over a fixed relation schema.

    Columns are stored as numpy arrays (``float64`` / ``int64`` for numeric
    columns, ``object`` for strings) which allows the evidence-set builder to
    vectorise tuple-pair comparisons.

    Parameters
    ----------
    name:
        Relation name (used in reports and DC rendering).
    columns:
        Ordered mapping from column name to raw values.  All columns must
        have the same length.
    types:
        Optional explicit column types; inferred from the data if omitted.
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence[object]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> None:
        if not columns:
            raise ValueError("a relation needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns of {name!r} have inconsistent lengths: {lengths}")
        self.name = name
        self._columns: dict[str, Column] = {}
        for column_name, values in columns.items():
            column_type = (types or {}).get(column_name) or infer_column_type(values)
            coerced = coerce_values(list(values), column_type)
            if column_type is ColumnType.INTEGER:
                array = np.asarray(coerced, dtype=np.int64)
            elif column_type is ColumnType.FLOAT:
                array = np.asarray(coerced, dtype=np.float64)
            else:
                array = np.asarray(coerced, dtype=object)
            self._columns[column_name] = Column(column_name, column_type, array)
        self._n_rows = lengths.pop() if lengths else 0
        # Per-column string factorization cache (see string_codes): maps a
        # column name to its (value -> code lookup, per-row codes) pair, and
        # an ordered column pair to its jointly comparable code arrays.
        # Codes follow first-appearance order, so appending rows never
        # changes an existing row's code (see append_rows).
        self._factorization_cache: dict[str, tuple[dict[str, int], np.ndarray]] = {}
        self._pair_codes_cache: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Schema and size
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        """Column names in schema order."""
        return list(self._columns)

    @property
    def columns(self) -> list[Column]:
        """Column objects in schema order."""
        return list(self._columns.values())

    @property
    def n_rows(self) -> int:
        """Number of tuples in the relation."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of attributes in the schema."""
        return len(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> Column:
        """Return the column called ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"relation {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Whether the schema contains ``name``."""
        return name in self._columns

    def column_type(self, name: str) -> ColumnType:
        """Type of the column called ``name``."""
        return self.column(name).type

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a ``{column: value}`` dict."""
        if not 0 <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range for {self._n_rows} rows")
        return {name: col.values[index] for name, col in self._columns.items()}

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over all rows as dicts."""
        for index in range(self._n_rows):
            yield self.row(index)

    def value(self, index: int, column: str) -> object:
        """Value of ``column`` in row ``index``."""
        return self.column(column).values[index]

    # ------------------------------------------------------------------
    # Cached string factorization (evidence-builder support)
    # ------------------------------------------------------------------
    def _column_factorization(self, name: str) -> tuple[dict[str, int], np.ndarray]:
        """Value→code lookup of a column and the per-row codes into it.

        Computed once per column and cached for the relation's lifetime;
        every predicate group over the column reuses it on every evidence
        build instead of re-running ``np.unique`` string factorization.
        Codes are assigned in first-appearance order, which keeps them
        *stable under appends*: :meth:`append_rows` extends the lookup and
        code array for the new rows without touching existing codes, so an
        incremental evidence build sees the same equality structure a full
        rebuild would.
        """
        cached = self._factorization_cache.get(name)
        if cached is None:
            values = np.asarray([str(v) for v in self.column(name).values.tolist()])
            if len(values) == 0:
                cached = ({}, np.zeros(0, dtype=np.int64))
            else:
                uniques, first_index, inverse = np.unique(
                    values, return_index=True, return_inverse=True
                )
                # Remap np.unique's sorted codes onto first-appearance order.
                order = np.argsort(first_index, kind="stable")
                rank = np.empty(len(uniques), dtype=np.int64)
                rank[order] = np.arange(len(uniques), dtype=np.int64)
                lookup = {
                    str(value): int(rank[position])
                    for position, value in enumerate(uniques.tolist())
                }
                cached = (lookup, rank[inverse.ravel()])
            self._factorization_cache[name] = cached
        return cached

    def string_codes(self, left: str, right: str) -> tuple[np.ndarray, np.ndarray]:
        """Jointly comparable integer codes for two (string) columns.

        Equal codes mean equal string values *across* the two columns.  For a
        single column this is its cached factorization; for a pair of
        distinct columns the two per-column factorizations are aligned on a
        merged vocabulary (work proportional to the number of distinct
        values, not the number of rows).
        """
        left_lookup, left_codes = self._column_factorization(left)
        if left == right:
            return left_codes, left_codes
        cached = self._pair_codes_cache.get((left, right))
        if cached is None:
            right_lookup, right_codes = self._column_factorization(right)
            joint: dict[str, int] = {}
            for value in left_lookup:
                joint[value] = len(joint)
            for value in right_lookup:
                if value not in joint:
                    joint[value] = len(joint)
            left_map = np.empty(len(left_lookup), dtype=np.int64)
            for value, code in left_lookup.items():
                left_map[code] = joint[value]
            right_map = np.empty(len(right_lookup), dtype=np.int64)
            for value, code in right_lookup.items():
                right_map[code] = joint[value]
            cached = (left_map[left_codes], right_map[right_codes])
            self._pair_codes_cache[(left, right)] = cached
        return cached

    # ------------------------------------------------------------------
    # Appending (incremental-store support)
    # ------------------------------------------------------------------
    def append_rows(self, rows: "Relation | Iterable[Mapping[str, object]]") -> int:
        """Append a batch of rows in place; returns the number of rows added.

        ``rows`` is either a relation over the same schema or an iterable of
        ``{column: value}`` records.  Values are coerced to the existing
        column types (types are fixed by the schema, never re-inferred).

        Cached string-factorization codes are *extended, not recomputed*:
        existing rows keep their codes (first-appearance coding) and only the
        new rows are factorized, so an incremental evidence build after an
        append of ``m`` rows pays ``O(m)`` factorization work instead of
        ``O(n + m)``.  Jointly-aligned pair codes are invalidated (they are
        rebuilt from the per-column factorizations on demand, at cost
        proportional to the number of distinct values).
        """
        if isinstance(rows, Relation):
            if rows.column_names != self.column_names:
                raise ValueError(
                    f"cannot append relation with schema {rows.column_names} "
                    f"to schema {self.column_names}"
                )
            batch = {name: rows.column(name).values.tolist() for name in self.column_names}
            n_new = rows.n_rows
        else:
            records = list(rows)
            for record in records:
                missing = [name for name in self.column_names if name not in record]
                if missing:
                    raise ValueError(f"appended row is missing columns {missing}")
            batch = {
                name: [record[name] for record in records] for name in self.column_names
            }
            n_new = len(records)
        if n_new == 0:
            return 0

        # Coerce every column before mutating any, so a bad value in one
        # column (streaming data is dirty by premise) cannot leave the
        # relation with columns of unequal length.
        extensions: dict[str, np.ndarray] = {}
        for name, column in self._columns.items():
            coerced = coerce_values(batch[name], column.type)
            if column.type is ColumnType.INTEGER:
                extensions[name] = np.asarray(coerced, dtype=np.int64)
            elif column.type is ColumnType.FLOAT:
                extensions[name] = np.asarray(coerced, dtype=np.float64)
            else:
                extensions[name] = np.asarray(coerced, dtype=object)
        for name, column in list(self._columns.items()):
            self._columns[name] = Column(
                name, column.type, np.concatenate([column.values, extensions[name]])
            )

        # Extend the per-column factorizations for the new rows only.  The
        # lookup dict is replaced (not mutated) so copies sharing the old
        # cache entry keep seeing a consistent snapshot.
        for name, (lookup, codes) in list(self._factorization_cache.items()):
            extended_lookup = dict(lookup)
            new_codes = np.empty(n_new, dtype=np.int64)
            new_values = self._columns[name].values[self._n_rows:]
            for position, value in enumerate(new_values.tolist()):
                text = str(value)
                code = extended_lookup.get(text)
                if code is None:
                    code = len(extended_lookup)
                    extended_lookup[text] = code
                new_codes[position] = code
            self._factorization_cache[name] = (
                extended_lookup,
                np.concatenate([codes, new_codes]),
            )
        self._pair_codes_cache.clear()

        self._n_rows += n_new
        return n_new

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------
    def project(self, column_names: Sequence[str]) -> "Relation":
        """Return a relation containing only the given columns."""
        data = {name: self.column(name).values for name in column_names}
        types = {name: self.column(name).type for name in column_names}
        return Relation(self.name, data, types)

    def take(self, indices: Sequence[int]) -> "Relation":
        """Return a relation containing the rows at ``indices`` (in order)."""
        index_array = np.asarray(list(indices), dtype=np.int64)
        data = {name: col.values[index_array] for name, col in self._columns.items()}
        types = {name: col.type for name, col in self._columns.items()}
        return Relation(self.name, data, types)

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows."""
        return self.take(range(min(n, self._n_rows)))

    def sample(self, fraction: float, seed: int | None = None) -> "Relation":
        """Uniformly sample ``fraction`` of the rows without replacement.

        This is the sampler component of ADCMiner (Figure 1, step 2).  A
        fraction of 1.0 (or more) returns the relation unchanged.
        """
        if fraction <= 0:
            raise ValueError("sample fraction must be positive")
        if fraction >= 1.0:
            return self
        rng = random.Random(seed)
        sample_size = max(2, round(fraction * self._n_rows))
        indices = sorted(rng.sample(range(self._n_rows), min(sample_size, self._n_rows)))
        return self.take(indices)

    def copy(self) -> "Relation":
        """Return a deep copy (noise injection mutates copies, never inputs).

        Cached string factorizations carry over: the cached arrays and lookup
        dicts are never mutated in place (``append_rows`` replaces them), so
        sharing them between copies is safe and spares the copy a full
        refactorization on its first evidence build.
        """
        data = {name: col.values.copy() for name, col in self._columns.items()}
        types = {name: col.type for name, col in self._columns.items()}
        duplicate = Relation(self.name, data, types)
        duplicate._factorization_cache = dict(self._factorization_cache)
        duplicate._pair_codes_cache = dict(self._pair_codes_cache)
        return duplicate

    def with_values(self, column: str, values: np.ndarray) -> "Relation":
        """Return a copy of the relation with one column replaced."""
        data = {name: col.values for name, col in self._columns.items()}
        types = {name: col.type for name, col in self._columns.items()}
        data[column] = values
        return Relation(self.name, data, types)

    # ------------------------------------------------------------------
    # Construction helpers and IO
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        name: str,
        records: Iterable[Mapping[str, object]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Relation":
        """Build a relation from an iterable of row dicts."""
        records = list(records)
        if not records:
            raise ValueError("cannot build a relation from zero records")
        column_names = list(records[0])
        data = {name_: [record[name_] for record in records] for name_ in column_names}
        return cls(name, data, types)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        name: str | None = None,
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Relation":
        """Load a relation from a CSV file with a header row."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            records = list(reader)
        return cls.from_records(name or path.stem, records, types)

    def to_csv(self, path: str | Path) -> None:
        """Write the relation to a CSV file with a header row."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.column_names)
            for row in self.rows():
                writer.writerow([row[name] for name in self.column_names])

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Relation({self.name!r}, rows={self._n_rows}, columns={self.column_names})"

    def describe(self) -> str:
        """One line per column: name, type, distinct count."""
        lines = [f"{self.name}: {self._n_rows} rows"]
        for col in self.columns:
            lines.append(f"  {col.name:<16} {col.type.value:<8} distinct={col.distinct_count()}")
        return "\n".join(lines)


@dataclass
class RelationStatistics:
    """Summary statistics of a relation (used for Table 4)."""

    name: str
    n_rows: int
    n_columns: int
    n_golden_dcs: int = 0
    extra: dict[str, object] = field(default_factory=dict)


def running_example() -> Relation:
    """The 15-tuple income/tax relation of Table 1 in the paper.

    Monetary values are stored as integers (``28K`` becomes ``28000``) so
    that order predicates apply to them.
    """
    names = ["Alice", "Mark", "Bob", "Mary", "Alice", "Julia", "Jimmy", "Sam",
             "Jeff", "Gary", "Ron", "Jennifer", "Adam", "Tim", "Sarah"]
    states = ["NY", "NY", "NY", "NY", "NY", "WA", "WA", "WA",
              "WA", "WA", "WA", "WA", "WA", "IL", "IL"]
    zips = [11803, 10102, 13914, 10437, 10437, 98112, 98112, 98112,
            98112, 98112, 98112, 98112, 98112, 62078, 98112]
    incomes = [28000, 42000, 93000, 58000, 26000, 27000, 24000, 49000,
               56000, 50000, 58000, 61000, 20000, 39000, 54000]
    taxes = [2400, 4700, 11800, 6700, 2100, 1400, 1600, 6800,
             7800, 7200, 8000, 8500, 1000, 5000, 5000]
    return Relation(
        "people",
        {
            "Name": names,
            "State": states,
            "Zip": zips,
            "Income": incomes,
            "Tax": taxes,
        },
        types={
            "Name": ColumnType.STRING,
            "State": ColumnType.STRING,
            "Zip": ColumnType.INTEGER,
            "Income": ColumnType.INTEGER,
            "Tax": ColumnType.INTEGER,
        },
    )
