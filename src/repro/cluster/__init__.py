"""Distributed mining fabric: coordinator + workers over pluggable transports.

The cluster layer ships the engine's existing work units — picklable
:class:`~repro.engine.kernel.TileKernel` + shard ranges, and now root
enumeration subtrees — across process and machine boundaries:

* :mod:`repro.cluster.transport` — length-prefixed pickle frames over an
  in-process queue pair (:class:`LocalTransport`, for tests) or a TCP
  socket (:class:`SocketTransport`).
* :mod:`repro.cluster.worker` — the ``python -m repro.cluster.worker
  --connect host:port`` receive-execute-reply loop: context shipped once,
  shard results streamed back.
* :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`: worker
  registry with heartbeats, pair-count-balanced largest-first assignment,
  re-issue of shards on worker death or straggler timeout, merge-tree
  reduction.
* :mod:`repro.cluster.shm` — shared-memory word planes: same-machine
  workers return a tiny segment handle instead of pickling whole partials
  through the link.
* :mod:`repro.cluster.contexts` / :mod:`repro.cluster.build` — the
  evidence workload (``method="cluster"`` of
  :func:`~repro.core.evidence_builder.build_evidence_set`).
* :mod:`repro.cluster.enum` — distributed ADC enumeration
  (:func:`parallel_enumerate`), farming the root hit-loop subtrees of
  :class:`~repro.core.adc_enum.ADCEnum` out as work units.
* :mod:`repro.cluster.local` — :class:`LocalCluster`, a one-call
  coordinator + n local workers (socket subprocesses or in-process
  threads).

Invariant carried over from the engine: any transport, worker count,
failure schedule, or merge-tree shape yields an
:class:`~repro.core.evidence.EvidenceSet` bit-identical to the serial
tiled build, and cluster-backed mining returns the exact DC list of
``method="tiled"``.
"""

from repro.cluster.build import (
    TASKS_PER_WORKER,
    build_evidence_set_cluster,
    fold_tiles_cluster,
    merge_partials_tree,
)
from repro.cluster.contexts import TileFoldContext, shard_tasks
from repro.cluster.coordinator import ClusterCoordinator, ClusterError
from repro.cluster.enum import EnumContext, parallel_enumerate
from repro.cluster.local import LocalCluster, resolve_coordinator
from repro.cluster.shm import ShmPartial, partial_from_shm, partial_to_shm
from repro.cluster.transport import (
    LocalTransport,
    SocketTransport,
    Transport,
    TransportClosed,
    TransportError,
    TransportTimeout,
    connect_socket,
    listen_socket,
    parse_address,
)

# NOTE: repro.cluster.worker is deliberately NOT imported here — it is the
# ``python -m repro.cluster.worker`` entry point, and importing it from the
# package initializer would make runpy warn about the double import in
# every spawned worker.  Import ``serve`` from the module directly.

__all__ = [
    "TASKS_PER_WORKER",
    "build_evidence_set_cluster",
    "fold_tiles_cluster",
    "merge_partials_tree",
    "TileFoldContext",
    "shard_tasks",
    "ClusterCoordinator",
    "ClusterError",
    "EnumContext",
    "parallel_enumerate",
    "LocalCluster",
    "resolve_coordinator",
    "ShmPartial",
    "partial_from_shm",
    "partial_to_shm",
    "LocalTransport",
    "SocketTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "connect_socket",
    "listen_socket",
    "parse_address",
]
