"""Work contexts: the payloads cluster workers execute tasks against.

A *context* is the expensive, shipped-once half of a submission (the
counterpart of the process pool's initializer args); a *task* is the tiny
per-unit payload.  Workers call ``context.run(task)`` — any picklable
object with that method works, so new distributed workloads plug into the
coordinator without touching the transport or scheduling code.

:class:`TileFoldContext` is the evidence workload: the same
``(TileKernel, tiles)`` pair the process pool ships, with ``(start, stop)``
shard ranges as tasks, exactly as
:func:`~repro.engine.parallel.fold_tiles_pooled` runs them locally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.parallel import fold_tiles
from repro.engine.scheduler import shard_tiles

if TYPE_CHECKING:
    from repro.engine.kernel import TileKernel
    from repro.engine.partial import PartialEvidenceSet
    from repro.engine.scheduler import Tile


@dataclass
class TileFoldContext:
    """Fold the worker's kernel over ``tiles[start:stop]`` shard ranges.

    ``delay_per_task`` injects a sleep before each shard — a testing hook
    the chaos and straggler tests (and the benchmark's failure-injection
    sweep) use to hold a worker *mid-shard* long enough to kill it.
    """

    kernel: "TileKernel"
    tiles: tuple["Tile", ...]
    delay_per_task: float = 0.0

    def run(self, task: tuple[int, int]) -> "PartialEvidenceSet":
        if self.delay_per_task:
            time.sleep(self.delay_per_task)
        start, stop = task
        return fold_tiles(self.kernel, self.tiles[start:stop])

    def describe(self, task: tuple[int, int]) -> dict[str, int]:
        """Shard size metadata a traced worker attaches to its task span."""
        start, stop = task
        shard = self.tiles[start:stop]
        return {
            "tiles": len(shard),
            "pairs": sum(tile.n_pairs for tile in shard),
        }


def shard_tasks(
    tiles: tuple["Tile", ...], k: int
) -> tuple[list[tuple[int, int]], list[int]]:
    """Balanced ``(start, stop)`` shard tasks plus their pair-count weights.

    The same :func:`~repro.engine.scheduler.shard_tiles` balancing the
    process pool uses; the weights drive the coordinator's
    largest-first assignment.
    """
    shards = shard_tiles(tiles, k)
    return (
        [(shard.start, shard.stop) for shard in shards],
        [shard.n_pairs for shard in shards],
    )
