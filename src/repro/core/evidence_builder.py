"""Evidence-set construction over packed 64-bit predicate words.

Three builders are provided, all producing the packed
``(n_evidences, n_words)`` uint64 representation natively (no Python-int
round-trip anywhere):

* :func:`build_evidence_set_tiled` — the default builder.  It streams over
  ``tile_rows x tile_rows`` blocks of the ordered-pair matrix: for every
  tile it computes per-group order categories and per-pair word planes with
  numpy broadcasting, deduplicates the tile's evidences against a running
  dictionary keyed on word bytes, and accumulates multiplicities and
  CSR-style tuple participation incrementally.  Peak memory is
  ``O(n_words * tile_rows^2)`` instead of the dense builder's
  ``O(n_words * n^2)``, while each tile stays fully vectorised — the
  bit-level strategy of DCFinder [37] restructured for bounded memory (and
  for an optional parallel tile map later).
* :func:`build_evidence_set_dense` — the original dense builder
  materialising full ``n x n`` category matrices and word planes.  Retained
  behind a flag as a correctness oracle and for benchmarking.
* :func:`build_evidence_set_pairwise` — the naive row-by-row builder of
  FASTDC/AFASTDC [11], kept both as a correctness oracle for tests and as
  the evidence-construction baseline timed in Figures 7 and 8.

:func:`build_evidence_set` dispatches between them by ``method`` and is
what the pipeline entry points call.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import (
    SATISFIED_BY_CATEGORY,
    SATISFIED_BY_CATEGORY_STRING,
    OrderCategory,
)
from repro.core.evidence import (
    EvidenceSet,
    TupleParticipation,
    evidence_from_pair_masks,
    n_words_for,
    unique_word_rows,
)
from repro.core.predicate_space import PredicateSpace
from repro.core.predicates import PredicateForm
from repro.data.relation import Relation
from repro.data.types import ColumnType

_WORD_BITS = 64

#: Default edge length of the row tiles streamed by the tiled builder.
DEFAULT_TILE_ROWS = 256


def build_evidence_set(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
    method: str = "tiled",
    tile_rows: int = DEFAULT_TILE_ROWS,
) -> EvidenceSet:
    """Build ``Evi(D)``, dispatching to the requested builder.

    Parameters
    ----------
    relation:
        The database ``D`` (or a sample of it).
    space:
        Predicate space produced by
        :func:`repro.core.predicate_space.build_predicate_space`.
    include_participation:
        Whether to also build the per-evidence tuple-participation structure
        (needed by the f2/f3 approximation functions; costs one extra pass).
    method:
        ``"tiled"`` (default), ``"dense"`` (the full-plane oracle) or
        ``"pairwise"`` (the naive AFASTDC-style oracle).  ``"vectorized"``
        is accepted as a legacy alias of ``"tiled"``.
    tile_rows:
        Tile edge length of the tiled builder (ignored by the others).
    """
    if method in ("tiled", "vectorized"):
        return build_evidence_set_tiled(
            relation, space, include_participation=include_participation, tile_rows=tile_rows
        )
    if method == "dense":
        return build_evidence_set_dense(
            relation, space, include_participation=include_participation
        )
    if method == "pairwise":
        return build_evidence_set_pairwise(
            relation, space, include_participation=include_participation
        )
    raise ValueError(f"unknown evidence construction method {method!r}")


def build_evidence_set_tiled(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
    tile_rows: int = DEFAULT_TILE_ROWS,
) -> EvidenceSet:
    """Build ``Evi(D)`` by streaming over row-tile pairs (the default).

    The ordered-pair matrix is processed in ``tile_rows x tile_rows``
    blocks.  Every block computes its word plane with the same broadcasting
    as the dense builder restricted to the block's rows/columns, then folds
    its distinct evidences into a running ``word-bytes -> evidence id``
    dictionary, so no ``n x n`` array is ever allocated.
    """
    if tile_rows < 1:
        raise ValueError("tile_rows must be positive")
    n = relation.n_rows
    if n < 2:
        return EvidenceSet(space, [], [], n, [] if include_participation else None)

    n_words = n_words_for(len(space))
    groups = _prepare_groups(relation, space)

    evidence_ids: dict[bytes, int] = {}
    word_rows: list[np.ndarray] = []
    count_chunks: list[np.ndarray] = []  # (global ids, per-tile counts) pairs
    id_chunks: list[np.ndarray] = []
    part_key_chunks: list[np.ndarray] = []
    part_count_chunks: list[np.ndarray] = []

    for i0 in range(0, n, tile_rows):
        i1 = min(i0 + tile_rows, n)
        for j0 in range(0, n, tile_rows):
            j1 = min(j0 + tile_rows, n)
            plane = np.zeros((i1 - i0, j1 - j0, n_words), dtype=np.uint64)
            for group in groups:
                categories = group.tile_categories(i0, i1, j0, j1)
                plane |= group.lookup[categories]

            flat = plane.reshape(-1, n_words)
            left_ids = np.repeat(np.arange(i0, i1, dtype=np.int64), j1 - j0)
            right_ids = np.tile(np.arange(j0, j1, dtype=np.int64), i1 - i0)
            keep = left_ids != right_ids
            if not keep.all():
                flat = flat[keep]
                left_ids = left_ids[keep]
                right_ids = right_ids[keep]
            if not len(flat):
                continue

            unique_words, inverse, tile_counts = unique_word_rows(flat)
            local_to_global = np.empty(len(unique_words), dtype=np.int64)
            for local, row in enumerate(unique_words):
                key = row.tobytes()
                global_id = evidence_ids.get(key)
                if global_id is None:
                    global_id = len(evidence_ids)
                    evidence_ids[key] = global_id
                    # copy: appending the view would pin the whole per-tile
                    # unique array, defeating the O(tile^2) memory bound.
                    word_rows.append(row.copy())
                local_to_global[local] = global_id
            id_chunks.append(local_to_global)
            count_chunks.append(tile_counts)

            if include_participation:
                pair_ids = local_to_global[inverse]
                keys = np.concatenate([pair_ids * n + left_ids, pair_ids * n + right_ids])
                tile_keys, tile_key_counts = np.unique(keys, return_counts=True)
                part_key_chunks.append(tile_keys)
                part_count_chunks.append(tile_key_counts)

    n_evidences = len(evidence_ids)
    words = (
        np.vstack(word_rows) if word_rows else np.zeros((0, n_words), dtype=np.uint64)
    )
    counts = np.zeros(n_evidences, dtype=np.int64)
    for global_ids, tile_counts in zip(id_chunks, count_chunks):
        np.add.at(counts, global_ids, tile_counts)

    participation = None
    if include_participation:
        participation = _participation_from_key_chunks(
            part_key_chunks, part_count_chunks, n, n_evidences
        )
    return EvidenceSet(space, counts=counts, n_rows=n, participation=participation, words=words)


def build_evidence_set_dense(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
) -> EvidenceSet:
    """Build ``Evi(D)`` with full ``n x n`` word planes (the dense oracle).

    This is the original DCFinder-style strategy materialising one dense
    plane per 64-bit word.  It is kept behind the ``method="dense"`` flag as
    a correctness oracle for the tiled builder and for memory benchmarking;
    the tiled builder computes exactly the same planes tile by tile.
    """
    n = relation.n_rows
    if n < 2:
        return EvidenceSet(space, [], [], n, [] if include_participation else None)

    n_words = n_words_for(len(space))
    groups = _prepare_groups(relation, space)
    plane = np.zeros((n, n, n_words), dtype=np.uint64)
    for group in groups:
        categories = group.tile_categories(0, n, 0, n)
        plane |= group.lookup[categories]

    off_diagonal = ~np.eye(n, dtype=bool)
    flat_words = plane[off_diagonal]
    unique_words, inverse, counts = unique_word_rows(flat_words)

    participation = None
    if include_participation:
        row_index, col_index = np.nonzero(off_diagonal)
        participation = _build_participation(inverse, row_index, col_index, len(unique_words))
    return EvidenceSet(
        space, counts=counts, n_rows=n, participation=participation, words=unique_words
    )


def build_evidence_set_pairwise(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
) -> EvidenceSet:
    """Build ``Evi(D)`` by evaluating every predicate on every ordered pair.

    This is the quadratic, per-pair strategy of AFASTDC [11]; it is orders of
    magnitude slower than the tiled builder but trivially correct, so it
    doubles as the reference implementation in the test suite.
    """
    n = relation.n_rows
    rows = [relation.row(i) for i in range(n)]
    pair_masks: list[int] = []
    pair_tuples: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            mask = 0
            for index, predicate in enumerate(space.predicates):
                if predicate.evaluate(rows[i], rows[j]):
                    mask |= 1 << index
            pair_masks.append(mask)
            pair_tuples.append((i, j))
    return evidence_from_pair_masks(
        space,
        pair_masks,
        n,
        pair_tuples if include_participation else None,
    )


# ----------------------------------------------------------------------
# Internals shared by the tiled and dense builders
# ----------------------------------------------------------------------
class _PreparedGroup:
    """One predicate group with its comparison data resolved up front.

    ``tile_categories(i0, i1, j0, j1)`` returns the
    :class:`OrderCategory` matrix of the ordered pairs
    ``(t_i, t_j), i in [i0, i1), j in [j0, j1)`` — the per-tile slice of
    the dense builder's category matrix, computed without materialising it.
    """

    def __init__(self, lookup: np.ndarray) -> None:
        self.lookup = lookup

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        raise NotImplementedError


class _SingleTupleGroup(_PreparedGroup):
    """``t[A] op t[B]``: the category depends only on the left row."""

    def __init__(self, lookup: np.ndarray, per_row: np.ndarray) -> None:
        super().__init__(lookup)
        self.per_row = per_row

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        return np.broadcast_to(self.per_row[i0:i1, None], (i1 - i0, j1 - j0))


class _NumericPairGroup(_PreparedGroup):
    """Numeric ``t[A] op t'[B]``: sign of the value difference."""

    def __init__(self, lookup: np.ndarray, left: np.ndarray, right: np.ndarray) -> None:
        super().__init__(lookup)
        self.left = left
        self.right = right

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        sign = np.sign(self.left[i0:i1, None] - self.right[None, j0:j1])
        return (sign + 1).astype(np.int8)


class _StringPairGroup(_PreparedGroup):
    """String ``t[A] op t'[B]``: equality of factorization codes."""

    def __init__(self, lookup: np.ndarray, left_codes: np.ndarray, right_codes: np.ndarray) -> None:
        super().__init__(lookup)
        self.left_codes = left_codes
        self.right_codes = right_codes

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        equal = self.left_codes[i0:i1, None] == self.right_codes[None, j0:j1]
        categories = np.full(equal.shape, OrderCategory.LESS, dtype=np.int8)
        categories[equal] = OrderCategory.EQUAL
        return categories


def _prepare_groups(relation: Relation, space: PredicateSpace) -> list[_PreparedGroup]:
    """Resolve every predicate group's comparison data and word lookup."""
    prepared: list[_PreparedGroup] = []
    for group in space.groups:
        left_column, right_column, form = group.key
        lookup = _category_masks(space, group.indices, group.numeric)
        if not lookup.any():
            continue
        left = relation.column(left_column)
        right = relation.column(right_column)
        numeric = left.type.is_numeric and right.type.is_numeric

        if form is PredicateForm.SINGLE_TUPLE:
            per_row = _row_categories(relation, left_column, right_column, numeric)
            prepared.append(_SingleTupleGroup(lookup, per_row))
        elif numeric:
            prepared.append(
                _NumericPairGroup(
                    lookup,
                    left.values.astype(np.float64, copy=False),
                    right.values.astype(np.float64, copy=False),
                )
            )
        else:
            left_codes, right_codes = relation.string_codes(left_column, right_column)
            prepared.append(_StringPairGroup(lookup, left_codes, right_codes))
    return prepared


def _row_categories(
    relation: Relation, left_column: str, right_column: str, numeric: bool
) -> np.ndarray:
    """Per-row order category for single-tuple predicates ``t[A] op t[B]``."""
    left = relation.column(left_column).values
    right = relation.column(right_column).values
    if numeric:
        sign = np.sign(left.astype(np.float64) - right.astype(np.float64))
        return (sign + 1).astype(np.int8)
    left_codes, right_codes = relation.string_codes(left_column, right_column)
    categories = np.full(len(left_codes), OrderCategory.LESS, dtype=np.int8)
    categories[left_codes == right_codes] = OrderCategory.EQUAL
    return categories


def _category_masks(space: PredicateSpace, indices: tuple[int, ...], numeric: bool) -> np.ndarray:
    """Per-category, per-word bitmasks for one predicate group.

    Returns an array of shape ``(3, n_words)`` (uint64) where entry
    ``[category, word]`` is the OR of the bits of the group's predicates
    satisfied in that category, restricted to that 64-bit word.
    """
    n_words = n_words_for(len(space))
    table = SATISFIED_BY_CATEGORY if numeric else SATISFIED_BY_CATEGORY_STRING
    masks = np.zeros((3, n_words), dtype=np.uint64)
    for category in OrderCategory:
        satisfied = table[category]
        for index in indices:
            if space[index].operator in satisfied:
                word, bit = divmod(index, _WORD_BITS)
                masks[category, word] |= np.uint64(1) << np.uint64(bit)
    return masks


def _build_participation(
    inverse: np.ndarray,
    row_index: np.ndarray,
    col_index: np.ndarray,
    n_evidences: int,
) -> list[TupleParticipation]:
    """Aggregate the ``vios`` structure from the per-pair evidence ids."""
    n_rows = int(max(row_index.max(), col_index.max())) + 1 if len(row_index) else 0
    evidence_ids = inverse.astype(np.int64)
    keys = np.concatenate([
        evidence_ids * n_rows + row_index.astype(np.int64),
        evidence_ids * n_rows + col_index.astype(np.int64),
    ])
    unique_keys, key_counts = np.unique(keys, return_counts=True)
    return _split_participation(unique_keys, key_counts, n_rows, n_evidences)


def _participation_from_key_chunks(
    key_chunks: list[np.ndarray],
    count_chunks: list[np.ndarray],
    n_rows: int,
    n_evidences: int,
) -> list[TupleParticipation]:
    """Merge per-tile ``evidence * n + tuple`` key histograms into ``vios``.

    Each tile contributes pre-aggregated ``(key, count)`` pairs; keys may
    repeat across tiles, so the chunks are re-aggregated with a sort +
    segmented sum before being split per evidence.
    """
    if not key_chunks:
        return [
            TupleParticipation(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
            for _ in range(n_evidences)
        ]
    keys = np.concatenate(key_chunks)
    counts = np.concatenate(count_chunks)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    counts = counts[order]
    starts = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
    unique_keys = keys[starts]
    summed = np.add.reduceat(counts, starts)
    return _split_participation(unique_keys, summed, n_rows, n_evidences)


def _split_participation(
    unique_keys: np.ndarray,
    key_counts: np.ndarray,
    n_rows: int,
    n_evidences: int,
) -> list[TupleParticipation]:
    """Split sorted ``evidence * n + tuple`` keys into per-evidence rows."""
    participation: list[TupleParticipation] = []
    owners = unique_keys // max(n_rows, 1)
    tuples = unique_keys % max(n_rows, 1)
    boundaries = np.searchsorted(owners, np.arange(n_evidences + 1))
    for evidence in range(n_evidences):
        start, stop = boundaries[evidence], boundaries[evidence + 1]
        participation.append(
            TupleParticipation(
                tuples[start:stop].copy(), key_counts[start:stop].astype(np.int64, copy=True)
            )
        )
    return participation
