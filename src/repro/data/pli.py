"""Position list indexes (PLIs).

A PLI (also called a *stripped partition*) maps every distinct value of a
column to the sorted list of row positions holding it.  PLIs are the data
structure DCFinder [37] uses to avoid comparing every pair of tuples when
building the evidence set; here they serve the same purpose for the
equality/inequality part of the predicate space and are also used for the
dataset statistics in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation


@dataclass(frozen=True)
class PositionListIndex:
    """Clusters of equal values for one column.

    Attributes
    ----------
    column:
        Name of the indexed column.
    clusters:
        Tuple of row-index arrays, one per distinct value, each sorted
        ascending.  Singleton clusters are kept (unlike *stripped* PLIs)
        because the evidence builder needs the complete partition.
    values:
        The distinct value corresponding to each cluster, in the same order.
    """

    column: str
    clusters: tuple[np.ndarray, ...]
    values: tuple[object, ...]

    @property
    def n_clusters(self) -> int:
        """Number of distinct values."""
        return len(self.clusters)

    @property
    def n_rows(self) -> int:
        """Number of rows covered by the index."""
        return int(sum(len(cluster) for cluster in self.clusters))

    def cluster_of(self, value: object) -> np.ndarray:
        """Row indices holding ``value`` (empty array if absent)."""
        for cluster_value, cluster in zip(self.values, self.clusters):
            if cluster_value == value:
                return cluster
        return np.empty(0, dtype=np.int64)

    def stripped(self) -> tuple[np.ndarray, ...]:
        """Clusters of size at least two (the classical stripped partition)."""
        return tuple(cluster for cluster in self.clusters if len(cluster) >= 2)

    def equal_pair_count(self) -> int:
        """Number of ordered row pairs (t, t'), t != t', agreeing on the column."""
        return int(sum(len(cluster) * (len(cluster) - 1) for cluster in self.clusters))

    def row_to_cluster(self) -> np.ndarray:
        """Array mapping each row index to its cluster id."""
        mapping = np.empty(self.n_rows, dtype=np.int64)
        for cluster_id, cluster in enumerate(self.clusters):
            mapping[cluster] = cluster_id
        return mapping


def build_pli(relation: Relation, column: str) -> PositionListIndex:
    """Build the PLI of ``column`` in ``relation``."""
    values = relation.column(column).values
    if values.dtype == object:
        # np.unique on object arrays requires orderable values; cast to str.
        keys = np.asarray([str(v) for v in values], dtype=object)
    else:
        keys = values
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    cluster_slices = np.split(order, boundaries)
    clusters = tuple(np.sort(chunk).astype(np.int64) for chunk in cluster_slices)
    distinct = tuple(values[chunk[0]] for chunk in cluster_slices)
    return PositionListIndex(column, clusters, distinct)


def build_all_plis(relation: Relation) -> dict[str, PositionListIndex]:
    """Build PLIs for every column of the relation."""
    return {name: build_pli(relation, name) for name in relation.column_names}


def shared_value_fraction(relation: Relation, left: str, right: str) -> float:
    """Fraction of shared distinct values between two columns.

    This is the quantity behind the paper's 30% rule (Section 4.2, item 1):
    predicates comparing two *different* attributes are only generated when
    the attributes share at least 30% of their values.  Following FASTDC, the
    fraction is computed w.r.t. the smaller active domain so that a column
    whose values are a subset of another's qualifies.
    """
    left_values = relation.column(left).value_set()
    right_values = relation.column(right).value_set()
    if not left_values or not right_values:
        return 0.0
    common = len(left_values & right_values)
    return common / min(len(left_values), len(right_values))
