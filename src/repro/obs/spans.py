"""Lightweight trace spans: decompose one request's latency into segments.

A :class:`Span` is created at the serving boundary when a request carries a
``trace`` field, and rides along (explicitly, or ambiently via a
thread-local stack) while the request crosses layers:

* ``queue``  — time parked in the :class:`~repro.serve.scheduler.AppendScheduler`
* ``fold``   — delta-tile evidence fold inside ``EvidenceStore.append``
* ``journal_fsync`` — WAL serialize+write+fsync inside ``StoreJournal``
* ``commit`` — commit-point swap + listener fan-out
* ``ack``    — everything else on the serve path (decode, dispatch, encode)

``segments`` are **disjoint** by construction, so they sum to (approximately)
the request's wall latency — the end-to-end test holds the sum to within
10%.  Timings that happen *inside* another segment (e.g. the cluster submit
inside the fold) go into the separate ``detail`` map so they never
double-count.

Propagation is a plain ``threading.local`` stack, not ``contextvars``:
the serve layer hops from the event loop onto an executor thread via
``loop.run_in_executor``, which does not propagate contextvars, and the
whole store commit then runs synchronously on that one thread — a
thread-local stack crosses exactly the boundary we need with
:func:`bound`, and costs one attribute load in :func:`current`.
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
from typing import Callable, Iterator, TypeVar

__all__ = ["Span", "bound", "current", "new_trace_id", "use"]

T = TypeVar("T")


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One traced operation: named disjoint segments plus nested details.

    ``children`` holds already-jsonable span payloads from *other*
    processes — e.g. the per-task worker spans a cluster submission
    stitches back in — so a trace of a distributed request is one tree.
    Child wall time overlaps the parent's segments by construction (the
    fold segment contains the cluster submit contains the worker spans),
    so children never enter :meth:`accounted`.
    """

    __slots__ = (
        "trace_id", "op", "store", "started", "segments", "detail", "children"
    )

    def __init__(self, trace_id: str, op: str, store: str | None = None) -> None:
        self.trace_id = trace_id
        self.op = op
        self.store = store
        self.started = time.perf_counter()
        self.segments: dict[str, float] = {}
        self.detail: dict[str, float] = {}
        self.children: list[dict[str, object]] = []

    def add_segment(self, name: str, seconds: float) -> None:
        """Accumulate a top-level (disjoint) segment."""
        if seconds < 0.0:
            seconds = 0.0
        self.segments[name] = self.segments.get(name, 0.0) + seconds

    def add_detail(self, name: str, seconds: float) -> None:
        """Accumulate a nested timing (lives *inside* some segment)."""
        if seconds < 0.0:
            seconds = 0.0
        self.detail[name] = self.detail.get(name, 0.0) + seconds

    def add_child(self, payload: dict[str, object]) -> None:
        """Attach a remote (already-jsonable) child span payload."""
        self.children.append(payload)

    def wire_context(self) -> dict[str, object]:
        """The minimal picklable context a remote child span needs."""
        return {"trace_id": self.trace_id, "op": self.op}

    @contextlib.contextmanager
    def segment(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_segment(name, time.perf_counter() - start)

    def accounted(self) -> float:
        """Total seconds already attributed to segments."""
        return sum(self.segments.values())

    def jsonable(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "trace_id": self.trace_id,
            "op": self.op,
            "segments": {k: round(v, 9) for k, v in self.segments.items()},
        }
        if self.store is not None:
            payload["store"] = self.store
        if self.detail:
            payload["detail"] = {k: round(v, 9) for k, v in self.detail.items()}
        if self.children:
            payload["children"] = list(self.children)
        return payload


_ambient = threading.local()


def current() -> Span | None:
    """The innermost active span on this thread, or ``None``."""
    stack = getattr(_ambient, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextlib.contextmanager
def use(span: Span | None) -> Iterator[None]:
    """Make ``span`` the ambient span for this thread within the block.

    ``use(None)`` is a no-op block, so call sites don't need to branch.
    """
    if span is None:
        yield
        return
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    stack.append(span)
    try:
        yield
    finally:
        stack.pop()


def bound(span: Span | None, fn: Callable[[], T]) -> Callable[[], T]:
    """Wrap ``fn`` so it runs with ``span`` ambient — survives the hop onto
    an executor thread, which ``contextvars`` would not."""
    if span is None:
        return fn

    def runner() -> T:
        with use(span):
            return fn()

    return runner
