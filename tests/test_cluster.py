"""Tests of the distributed mining fabric (transport, coordinator, builds).

The backbone assertion everywhere is the engine invariant carried across
the wire: any transport, worker count, failure schedule, or merge-tree
shape finalizes to an :class:`EvidenceSet` bit-identical to the serial
tiled build.  Socket tests spawn real ``python -m repro.cluster.worker``
subprocesses over localhost TCP — the exact multi-machine code path — and
the chaos test SIGKILLs one of them mid-shard.
"""

from __future__ import annotations

import pickle
import signal
import threading
import time

import numpy as np
import pytest

from tests.conftest import make_random_relation
from tests.test_engine import assert_evidence_identical
from repro.cluster import (
    ClusterCoordinator,
    ClusterError,
    LocalCluster,
    LocalTransport,
    SocketTransport,
    TileFoldContext,
    TransportClosed,
    TransportTimeout,
    build_evidence_set_cluster,
    merge_partials_tree,
    parse_address,
    partial_from_shm,
    partial_to_shm,
    resolve_coordinator,
    shard_tasks,
)
from repro.cluster.transport import TransportError
from repro.cluster.worker import serve
from repro.core.evidence_builder import EVIDENCE_METHODS, build_evidence_set
from repro.core.miner import ADCMiner
from repro.core.predicate_space import build_predicate_space
from repro.data.relation import running_example
from repro.engine.kernel import TileKernel
from repro.engine.scheduler import TileScheduler
from repro.incremental import EvidenceStore


def make_workload(n_rows: int = 12, tile_rows: int = 3, seed: int = 3):
    """Relation, space, kernel, tiles, and the serial reference evidence."""
    relation = make_random_relation(n_rows=n_rows, seed=seed)
    space = build_predicate_space(relation)
    kernel = TileKernel.from_relation(relation, space, include_participation=True)
    tiles = TileScheduler(relation.n_rows, tile_rows=tile_rows).tiles()
    reference = build_evidence_set(relation, space, tile_rows=tile_rows)
    return relation, space, kernel, tiles, reference


class OneSlowShardContext:
    """Delegating context whose shard starting at tile 0 dawdles.

    Module level so it pickles by reference through the transports.
    """

    def __init__(self, inner: TileFoldContext, sleep_seconds: float = 1.0):
        self.inner = inner
        self.sleep_seconds = sleep_seconds

    def run(self, task):
        if task[0] == 0:
            time.sleep(self.sleep_seconds)
        return self.inner.run(task)


class UnpicklableResultContext:
    """Context whose ``"bad"`` task computes fine but yields an
    unpicklable result, failing only at the worker's reply send."""

    def run(self, task):
        if task == "bad":
            return lambda: None
        return task


class TestTransports:
    def test_local_pair_roundtrip_counts_bytes(self):
        a, b = LocalTransport.pair()
        a.send({"hello": np.arange(4)})
        message = b.recv(timeout=1.0)
        assert list(message["hello"]) == [0, 1, 2, 3]
        assert a.bytes_sent == b.bytes_received > 0
        assert a.frames_sent == b.frames_received == 1

    def test_local_timeout_and_close(self):
        a, b = LocalTransport.pair()
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.01)
        a.close()
        with pytest.raises(TransportClosed):
            b.recv(timeout=1.0)
        with pytest.raises(TransportClosed):  # EOF is sticky
            b.recv(timeout=1.0)

    def test_local_transport_requires_picklable_messages(self):
        a, _ = LocalTransport.pair()
        with pytest.raises(Exception):
            a.send(lambda: None)

    def test_socket_roundtrip_over_socketpair(self):
        import socket as socket_module

        left, right = socket_module.socketpair()
        a, b = SocketTransport(left), SocketTransport(right)
        payload = {"words": np.arange(1000, dtype=np.uint64)}
        a.send(payload)
        a.send(("second", 2))
        received = b.recv(timeout=5.0)
        assert np.array_equal(received["words"], payload["words"])
        assert b.recv(timeout=5.0) == ("second", 2)
        a.close()
        with pytest.raises(TransportClosed):
            b.recv(timeout=5.0)

    def test_socket_send_timeout_bounds_a_frozen_peer(self):
        """A peer that stops draining its buffer cannot hang the sender."""
        import socket as socket_module

        left, right = socket_module.socketpair()
        sender = SocketTransport(left, send_timeout=0.3)
        start = time.monotonic()
        with pytest.raises(TransportClosed, match="blocked past"):
            # Far beyond any kernel buffer pair; the peer never reads, so
            # an unbounded sendall would block forever.
            sender.send(b"x" * (1 << 23))
        assert time.monotonic() - start < 5.0
        left.close()
        right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.7:9000") == ("10.0.0.7", 9000)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestShmPlanes:
    def test_partial_roundtrips_through_shared_memory(self):
        _, space, kernel, tiles, reference = make_workload()
        context = TileFoldContext(kernel, tiles)
        partial = context.run((0, len(tiles)))
        handle = partial_to_shm(partial)
        assert len(pickle.dumps(handle)) < 2000  # the point: a tiny frame
        restored = partial_from_shm(handle)
        assert_evidence_identical(restored.finalize(space), reference)

    def test_empty_partial_roundtrips(self):
        _, _, kernel, _, _ = make_workload()
        partial = TileFoldContext(kernel, ()).run((0, 0))
        restored = partial_from_shm(partial_to_shm(partial))
        assert len(restored) == 0
        assert restored.recorded_pairs == 0

    def test_shm_workers_return_identical_evidence(self):
        relation, space, _, _, reference = make_workload()
        with LocalCluster(2, transport="local", use_shm=True) as cluster:
            built = build_evidence_set_cluster(
                relation, space, cluster, tile_rows=3
            )
        assert_evidence_identical(built, reference)

    def test_shm_result_frames_are_smaller(self):
        relation, space, _, _, _ = make_workload(n_rows=14)
        sizes = {}
        for use_shm in (False, True):
            with LocalCluster(2, transport="local", use_shm=use_shm) as cluster:
                build_evidence_set_cluster(relation, space, cluster, tile_rows=3)
                sizes[use_shm] = cluster.coordinator.bytes_received
        assert sizes[True] < sizes[False]


class TestCoordinator:
    def test_submit_runs_all_tasks_in_order(self):
        _, space, kernel, tiles, reference = make_workload()
        with LocalCluster(2, transport="local") as cluster:
            tasks, weights = shard_tasks(tiles, 6)
            partials = cluster.submit(TileFoldContext(kernel, tiles), tasks, weights)
            assert len(partials) == len(tasks)
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )

    def test_submit_with_no_workers_raises(self):
        coordinator = ClusterCoordinator()
        with pytest.raises(ClusterError):
            coordinator.submit(object(), [(0, 1)])

    def test_task_exception_propagates_as_cluster_error(self):
        _, _, kernel, tiles, _ = make_workload()
        with LocalCluster(1, transport="local") as cluster:
            with pytest.raises(ClusterError, match="TypeError"):
                # None unpacks into no (start, stop) → worker-side error.
                cluster.submit(TileFoldContext(kernel, tiles), [None])
            # The worker survives its own error and still serves work.
            good = cluster.submit(
                TileFoldContext(kernel, tiles), [(0, len(tiles))]
            )
            assert good[0].recorded_pairs > 0

    def test_unpicklable_result_reports_error_and_worker_survives(self):
        """A result that fails to pickle must become an error frame, not
        kill the worker loop (which would cascade across the cluster)."""
        with LocalCluster(1, transport="local") as cluster:
            with pytest.raises(ClusterError, match="task failed"):
                cluster.submit(UnpicklableResultContext(), ["bad"])
            # The loop survived the failed send and still serves work.
            assert cluster.submit(UnpicklableResultContext(), ["fine"]) == ["fine"]
            assert cluster.coordinator.n_alive == 1

    def test_protocol_error_frame_raises_explicit_cluster_error(self):
        """An ('error', None, ...) frame — a worker's unknown-message-kind
        complaint — must surface as a ClusterError, not a TypeError from
        unpacking None."""
        coordinator = ClusterCoordinator()
        coordinator_end, worker_end = LocalTransport.pair()
        coordinator.add_worker(coordinator_end)

        def rogue(transport):
            transport.recv()  # context
            transport.send(("ready",))
            transport.send(("error", None, "unknown message kind 'bogus'"))

        threading.Thread(target=rogue, args=(worker_end,), daemon=True).start()
        try:
            with pytest.raises(ClusterError, match="protocol error"):
                coordinator.submit(object(), [0, 1])
        finally:
            coordinator.shutdown()

    def test_ping_reports_live_workers(self):
        with LocalCluster(3, transport="local") as cluster:
            assert cluster.coordinator.ping(timeout=5.0) == 3

    def test_resolve_coordinator_accepts_both_forms(self):
        coordinator = ClusterCoordinator()
        assert resolve_coordinator(coordinator) is coordinator
        with pytest.raises(TypeError):
            resolve_coordinator(object())

    def test_context_deferred_to_worker_busy_with_stale_straggler(self):
        """A new submission's context reaches a still-busy worker safely.

        The worker crunching a prior submission's re-issued duplicate will
        not drain its socket until the shard finishes, so the context is
        deferred until the stale result clears the task — the worker must
        then ack ready, serve the new submission, and never be counted as
        failed.
        """
        _, space, kernel, tiles, reference = make_workload()
        with LocalCluster(2, transport="local", task_timeout=0.2) as cluster:
            coordinator = cluster.coordinator
            slow = OneSlowShardContext(
                TileFoldContext(kernel, tiles), sleep_seconds=1.5
            )
            tasks, weights = shard_tasks(tiles, 4)
            partials = coordinator.submit(slow, tasks, weights)
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )
            # Straight into a second submission while the duplicate of the
            # slow shard is typically still in flight on one worker.
            partials = coordinator.submit(TileFoldContext(kernel, tiles), tasks, weights)
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )
            assert coordinator.failed_workers == 0
            # No submission may leave a deferred context pinned in memory.
            assert all(
                worker.context_pending is None
                for worker in coordinator._workers.values()
            )

    def test_frozen_stale_busy_worker_is_bounded_by_context_timeout(self):
        """A worker frozen mid-stale-shard cannot dodge every liveness bound.

        Busy workers are heartbeat-exempt and a stale shard has no
        straggler deadline in the new submission, so once its context is
        deferred the deferral itself must be bounded — otherwise a frozen
        worker could become the submission's only, unbounded path to
        progress.
        """
        _, space, kernel, tiles, reference = make_workload()
        coordinator = ClusterCoordinator(task_timeout=0.2, context_timeout=0.5)

        def black_hole(transport):
            # Acks contexts, swallows tasks forever: frozen mid-shard.
            while True:
                message = transport.recv()
                if message[0] == "context":
                    transport.send(("ready",))
                elif message[0] == "task":
                    time.sleep(3600.0)
                elif message[0] == "ping":
                    transport.send(("pong", message[1]))
                else:
                    return

        hole_end, hole_worker_end = LocalTransport.pair()
        coordinator.add_worker(hole_end)
        threading.Thread(target=black_hole, args=(hole_worker_end,), daemon=True).start()
        real_end, real_worker_end = LocalTransport.pair()
        coordinator.add_worker(real_end)
        threading.Thread(target=serve, args=(real_worker_end,), daemon=True).start()
        try:
            # Two slowish tasks so each worker takes one; the black hole
            # swallows its task, which is then re-issued to the real worker.
            inner = TileFoldContext(kernel, tiles)
            tasks, weights = shard_tasks(tiles, 2)
            partials = coordinator.submit(
                OneSlowShardContext(inner, sleep_seconds=0.3), tasks, weights
            )
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )
            # Second submission defers its context to the still-busy frozen
            # worker; the deferral bound must retire it mid-submission.
            tasks, weights = shard_tasks(tiles, 4)
            partials = coordinator.submit(
                OneSlowShardContext(inner, sleep_seconds=1.0), tasks, weights
            )
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )
            assert coordinator.failed_workers == 1
            assert coordinator.n_alive == 1
        finally:
            coordinator.shutdown()

    def test_ping_clears_task_on_stale_error_frame(self):
        """A straggler failing after its submission returned must not wedge
        the worker as busy-forever (skipped by heartbeat and assignment)."""
        _, space, kernel, tiles, reference = make_workload()
        coordinator = ClusterCoordinator(task_timeout=0.2)

        def sluggish_failer(transport):
            # Acks the context, then fails its task only after the real
            # worker has finished everything and submit() has returned.
            while True:
                message = transport.recv()
                if message[0] == "context":
                    transport.send(("ready",))
                elif message[0] == "task":
                    time.sleep(0.8)
                    transport.send(("error", message[1], "late failure"))
                elif message[0] == "ping":
                    transport.send(("pong", message[1]))
                else:
                    return

        coordinator_end, worker_end = LocalTransport.pair()
        coordinator.add_worker(coordinator_end)
        threading.Thread(target=sluggish_failer, args=(worker_end,), daemon=True).start()
        real_end, real_worker_end = LocalTransport.pair()
        coordinator.add_worker(real_end)
        threading.Thread(target=serve, args=(real_worker_end,), daemon=True).start()
        try:
            tasks, weights = shard_tasks(tiles, 4)
            partials = coordinator.submit(TileFoldContext(kernel, tiles), tasks, weights)
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )
            time.sleep(1.0)  # let the late error frame land in the inbox
            coordinator.ping(timeout=5.0)
            assert all(
                worker.task is None for worker in coordinator._workers.values()
            )
        finally:
            coordinator.shutdown()

    def test_frozen_worker_during_context_install_is_declared_dead(self):
        """context_timeout is the liveness bound for a peer that never acks.

        A frozen machine or blackholed link sends no EOF; without this
        bound a lone worker stuck installing the context would spin
        ``submit`` forever (not-ready workers are deaf to pings, so the
        ordinary heartbeat timeout cannot apply to them).
        """
        coordinator = ClusterCoordinator(context_timeout=0.3)
        coordinator_end, worker_end = LocalTransport.pair()
        coordinator.add_worker(coordinator_end)
        # The "worker" swallows the context and then freezes: no ready ack,
        # no EOF, nothing.
        threading.Thread(target=worker_end.recv, daemon=True).start()
        try:
            with pytest.raises(ClusterError, match="all workers died"):
                coordinator.submit(object(), [0])
            assert coordinator.failed_workers == 1
        finally:
            coordinator.shutdown()

    def test_send_failure_during_assign_requeues_the_task(self):
        """A task whose hand-out write fails must not be silently lost.

        The link breaking between the alive check and the task send leaves
        the worker dead with no in-flight task recorded, so the dead-event
        handler requeues nothing — the assign path itself must restore the
        index or the submission hangs with the task stranded.
        """
        _, space, kernel, tiles, reference = make_workload()
        with LocalCluster(2, transport="local") as cluster:
            coordinator = cluster.coordinator
            victim = coordinator._workers[0]
            original_send = victim.transport.send

            def failing_send(message):
                if message[0] == "task":
                    raise TransportError("injected: link broke before the write")
                original_send(message)

            victim.transport.send = failing_send
            tasks, weights = shard_tasks(tiles, 8)
            results: list = []
            runner = threading.Thread(
                target=lambda: results.append(
                    coordinator.submit(TileFoldContext(kernel, tiles), tasks, weights)
                ),
                daemon=True,
            )
            runner.start()
            runner.join(timeout=30.0)
            assert not runner.is_alive(), "submission hung: task lost on send failure"
            assert_evidence_identical(
                merge_partials_tree(results[0]).finalize(space), reference
            )

    def test_straggler_is_reissued_to_idle_worker(self):
        _, space, kernel, tiles, reference = make_workload()
        with LocalCluster(2, transport="local", task_timeout=0.2) as cluster:
            context = OneSlowShardContext(TileFoldContext(kernel, tiles))
            tasks, weights = shard_tasks(tiles, 4)
            partials = cluster.submit(context, tasks, weights)
            assert_evidence_identical(
                merge_partials_tree(partials).finalize(space), reference
            )
            assert cluster.coordinator.reissued_tasks >= 1


class TestSocketWorkers:
    def test_two_socket_workers_build_identical_evidence(self):
        relation, space, _, _, reference = make_workload()
        with LocalCluster(2, transport="socket") as cluster:
            built = build_evidence_set_cluster(relation, space, cluster, tile_rows=3)
            assert cluster.n_workers == 2
        assert_evidence_identical(built, reference)

    def test_sigkill_mid_shard_reissues_and_stays_bit_identical(self):
        """Chaos: a socket worker dies mid-shard; the shard is re-issued."""
        _, space, kernel, tiles, reference = make_workload(n_rows=14)
        with LocalCluster(2, transport="socket") as cluster:
            context = TileFoldContext(kernel, tiles, delay_per_task=0.25)
            tasks, weights = shard_tasks(tiles, 8)
            outcome: dict[str, object] = {}

            def submit():
                outcome["partials"] = cluster.submit(context, tasks, weights)

            runner = threading.Thread(target=submit)
            runner.start()
            time.sleep(0.4)  # both workers are asleep inside a shard now
            victim = cluster.processes[0]
            victim.send_signal(signal.SIGKILL)
            runner.join(timeout=60.0)
            assert not runner.is_alive(), "submission hung after worker death"

            assert cluster.coordinator.failed_workers == 1
            assert cluster.coordinator.n_alive == 1
            evidence = merge_partials_tree(outcome["partials"]).finalize(space)
        assert_evidence_identical(evidence, reference)

    def test_all_workers_dead_raises(self):
        _, _, kernel, tiles, _ = make_workload()
        with LocalCluster(1, transport="socket") as cluster:
            context = TileFoldContext(kernel, tiles, delay_per_task=0.5)
            tasks, weights = shard_tasks(tiles, 2)
            error: dict[str, object] = {}

            def submit():
                try:
                    cluster.submit(context, tasks, weights)
                except ClusterError as raised:
                    error["raised"] = raised

            runner = threading.Thread(target=submit)
            runner.start()
            time.sleep(0.25)
            cluster.processes[0].kill()
            runner.join(timeout=30.0)
            assert isinstance(error.get("raised"), ClusterError)


class TestClusterBuilders:
    @pytest.mark.parametrize("transport", ["local", "socket"])
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_cluster_matches_tiled_for_all_transports(self, transport, n_workers):
        relation, space, _, _, reference = make_workload()
        with LocalCluster(n_workers, transport=transport) as cluster:
            built = build_evidence_set(
                relation, space, method="cluster", cluster=cluster, tile_rows=3
            )
        assert_evidence_identical(built, reference)

    def test_merge_tree_reduction_matches_left_fold(self):
        _, space, kernel, tiles, reference = make_workload()
        context = TileFoldContext(kernel, tiles)
        tasks, _ = shard_tasks(tiles, 5)
        partials = [context.run(task) for task in tasks]
        assert_evidence_identical(
            merge_partials_tree(partials).finalize(space), reference
        )

    def test_cluster_method_requires_cluster_argument(self):
        relation, space, _, _, _ = make_workload(n_rows=4)
        with pytest.raises(ValueError, match="cluster="):
            build_evidence_set(relation, space, method="cluster")

    def test_unknown_method_error_lists_valid_methods(self):
        relation, space, _, _, _ = make_workload(n_rows=4)
        with pytest.raises(ValueError) as excinfo:
            build_evidence_set(relation, space, method="bogus")
        for method in EVIDENCE_METHODS:
            assert method in str(excinfo.value)
        assert "cluster" in EVIDENCE_METHODS

    def test_store_appends_fold_over_the_cluster(self):
        relation = running_example()
        with LocalCluster(2, transport="local") as cluster:
            store = EvidenceStore(relation.take(range(9)), cluster=cluster)
            store.append(relation.take(range(9, 13)))
            store.append(relation.take(range(13, 15)))
            streamed = store.evidence()
            rebuilt = build_evidence_set(relation, store.space)
        assert_evidence_identical(streamed, rebuilt)


class TestMinerValidation:
    def test_n_workers_validated_at_construction(self):
        with pytest.raises(ValueError, match="n_workers"):
            ADCMiner(n_workers=0)
        with pytest.raises(ValueError, match="n_workers"):
            ADCMiner(n_workers=-2)
        assert ADCMiner(n_workers=1).n_workers == 1  # valid counts untouched

    def test_cluster_kwarg_switches_method(self):
        with LocalCluster(1, transport="local") as cluster:
            miner = ADCMiner(cluster=cluster)
            assert miner.evidence_method == "cluster"
        with pytest.raises(ValueError, match="cluster"):
            ADCMiner(evidence_method="cluster")
        with pytest.raises(ValueError, match="cluster"):
            ADCMiner(cluster_enumeration=True)

    def test_local_cluster_validates_arguments(self):
        with pytest.raises(ValueError, match="positive"):
            LocalCluster(0, transport="local")
        with pytest.raises(ValueError, match="transport"):
            LocalCluster(1, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="context_timeout"):
            LocalCluster(1, transport="local", context_timeout=-1.0)

    def test_local_cluster_forwards_context_timeout(self):
        with LocalCluster(1, transport="local", context_timeout=5.0) as cluster:
            assert cluster.coordinator.context_timeout == 5.0


class TestWorkerLoop:
    def test_serve_handles_context_tasks_ping_shutdown(self):
        _, _, kernel, tiles, _ = make_workload()
        coordinator_end, worker_end = LocalTransport.pair()
        thread = threading.Thread(target=serve, args=(worker_end,), daemon=True)
        thread.start()
        coordinator_end.send(("context", TileFoldContext(kernel, tiles)))
        assert coordinator_end.recv(timeout=10.0) == ("ready",)
        coordinator_end.send(("ping", 42))
        assert coordinator_end.recv(timeout=10.0) == ("pong", 42)
        coordinator_end.send(("task", 0, (0, len(tiles))))
        kind, task_id, result = coordinator_end.recv(timeout=30.0)
        assert (kind, task_id) == ("result", 0)
        assert result.recorded_pairs > 0
        coordinator_end.send(("shutdown",))
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_task_before_context_reports_error(self):
        coordinator_end, worker_end = LocalTransport.pair()
        thread = threading.Thread(target=serve, args=(worker_end,), daemon=True)
        thread.start()
        coordinator_end.send(("task", 5, (0, 1)))
        kind, task_id, info = coordinator_end.recv(timeout=10.0)
        assert kind == "error" and task_id == 5
        # Structured error frame: bounded message + traceback, stamped
        # with the reporting worker's identity and the offending task.
        assert "context" in info["error"]
        assert info["worker"]
        assert info["task"] == 5
        coordinator_end.send(("shutdown",))
        thread.join(timeout=10.0)
