"""The cluster coordinator: worker registry, scheduling, failure recovery.

:class:`ClusterCoordinator` owns one transport per registered worker and
drives them through :meth:`submit`: the work context is broadcast once,
tasks are handed out largest-weight-first (for evidence shards the weight
is the shard's ordered-pair count, so the assignment is pair-count
balanced), and results are collected in completion order.  The machinery is
transport-agnostic — an in-process :class:`~repro.cluster.transport.LocalTransport`
pair and a TCP worker on another machine are driven identically.

Failure handling, the part that distinguishes this from a thread pool:

* **Worker death.**  Each worker has a daemon reader thread pumping frames
  into the coordinator inbox; a closed transport (SIGKILL'd process, died
  machine) surfaces as a ``dead`` event, the worker leaves the registry and
  its in-flight task is requeued for the survivors.
* **Stragglers.**  A task outstanding longer than ``task_timeout`` is
  *re-issued* to an idle worker while the original keeps running; the first
  result wins and late duplicates are discarded (shared-memory duplicates
  are still attached and unlinked, so nothing leaks).
* **Heartbeats.**  Idle workers are pinged every ``heartbeat_interval``
  seconds; one that stays silent past ``heartbeat_timeout`` is declared
  dead.  Busy workers are exempt — a kernel crunching a big shard cannot
  answer — and are covered by EOF detection and the straggler timeout.
  Workers still installing a broadcast context are equally deaf to pings,
  so they get their own, much longer ``context_timeout`` instead.

Correctness does not depend on any of this being lucky with timing: tasks
are idempotent pure functions of the context, so re-issues and duplicates
only ever produce byte-identical results, and the caller's merge is
order-insensitive (:func:`repro.cluster.build.merge_partials_tree`).
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.cluster.shm import ShmPartial, resolve_result
from repro.cluster.transport import (
    SocketTransport,
    Transport,
    TransportError,
    listen_socket,
)
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.logging import get_logger
from repro.obs.registry import get_registry


class ClusterError(RuntimeError):
    """Raised when the cluster cannot complete a submission."""


@dataclass
class _Worker:
    """Registry entry for one connected worker."""

    worker_id: int
    transport: Transport
    alive: bool = True
    ready: bool = False           # has acked the current submission's context
    task: object | None = None    # (submission, index) currently assigned
    context_pending: object | None = None  # context deferred while busy
    context_deferred_at: float = 0.0       # when the deferral started
    failure_counted: bool = False
    last_seen: float = field(default_factory=time.monotonic)
    last_ping: float = 0.0
    self_id: str | None = None    # worker's self-reported host:pid identity


@dataclass
class _TraceState:
    """Per-submission bookkeeping for distributed trace stitching.

    Lives only while a traced submission runs (ambient span present and
    the registry enabled); an untraced submission pays nothing — task
    frames keep their exact 3-tuple shape.
    """

    context: dict                                      # wire trace context
    dispatch_at: dict[int, float] = field(default_factory=dict)
    # task_key -> (worker id the accepted result came from, dispatch→result
    # gap in seconds); filled when a result lands, consumed when the
    # trailing task_span frame from the same worker arrives.
    awaiting: dict[object, tuple[int, float]] = field(default_factory=dict)
    children: dict[object, dict] = field(default_factory=dict)


class ClusterCoordinator:
    """Schedule work units over registered workers; recover from failures.

    Parameters
    ----------
    task_timeout:
        Seconds before an outstanding task is re-issued to an idle worker
        (``None`` disables straggler re-issue; worker *death* always
        requeues).
    heartbeat_interval:
        Seconds between pings to idle workers during a submission.
    heartbeat_timeout:
        Silence threshold after which a pinged idle worker is declared dead.
    context_timeout:
        Silence threshold for a worker that has not yet acked a broadcast
        context.  Such workers cannot answer pings (a single-threaded loop
        unpickling a large context is deaf), so the ordinary heartbeat
        timeout would shoot every worker on a big transfer; this separate,
        much longer bound still catches a frozen machine or blackholed
        link, where no EOF ever arrives (``None`` disables it).  It also
        bounds each frame send on sockets accepted via
        :meth:`accept_workers`, so a peer that stops draining its receive
        buffer cannot hang the broadcast loop itself.
    """

    def __init__(
        self,
        task_timeout: float | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        context_timeout: float | None = 60.0,
    ) -> None:
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if context_timeout is not None and context_timeout <= 0:
            raise ValueError("context_timeout must be positive (or None)")
        self.task_timeout = task_timeout
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.context_timeout = context_timeout
        self.reissued_tasks = 0
        self.failed_workers = 0
        self._workers: dict[int, _Worker] = {}
        self._inbox: "queue.Queue[tuple[int, object]]" = queue.Queue()
        self._next_worker_id = itertools.count()
        self._submission_counter = itertools.count()
        # Submissions are serialized: the scheduling loop assumes it is the
        # only consumer of the inbox and the only writer of worker.task, so
        # concurrent submit() calls — e.g. the serving layer folding delta
        # tiles for two tenants from different executor threads — queue
        # here instead of interleaving.
        self._submit_lock = threading.Lock()
        # Last transport byte totals pushed to the cumulative byte counters
        # (deltas only: dead-worker removal can shrink the live sums).
        self._bytes_metrics_lock = threading.Lock()
        self._bytes_sent_reported = 0
        self._bytes_received_reported = 0
        # Latest metrics_pull snapshot per registry worker id, with the
        # monotonic receive stamp that turns into the staleness age.
        self._metrics_lock = threading.Lock()
        self._worker_metrics: dict[int, dict] = {}
        self._log = get_logger()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def n_alive(self) -> int:
        """Workers currently believed alive."""
        return sum(1 for worker in self._workers.values() if worker.alive)

    @property
    def bytes_received(self) -> int:
        """Payload bytes received from all workers (results, pongs, acks)."""
        return sum(w.transport.bytes_received for w in self._workers.values())

    @property
    def bytes_sent(self) -> int:
        """Payload bytes sent to all workers (contexts, tasks, pings)."""
        return sum(w.transport.bytes_sent for w in self._workers.values())

    def add_worker(self, transport: Transport) -> int:
        """Register a connected worker; returns its registry id."""
        worker_id = next(self._next_worker_id)
        worker = _Worker(worker_id, transport)
        self._workers[worker_id] = worker
        thread = threading.Thread(
            target=self._reader, args=(worker,), daemon=True,
            name=f"cluster-reader-{worker_id}",
        )
        self._threads.append(thread)
        thread.start()
        return worker_id

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Open the coordinator's accept socket; returns ``(host, port)``."""
        if self._listener is not None:
            raise ClusterError("coordinator is already listening")
        self._listener = listen_socket(host, port)
        bound_host, bound_port = self._listener.getsockname()[:2]
        return bound_host, bound_port

    def accept_workers(self, count: int, timeout: float = 30.0) -> list[int]:
        """Accept ``count`` socket workers on the listening address."""
        if self._listener is None:
            raise ClusterError("call listen() before accept_workers()")
        deadline = time.monotonic() + timeout
        accepted: list[int] = []
        for _ in range(count):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    f"only {len(accepted)} of {count} workers connected "
                    f"within {timeout} seconds"
                )
            self._listener.settimeout(remaining)
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                raise ClusterError(
                    f"only {len(accepted)} of {count} workers connected "
                    f"within {timeout} seconds"
                ) from None
            # context_timeout doubles as the send bound: a frozen peer stops
            # draining its receive buffer, and an unbounded sendall on a big
            # context frame would hang the broadcast loop before the
            # heartbeat machinery ever gets to run.
            accepted.append(
                self.add_worker(
                    SocketTransport(sock, send_timeout=self.context_timeout)
                )
            )
        return accepted

    @property
    def worker_ids(self) -> list[int]:
        """Registry ids of the workers currently alive."""
        return [w.worker_id for w in self._workers.values() if w.alive]

    def disconnect_worker(self, worker_id: int) -> None:
        """Sever one worker's link (chaos/testing hook).

        From the scheduler's point of view this is indistinguishable from
        the worker machine dying: the reader thread observes EOF, the
        worker is declared dead and its in-flight task is re-issued.
        """
        self._workers[worker_id].transport.close()

    def _worker_label(self, worker_id: int) -> str:
        """Metric label for a worker id — ``_unknown`` past deregistration."""
        return str(worker_id) if worker_id in self._workers else "_unknown"

    def worker_stats(self) -> list[dict]:
        """Per-worker health for the serve layer's ``stats`` op."""
        now = time.monotonic()
        return [
            {
                "worker": worker.worker_id,
                "self_id": worker.self_id,
                "alive": worker.alive,
                "last_seen_age_seconds": round(now - worker.last_seen, 3),
                "inflight_task": (
                    None if worker.task is None else list(worker.task)
                ),
                "bytes_sent": worker.transport.bytes_sent,
                "bytes_received": worker.transport.bytes_received,
            }
            for worker in self._workers.values()
        ]

    def _store_worker_metrics(self, worker_id: int, payload: object) -> None:
        """Cache one worker's metrics snapshot (from a ``metrics`` frame)."""
        if not isinstance(payload, Mapping):
            return
        worker = self._workers.get(worker_id)
        if worker is not None and payload.get("worker"):
            worker.self_id = str(payload["worker"])
        with self._metrics_lock:
            self._worker_metrics[worker_id] = {
                "payload": dict(payload),
                "received_at": time.monotonic(),
            }

    def pull_metrics(self, timeout: float = 1.0) -> list[dict]:
        """Best-effort snapshot of every live worker's metrics registry.

        Sends a ``metrics_pull`` frame to each alive, idle worker and
        collects the replies for up to ``timeout`` seconds — but never
        blocks behind a running submission: if the scheduling loop holds
        the submit lock (a fold in flight owns the inbox), the previously
        cached snapshots are returned as-is, each stamped with its
        ``age_seconds`` so the scrape shows exactly how stale it is.
        Dead workers are skipped and their stale snapshots dropped (the
        gap is logged, never raised).  With the obs registry disabled this
        is a no-op returning ``[]`` — no frames are sent at all.
        """
        if not get_registry().enabled:
            return []
        if self._submit_lock.acquire(blocking=False):
            try:
                self._pull_locked(timeout)
            finally:
                self._submit_lock.release()
        with self._metrics_lock:
            for worker_id in list(self._worker_metrics):
                worker = self._workers.get(worker_id)
                if worker is None or not worker.alive:
                    del self._worker_metrics[worker_id]
                    self._log.warning(
                        "worker_metrics_dropped", worker=worker_id,
                        reason="worker dead",
                    )
            now = time.monotonic()
            snapshots = []
            for worker_id, entry in sorted(self._worker_metrics.items()):
                payload = dict(entry["payload"])
                payload["age_seconds"] = round(now - entry["received_at"], 3)
                payload["registry_worker_id"] = worker_id
                snapshots.append(payload)
        return snapshots

    def _pull_locked(self, timeout: float) -> None:
        """Round-trip metrics_pull frames while owning the inbox."""
        nonce = time.monotonic()
        waiting: set[int] = set()
        for worker in self._workers.values():
            if worker.alive and worker.task is None:
                if self._send(worker, ("metrics_pull", nonce)):
                    waiting.add(worker.worker_id)
        deadline = time.monotonic() + timeout
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                worker_id, message = self._inbox.get(timeout=remaining)
            except queue.Empty:
                break
            worker = self._workers[worker_id]
            worker.last_seen = time.monotonic()
            kind = message[0]
            if kind == "metrics":
                self._store_worker_metrics(worker_id, message[2])
                waiting.discard(worker_id)
            elif kind == "dead":
                self._mark_dead(worker)
                waiting.discard(worker_id)
            elif kind == "result":
                # A stale straggler result: resolve so shm never leaks.
                resolve_result(message[2])
                if worker.task == message[1]:
                    worker.task = None
            elif kind == "error":
                if message[1] is not None and worker.task == message[1]:
                    worker.task = None

    def _reader(self, worker: _Worker) -> None:
        """Per-worker pump: frames (and the death notice) into the inbox.

        The thread flips ``alive`` itself so the scheduler stops assigning
        to a corpse immediately; the bookkeeping (failure count, requeue of
        the in-flight task) happens when the ``dead`` event is consumed.
        """
        while True:
            try:
                message = worker.transport.recv()
            except TransportError as error:
                worker.alive = False
                self._inbox.put((worker.worker_id, ("dead", str(error))))
                return
            self._inbox.put((worker.worker_id, message))

    def _mark_dead(self, worker: _Worker) -> None:
        worker.alive = False
        if not worker.failure_counted:
            worker.failure_counted = True
            self.failed_workers += 1
        try:
            worker.transport.close()
        except Exception:
            pass

    def _send(self, worker: _Worker, message: object) -> bool:
        """Send, demoting the worker to dead on a broken link."""
        try:
            worker.transport.send(message)
            return True
        except TransportError as error:
            if worker.alive:
                worker.alive = False
                self._inbox.put((worker.worker_id, ("dead", f"send failed: {error}")))
            return False

    def ping(self, timeout: float = 5.0) -> int:
        """Round-trip a heartbeat to every idle worker; returns live count.

        Workers that fail to answer within ``timeout`` are declared dead.
        Busy workers (a task still in flight from an earlier submission's
        re-issue) are skipped; stale results arriving meanwhile are
        resolved so shared-memory segments never leak.
        """
        nonce = time.monotonic()
        waiting: set[int] = set()
        for worker in self._workers.values():
            if worker.alive and worker.task is None:
                if self._send(worker, ("ping", nonce)):
                    waiting.add(worker.worker_id)
        deadline = time.monotonic() + timeout
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                worker_id, message = self._inbox.get(timeout=remaining)
            except queue.Empty:
                break
            worker = self._workers[worker_id]
            worker.last_seen = time.monotonic()
            if message[0] == "pong" and message[1] == nonce:
                waiting.discard(worker_id)
            elif message[0] == "dead":
                self._mark_dead(worker)
                waiting.discard(worker_id)
            elif message[0] == "result":
                resolve_result(message[2])
                if worker.task == message[1]:
                    worker.task = None
            elif message[0] == "metrics":
                self._store_worker_metrics(worker_id, message[2])
            elif message[0] == "error":
                # A stale straggler failing after its submission already
                # returned; swallowing the frame without clearing the task
                # would wedge the worker as busy-forever.  task_key=None is
                # a protocol complaint, not a task error — don't let
                # None == None take the clear-task path for it.
                if message[1] is not None and worker.task == message[1]:
                    worker.task = None
        for worker_id in waiting:
            self._mark_dead(self._workers[worker_id])
        return self.n_alive

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def submit(
        self,
        context: object,
        tasks: list[object],
        weights: list[int] | None = None,
        journal: object | None = None,
    ) -> list[object]:
        """Run ``context.run(task)`` for every task; results in task order.

        ``weights`` (e.g. shard pair counts) order the hand-out
        largest-first, so the heaviest work units start earliest and the
        tail of the schedule stays short.  Raises :class:`ClusterError`
        when every worker dies before the work completes, or when a task
        fails with a worker-side exception (an ``error`` frame — those are
        not retried: the task would fail identically everywhere).

        ``journal`` (a
        :class:`~repro.durability.journal.SubmissionJournal`) persists the
        submission's progress: each landed result is recorded before it
        can be observed, so a coordinator killed mid-fold resumes — same
        tasks, same journal — running only the indices that never landed.

        Thread-safe: concurrent calls from different threads run one at a
        time (whole submissions, in lock-acquisition order).
        """
        if not tasks:
            if journal is not None:
                journal.begin(0)
                journal.finish()
            return []
        if weights is not None and len(weights) != len(tasks):
            raise ValueError("weights must align with tasks")
        submit_start = time.perf_counter()
        try:
            with self._submit_lock:
                return self._submit_locked(context, tasks, weights, journal)
        finally:
            elapsed = time.perf_counter() - submit_start
            obs_metrics.CLUSTER_SUBMIT_SECONDS.observe(elapsed)
            with self._bytes_metrics_lock:
                sent, received = self.bytes_sent, self.bytes_received
                obs_metrics.CLUSTER_BYTES_SENT.inc(
                    max(0, sent - self._bytes_sent_reported)
                )
                obs_metrics.CLUSTER_BYTES_RECEIVED.inc(
                    max(0, received - self._bytes_received_reported)
                )
                self._bytes_sent_reported = sent
                self._bytes_received_reported = received
            span = obs_spans.current()
            if span is not None:
                # Nested inside the caller's fold segment — detail, not a
                # top-level segment, so span sums stay disjoint.
                span.add_detail("cluster_submit", elapsed)

    def _submit_locked(
        self,
        context: object,
        tasks: list[object],
        weights: list[int] | None,
        journal: object | None = None,
    ) -> list[object]:
        completed: dict[int, object] = {}
        if journal is not None:
            completed = {
                int(index): payload
                for index, payload in journal.begin(len(tasks)).items()
            }
            if len(completed) >= len(tasks):
                # A previous run landed everything before dying; nothing to
                # schedule (works even with zero workers registered).
                journal.finish()
                return [completed[index] for index in range(len(tasks))]
        if self.n_alive == 0:
            raise ClusterError("no alive workers registered")
        submission = next(self._submission_counter)

        # Distributed tracing engages only when the caller's span is
        # ambient *and* the obs gate is open: untraced (or REPRO_OBS=0)
        # submissions ship byte-identical 3-tuple task frames and the
        # workers never serialize a span.
        span = obs_spans.current()
        trace = (
            _TraceState(context=span.wire_context())
            if span is not None and get_registry().enabled
            else None
        )

        # Broadcast the context; workers ack with ("ready",).  The loop is
        # serial, so with several simultaneously frozen peers the worst
        # case is one send_timeout *each* before their sends give up —
        # bounded, unlike the hang an unbounded send would be.
        for worker in self._workers.values():
            if worker.alive:
                worker.ready = False
                worker.context_pending = None  # drop any stale deferral
                if worker.task is not None:
                    # Busy with a prior submission's straggler duplicate:
                    # its single-threaded loop will not drain the socket
                    # until the shard finishes, so a bounded send could
                    # falsely kill a healthy worker (and an unbounded one
                    # could hang on a frozen peer).  Deliver the context
                    # when the stale result clears the task instead.
                    worker.context_pending = context
                    worker.context_deferred_at = time.monotonic()
                elif self._send(worker, ("context", context)):
                    worker.last_seen = time.monotonic()

        order = sorted(
            (index for index in range(len(tasks)) if index not in completed),
            key=(lambda i: -weights[i]) if weights is not None else (lambda i: i),
        )
        pending: deque[int] = deque(order)
        queued = set(order)          # indices currently waiting in `pending`
        done: dict[int, object] = dict(completed)
        deadlines: dict[int, float] = {}  # straggler deadline per live index

        try:
            while len(done) < len(tasks):
                self._assign(
                    submission, tasks, pending, queued, done, deadlines, trace
                )
                try:
                    worker_id, message = self._inbox.get(timeout=0.05)
                except queue.Empty:
                    # Only with the inbox drained can "no workers" mean
                    # failure: a worker that died right after sending the
                    # final result enqueues that result *before* its death
                    # notice.
                    if self.n_alive == 0:
                        raise ClusterError(
                            f"all workers died with {len(tasks) - len(done)} "
                            "tasks unfinished"
                        ) from None
                else:
                    self._handle(
                        submission, worker_id, message, pending, queued, done,
                        deadlines, journal, trace,
                    )
                    while True:  # drain the backlog without blocking
                        try:
                            worker_id, message = self._inbox.get_nowait()
                        except queue.Empty:
                            break
                        self._handle(
                            submission, worker_id, message, pending, queued,
                            done, deadlines, journal, trace,
                        )
                self._check_stragglers(pending, queued, done, deadlines)
                self._heartbeat()
            if trace is not None:
                self._collect_trailing_spans(
                    submission, trace, pending, queued, done, deadlines, journal
                )
        finally:
            # An undelivered deferred context is dead weight once this
            # submission is over (it can pin the largest object in the
            # system); the next submission re-broadcasts its own.
            for worker in self._workers.values():
                worker.context_pending = None

        if trace is not None:
            span = obs_spans.current()
            if span is not None:
                for task_key in sorted(trace.children):
                    span.add_child(trace.children[task_key])

        if journal is not None:
            journal.finish()
        return [done[index] for index in range(len(tasks))]

    def _collect_trailing_spans(
        self, submission, trace, pending, queued, done, deadlines, journal
    ) -> None:
        """Wait briefly for task_span frames still in flight.

        A worker sends its span *after* the result frame it describes (the
        span's serialize/send segments time that frame), so the last
        result of a submission can land with its span still on the wire.
        The stream is ordered per worker, so one short drain collects the
        stragglers; spans from dead workers are abandoned — traces are
        best-effort, results are not.
        """
        deadline = time.monotonic() + 2.0
        while True:
            missing = {
                key
                for key, (worker_id, _) in trace.awaiting.items()
                if key not in trace.children
                and worker_id in self._workers
                and self._workers[worker_id].alive
            }
            if not missing:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._log.warning(
                    "trace_spans_missing", submission=submission,
                    missing=len(missing),
                )
                return
            try:
                worker_id, message = self._inbox.get(timeout=remaining)
            except queue.Empty:
                continue
            self._handle(
                submission, worker_id, message, pending, queued, done,
                deadlines, journal, trace,
            )

    def _assign(
        self, submission, tasks, pending, queued, done, deadlines, trace=None
    ) -> None:
        for worker in self._workers.values():
            while pending and worker.alive and worker.ready and worker.task is None:
                index = pending.popleft()
                queued.discard(index)
                if index in done:
                    continue  # a re-issued task whose original already landed
                frame = (
                    ("task", (submission, index), tasks[index])
                    if trace is None
                    else ("task", (submission, index), tasks[index], trace.context)
                )
                if trace is not None:
                    # Stamped *before* the send so the task frame's own
                    # serialize+transit lands inside the dispatch→result
                    # gap.  Re-issues overwrite the stamp (the gap is then
                    # measured from the latest dispatch) and a failed send
                    # leaves a stale stamp the re-issue also overwrites.
                    trace.dispatch_at[index] = time.monotonic()
                if self._send(worker, frame):
                    worker.task = (submission, index)
                    obs_metrics.CLUSTER_DISPATCHED.inc_labels(worker.worker_id)
                    if self.task_timeout is not None:
                        deadlines[index] = time.monotonic() + self.task_timeout
                else:
                    # The link broke between the alive check and the write;
                    # the dead-event bookkeeping sees ``task is None`` and
                    # requeues nothing, so restore the index ourselves or
                    # the task is lost and the submission hangs.
                    pending.appendleft(index)
                    queued.add(index)
            if not pending:
                return

    def _handle(
        self, submission, worker_id, message, pending, queued, done, deadlines,
        journal=None, trace=None,
    ) -> None:
        worker = self._workers[worker_id]
        worker.last_seen = time.monotonic()
        kind = message[0]
        if kind == "ready":
            worker.ready = True
        elif kind == "pong":
            pass
        elif kind == "result":
            _, task_key, payload = message
            via_shm = isinstance(payload, ShmPartial)
            # Resolve (and for shm: attach + unlink) before any dedup — a
            # discarded duplicate must still release its segment.
            payload = resolve_result(payload)
            obs_metrics.CLUSTER_RESULTS.inc_labels(
                self._worker_label(worker_id), "shm" if via_shm else "pipe"
            )
            if worker.task == task_key:
                worker.task = None
                self._deliver_pending_context(worker)
            their_submission, index = task_key
            if their_submission == submission and index not in done:
                if journal is not None:
                    # Durable before observable: a crash after this line
                    # resumes with the result; a crash before it re-runs
                    # the task — either way, exactly one result survives.
                    journal.record_result(index, payload)
                done[index] = payload
                deadlines.pop(index, None)
                if trace is not None:
                    # Dispatch→result as the coordinator saw it; the
                    # worker's wall time arrives with the trailing span,
                    # and the difference is queue + network time.
                    dispatched = trace.dispatch_at.get(index)
                    if dispatched is not None:
                        gap = time.monotonic() - dispatched
                        trace.awaiting[task_key] = (worker_id, gap)
        elif kind == "task_span":
            _, task_key, child = message
            if (
                trace is not None
                and isinstance(child, dict)
                and task_key in trace.awaiting
                and task_key not in trace.children
            ):
                src_worker, gap = trace.awaiting[task_key]
                if src_worker == worker_id:
                    # Stitch the coordinator-side view into the worker's
                    # payload: the gap always contains the wall time, so
                    # queue_network is the cross-wire remainder.
                    wall = float(child.get("wall_seconds", 0.0))
                    child["dispatch_gap_seconds"] = round(gap, 9)
                    child["queue_network_seconds"] = round(max(0.0, gap - wall), 9)
                    child["coordinator_worker_id"] = worker_id
                    trace.children[task_key] = child
            if isinstance(child, dict) and child.get("worker"):
                worker.self_id = str(child["worker"])
        elif kind == "metrics":
            self._store_worker_metrics(worker_id, message[2])
        elif kind == "error":
            _, task_key, info = message
            if isinstance(info, Mapping):
                summary = str(info.get("error", ""))
                text = str(info.get("traceback") or summary)
                if info.get("worker"):
                    worker.self_id = str(info["worker"])
            else:  # a pre-structured (plain string) error frame
                summary = str(info).strip().splitlines()[-1] if info else ""
                text = str(info)
            if task_key is None:
                # A protocol-level complaint (unknown frame kind), not a
                # task failure: nothing to unpack or requeue.
                raise ClusterError(
                    f"protocol error from worker {worker_id}: {summary or text}"
                )
            if worker.task == task_key:
                worker.task = None
                self._deliver_pending_context(worker)
            their_submission, index = task_key
            # Stale frames — a previous submission's abandoned straggler, or
            # a current task whose re-issued twin already landed — must not
            # abort healthy work; only a live failure of *this* submission
            # is fatal (it would fail identically on every worker).
            stale = their_submission != submission or index in done
            self._log.log(
                "warning" if stale else "error",
                "worker_task_failed",
                worker=worker_id, worker_self=worker.self_id,
                task=list(task_key), error=summary, stale=stale,
            )
            if not stale:
                raise ClusterError(f"task failed on worker {worker_id}:\n{text}")
        elif kind == "dead":
            in_flight = worker.task
            worker.task = None
            worker.context_pending = None
            self._mark_dead(worker)
            if in_flight is not None:
                their_submission, index = in_flight
                if their_submission == submission and index not in done and index not in queued:
                    pending.appendleft(index)
                    queued.add(index)
                    obs_metrics.CLUSTER_REQUEUED.inc()

    def _deliver_pending_context(self, worker: _Worker) -> None:
        """Send the context deferred while the worker was busy, if any."""
        if worker.context_pending is not None and worker.alive:
            context = worker.context_pending
            worker.context_pending = None
            if self._send(worker, ("context", context)):
                worker.last_seen = time.monotonic()

    def _check_stragglers(self, pending, queued, done, deadlines) -> None:
        """Requeue overdue in-flight tasks for a second, parallel issue."""
        if self.task_timeout is None:
            return
        now = time.monotonic()
        for worker in self._workers.values():
            if not worker.alive or worker.task is None:
                continue
            _, index = worker.task
            deadline = deadlines.get(index)
            if (
                deadline is not None
                and now > deadline
                and index not in done
                and index not in queued
            ):
                pending.append(index)
                queued.add(index)
                self.reissued_tasks += 1
                obs_metrics.CLUSTER_REISSUED.inc()
                deadlines[index] = now + self.task_timeout

    def _heartbeat(self) -> None:
        now = time.monotonic()
        for worker in self._workers.values():
            if not worker.alive:
                continue
            if worker.task is not None:
                # Busy workers are exempt from health checks — except one
                # still holding a *deferred* context: its shard belongs to
                # a finished submission, so if it stays silent past
                # context_timeout it may be frozen, and as the last worker
                # standing it would otherwise hang the submission with no
                # bound at all.  (A healthy worker legitimately crunching a
                # stale shard that long loses only spare capacity.)
                if (
                    worker.context_pending is not None
                    and self.context_timeout is not None
                    and now - worker.context_deferred_at > self.context_timeout
                ):
                    worker.context_pending = None
                    self._mark_dead(worker)
                continue
            if not worker.ready:
                # Still receiving/unpickling the broadcast context: deaf to
                # pings, so the ordinary heartbeat timeout would kill it
                # mid-transfer.  Only the (long) context_timeout of silence
                # since the context send declares it dead — that is the one
                # liveness bound for a frozen peer that never sends EOF.
                if (
                    self.context_timeout is not None
                    and now - worker.last_seen > self.context_timeout
                ):
                    self._mark_dead(worker)
                continue
            if (
                worker.last_ping > worker.last_seen
                and now - worker.last_ping > self.heartbeat_timeout
            ):
                # We pinged after the last sign of life and heard nothing.
                self._mark_dead(worker)
            elif now - worker.last_ping > self.heartbeat_interval:
                worker.last_ping = now
                self._send(worker, ("ping", now))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Ask every worker to exit and close all links."""
        # Release any late straggler results parked in the inbox first —
        # an unresolved shm handle would leak its segment past our exit.
        while True:
            try:
                _, message = self._inbox.get_nowait()
            except queue.Empty:
                break
            if message[0] == "result":
                try:
                    resolve_result(message[2])
                except Exception:
                    pass
        for worker in self._workers.values():
            if worker.alive:
                self._send(worker, ("shutdown",))
            try:
                worker.transport.close()
            except Exception:
                pass
            worker.alive = False
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
