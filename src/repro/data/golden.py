"""Golden denial constraints of the synthetic datasets.

The paper evaluates discovery quality against "golden" DCs curated by domain
experts for each dataset (Table 4, Figure 14).  The synthetic generators of
:mod:`repro.data.datasets` are built so that the constraints defined here
hold *exactly* on the clean data; noise injection then turns them into
approximate constraints, exactly as in Section 8.4.

All constraints are expressed through the predicate constructors of
:mod:`repro.core.predicates`; a test asserts that every golden predicate is
a member of the predicate space generated for its dataset (including the
cross-attribute ones gated by the 30% shared-values rule).
"""

from __future__ import annotations

from repro.core.dc import DenialConstraint
from repro.core.operators import Operator
from repro.core.predicates import (
    cross_column_predicate,
    same_column_predicate,
    single_tuple_predicate,
)

EQ = Operator.EQ
NE = Operator.NE
LT = Operator.LT
LE = Operator.LE
GT = Operator.GT
GE = Operator.GE


def _fd(*determinants: str, determined: str) -> DenialConstraint:
    """Functional-dependency-shaped DC: determinants agree but the target differs."""
    predicates = [same_column_predicate(column, EQ) for column in determinants]
    predicates.append(same_column_predicate(determined, NE))
    return DenialConstraint(predicates)


def golden_tax() -> list[DenialConstraint]:
    """Nine golden DCs of the synthetic Tax dataset."""
    return [
        _fd("Zip", determined="State"),
        _fd("Zip", determined="City"),
        _fd("City", determined="State"),
        _fd("State", determined="Rate"),
        _fd("State", determined="SingleExemp"),
        _fd("State", determined="ChildExemp"),
        DenialConstraint([
            same_column_predicate("State", EQ),
            same_column_predicate("Salary", GT),
            same_column_predicate("Tax", LT),
        ]),
        DenialConstraint([single_tuple_predicate("SingleExemp", LT, "ChildExemp")]),
        _fd("State", "Salary", determined="Tax"),
    ]


def golden_stock() -> list[DenialConstraint]:
    """Six golden DCs of the synthetic SP Stock dataset."""
    return [
        DenialConstraint([single_tuple_predicate("High", LT, "Low")]),
        DenialConstraint([single_tuple_predicate("Open", GT, "High")]),
        DenialConstraint([single_tuple_predicate("Open", LT, "Low")]),
        DenialConstraint([single_tuple_predicate("Close", GT, "High")]),
        DenialConstraint([single_tuple_predicate("Close", LT, "Low")]),
        _fd("Ticker", "Date", determined="Close"),
    ]


def golden_hospital() -> list[DenialConstraint]:
    """Seven golden DCs of the synthetic Hospital dataset."""
    return [
        _fd("Provider", determined="Name"),
        _fd("Provider", determined="Zip"),
        _fd("Provider", determined="Phone"),
        _fd("Zip", determined="City"),
        _fd("Zip", determined="State"),
        _fd("MeasureCode", determined="MeasureName"),
        _fd("State", "MeasureCode", determined="StateAvg"),
    ]


def golden_food() -> list[DenialConstraint]:
    """Ten golden DCs of the synthetic Food Inspection dataset."""
    return [
        _fd("Zip", determined="State"),
        _fd("Zip", determined="City"),
        _fd("City", determined="State"),
        _fd("License", determined="Name"),
        _fd("License", determined="Address"),
        _fd("License", determined="FacilityType"),
        _fd("License", determined="Risk"),
        _fd("Address", determined="Zip"),
        _fd("Address", determined="City"),
        _fd("Name", "Address", determined="License"),
    ]


def golden_airport() -> list[DenialConstraint]:
    """Nine golden DCs of the synthetic Airport dataset."""
    return [
        _fd("Code", determined="Name"),
        _fd("Code", determined="City"),
        _fd("Code", determined="State"),
        _fd("Code", determined="Latitude"),
        _fd("Code", determined="Longitude"),
        _fd("Code", determined="Elevation"),
        _fd("City", determined="State"),
        _fd("State", determined="Country"),
        _fd("State", determined="TimeZone"),
    ]


def golden_adult() -> list[DenialConstraint]:
    """Three golden DCs of the synthetic Adult dataset."""
    return [
        _fd("Education", determined="EducationNum"),
        _fd("EducationNum", determined="Education"),
        DenialConstraint([
            same_column_predicate("Age", LT),
            same_column_predicate("BirthYear", LT),
        ]),
    ]


def golden_flight() -> list[DenialConstraint]:
    """Thirteen golden DCs of the synthetic Flight dataset."""
    return [
        _fd("Flight", determined="Airline"),
        _fd("Flight", determined="Origin"),
        _fd("Flight", determined="Dest"),
        _fd("Flight", determined="Distance"),
        _fd("Flight", determined="DepTime"),
        _fd("Flight", determined="ArrTime"),
        _fd("Flight", determined="Scheduled"),
        _fd("Origin", determined="OriginState"),
        _fd("Dest", determined="DestState"),
        _fd("Origin", "Dest", determined="Distance"),
        DenialConstraint([single_tuple_predicate("DepTime", GT, "ArrTime")]),
        DenialConstraint([single_tuple_predicate("Elapsed", GT, "Scheduled")]),
        DenialConstraint([single_tuple_predicate("Origin", EQ, "Dest")]),
    ]


def golden_voter() -> list[DenialConstraint]:
    """Twelve golden DCs of the synthetic NCVoter dataset."""
    return [
        _fd("VoterId", determined="FirstName"),
        _fd("VoterId", determined="LastName"),
        _fd("VoterId", determined="Gender"),
        _fd("VoterId", determined="BirthYear"),
        _fd("VoterId", determined="Age"),
        _fd("VoterId", determined="Zip"),
        _fd("VoterId", determined="Status"),
        _fd("Zip", determined="County"),
        _fd("Zip", determined="State"),
        _fd("County", determined="State"),
        _fd("VoterId", determined="RegYear"),
        DenialConstraint([
            same_column_predicate("Age", LT),
            same_column_predicate("BirthYear", LT),
        ]),
    ]


GOLDEN_DCS: dict[str, list[DenialConstraint]] = {
    "tax": golden_tax(),
    "stock": golden_stock(),
    "hospital": golden_hospital(),
    "food": golden_food(),
    "airport": golden_airport(),
    "adult": golden_adult(),
    "flight": golden_flight(),
    "voter": golden_voter(),
}


def golden_dcs(dataset: str) -> list[DenialConstraint]:
    """Golden DCs of a dataset by name."""
    try:
        return list(GOLDEN_DCS[dataset])
    except KeyError:
        raise KeyError(
            f"unknown dataset {dataset!r}; expected one of {sorted(GOLDEN_DCS)}"
        ) from None
