"""Enumeration core — word-native ADCEnum vs the pre-refactor enumerator.

Not a paper figure: this benchmark tracks the word-native enumeration core
on a Figure-6-style workload (the tax relation, full predicate space, f1,
``max_dc_size=3``).  It sweeps epsilon in {0, 0.01, 0.05} crossed with the
three evidence-selection strategies, reporting wall-clock seconds, search
nodes and nodes/second for the word-native :class:`repro.core.adc_enum.ADCEnum`.
At every epsilon (selection "max", plus all selections at the reference
epsilon 0.01) it also runs the frozen pre-refactor enumerator
(:class:`repro.core.legacy_enum.LegacyADCEnum`), asserts the two emit
bit-identical DiscoveredADC lists, and reports the speedup.  The headline
number is the speedup at epsilon = 0.01, which must stay above
``EXPECTED_SPEEDUP``.

Results are also written as a JSON artifact (``--json PATH``) so CI can
archive the perf trajectory next to ``BENCH_evidence_parallel.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_enum_core.py \
        [--json BENCH_enum_core.json] [--rows 400] [--require-speedup]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.adc_enum import ADCEnum
from repro.core.approximation import F1
from repro.core.evidence_builder import build_evidence_set
from repro.core.legacy_enum import LegacyADCEnum
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset

#: Rows of the benchmark relation (Figure-6-style tax workload).
BENCH_ROWS = 400

#: Epsilon sweep; EPSILON_REFERENCE carries the speedup acceptance bar.
EPSILONS = (0.0, 0.01, 0.05)
EPSILON_REFERENCE = 0.01

#: Evidence-selection strategies of Figure 10.
SELECTIONS = ("max", "min", "random")

#: Per-DC predicate cap, matching the experiment harness configuration.
MAX_DC_SIZE = 3

#: Required speedup of the word-native core over the pre-refactor one at
#: the reference epsilon.
EXPECTED_SPEEDUP = 3.0

#: Timing repetitions (best-of).
REPEATS = 3


def _discovered(adcs):
    return [(adc.hitting_set_mask, adc.violation_score) for adc in adcs]


def _best_of(factory, repeats: int = REPEATS):
    """Best wall time over ``repeats`` runs; returns (seconds, enumerator, adcs)."""
    best = None
    for _ in range(repeats):
        enumerator = factory()
        started = time.perf_counter()
        adcs = enumerator.enumerate()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, enumerator, adcs)
    return best


def run_enum_core_comparison(n_rows: int = BENCH_ROWS) -> list[dict[str, object]]:
    """One row per (epsilon, selection) configuration."""
    relation = generate_dataset("tax", n_rows=n_rows, seed=7).relation
    space = build_predicate_space(relation)
    evidence = build_evidence_set(relation, space)

    rows: list[dict[str, object]] = []
    for epsilon in EPSILONS:
        for selection in SELECTIONS:
            seconds, enumerator, adcs = _best_of(
                lambda: ADCEnum(evidence, F1(), epsilon, selection=selection,
                                max_dc_size=MAX_DC_SIZE)
            )
            nodes = enumerator.statistics.recursive_calls
            row: dict[str, object] = {
                "epsilon": epsilon,
                "selection": selection,
                "seconds": seconds,
                "nodes": nodes,
                "nodes_per_second": nodes / seconds if seconds else 0.0,
                "dcs": len(adcs),
            }
            # The legacy baseline is expensive; run it where it matters —
            # selection "max" at every epsilon, all selections at the
            # reference epsilon — and confirm bit-identical output.
            if selection == "max" or epsilon == EPSILON_REFERENCE:
                legacy_seconds, _, legacy_adcs = _best_of(
                    lambda: LegacyADCEnum(evidence, F1(), epsilon,
                                          selection=selection,
                                          max_dc_size=MAX_DC_SIZE)
                )
                if _discovered(adcs) != _discovered(legacy_adcs):
                    raise AssertionError(
                        f"word-native output differs from pre-refactor at "
                        f"epsilon={epsilon}, selection={selection}"
                    )
                row["legacy_seconds"] = legacy_seconds
                row["speedup_vs_legacy"] = legacy_seconds / seconds if seconds else 0.0
                row["bit_identical"] = True
            rows.append(row)
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-speedup", action="store_true",
                        help=f"fail unless the epsilon={EPSILON_REFERENCE} "
                             f"speedup reaches {EXPECTED_SPEEDUP}x")
    args = parser.parse_args()

    rows = run_enum_core_comparison(args.rows)

    header = (
        f"{'epsilon':>8} {'selection':>9} {'seconds':>9} {'nodes':>8} "
        f"{'nodes/s':>10} {'dcs':>6} {'legacy s':>9} {'speedup':>8}"
    )
    print(f"Enumeration core on tax x {args.rows} rows "
          f"(f1, max_dc_size={MAX_DC_SIZE}, best of {REPEATS}):")
    print(header)
    print("-" * len(header))
    for row in rows:
        legacy = row.get("legacy_seconds")
        legacy_text = f"{legacy:.3f}" if legacy is not None else "-"
        speedup = row.get("speedup_vs_legacy")
        speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
        print(
            f"{row['epsilon']:>8} {row['selection']:>9} {row['seconds']:>9.3f} "
            f"{row['nodes']:>8} {row['nodes_per_second']:>10,.0f} {row['dcs']:>6} "
            f"{legacy_text:>9} {speedup_text:>8}"
        )

    reference_speedups = [
        float(row["speedup_vs_legacy"])
        for row in rows
        if row["epsilon"] == EPSILON_REFERENCE and "speedup_vs_legacy" in row
    ]
    best_reference = max(reference_speedups) if reference_speedups else 0.0
    print(f"\nbest speedup at epsilon={EPSILON_REFERENCE}: {best_reference:.2f}x "
          f"(target {EXPECTED_SPEEDUP}x)")

    # Write the artifact before evaluating the gate: when the gate fails,
    # the per-configuration timings are exactly the data needed to diagnose
    # the regression.
    if args.json:
        payload = {
            "benchmark": "enum_core",
            "n_rows": args.rows,
            "max_dc_size": MAX_DC_SIZE,
            "expected_speedup": EXPECTED_SPEEDUP,
            "reference_epsilon": EPSILON_REFERENCE,
            "best_reference_speedup": best_reference,
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if best_reference < EXPECTED_SPEEDUP:
        message = (
            f"word-native core reached only {best_reference:.2f}x at "
            f"epsilon={EPSILON_REFERENCE} (expected >= {EXPECTED_SPEEDUP}x)"
        )
        if args.require_speedup:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
