"""SearchMC — the FASTDC/AFASTDC minimal-cover search.

Chu et al. [11] discover DCs by searching for *minimal covers* of the
evidence set: sets of predicates intersecting every evidence (exact DCs) or,
in AFASTDC, leaving at most an epsilon fraction of the tuple pairs uncovered.
The search is a depth-first traversal of the predicate space with dynamic
ordering of the remaining candidate predicates by how many uncovered
evidences they hit; branch ``i`` of a node commits to candidate ``i`` and may
only use candidates ordered after it, so every predicate set is explored at
most once.

This module is the enumeration baseline of Figures 6 and 9 (``SearchMC`` in
the paper's terminology).  It produces the same minimal ADCs as ADCEnum for
the pair-based function, but explores considerably more of the search space,
which is exactly the performance gap the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.adc_enum import DiscoveredADC
from repro.core.approximation import ApproximationFunction, F1
from repro.core.bitset import full_bits, pack_bool_rows, popcount
from repro.core.dc import DenialConstraint
from repro.core.evidence import EvidenceSet
from repro.core.predicate_space import iter_bits


@dataclass
class SearchMCStatistics:
    """Counters describing one SearchMC run."""

    nodes_visited: int = 0
    covers_found: int = 0
    pruned_no_candidates: int = 0
    elapsed_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)


class SearchMC:
    """SearchMinimalCovers with the AFASTDC approximate base case.

    Parameters
    ----------
    evidence:
        The evidence set to cover.
    function:
        Approximation function deciding when a partial cover is good enough.
        AFASTDC hard-wires the pair-based f1; other valid functions are
        accepted for completeness of the comparison harness.
    epsilon:
        Approximation threshold.
    max_cover_size:
        Optional bound on the number of predicates per cover (FASTDC bounds
        the depth of the search in practice).
    """

    def __init__(
        self,
        evidence: EvidenceSet,
        function: ApproximationFunction | None = None,
        epsilon: float = 0.01,
        max_cover_size: int | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.evidence = evidence
        self.function = function if function is not None else F1()
        self.epsilon = float(epsilon)
        self.max_cover_size = max_cover_size
        self.statistics = SearchMCStatistics()
        # Predicate-membership matrix: contains[p, e] is True when evidence e
        # satisfies predicate p (the same bit-level representation FASTDC's
        # Java implementation uses for its coverage counting), unpacked
        # straight from the evidence set's packed uint64 words; the packed
        # transpose (predicate -> evidence-bitset) drives the word-native
        # coverage counting of the dynamic candidate ordering.
        self._contains = evidence.predicate_membership()
        self._contains_ev_words = pack_bool_rows(self._contains)
        self._counts = np.asarray(evidence.counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enumerate(self) -> list[DiscoveredADC]:
        """Run the search and return all minimal nontrivial ADCs."""
        self.statistics = SearchMCStatistics()
        started = time.perf_counter()
        covers: dict[int, float] = {}
        all_indices = list(range(len(self.evidence.space)))
        uncovered = np.arange(len(self.evidence), dtype=np.int64)
        uncovered_bits = full_bits(len(self.evidence))
        self._search(0, [], all_indices, uncovered, uncovered_bits, covers)
        minimal = self._minimize(covers)
        results = self._to_adcs(minimal)
        self.statistics.elapsed_seconds = time.perf_counter() - started
        return results

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _passes(self, uncovered: np.ndarray) -> bool:
        score = self._score(uncovered)
        return score <= self.epsilon

    def _score(self, uncovered: np.ndarray) -> float:
        total = self.evidence.total_pairs
        pair_fraction = (
            int(self._counts[uncovered].sum()) / total if total else 0.0
        )
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return float("inf")
        return self.function.violation_score(self.evidence, uncovered.tolist())

    def _search(
        self,
        cover_mask: int,
        cover_elements: list[int],
        candidates: list[int],
        uncovered: np.ndarray,
        uncovered_bits: np.ndarray,
        covers: dict[int, float],
    ) -> None:
        self.statistics.nodes_visited += 1

        if self._passes(uncovered):
            if cover_mask and self._locally_minimal(cover_mask, cover_elements):
                covers[cover_mask] = self.function.violation_score(
                    self.evidence, uncovered.tolist()
                )
                self.statistics.covers_found += 1
            return

        if self.max_cover_size is not None and len(cover_elements) >= self.max_cover_size:
            return

        if not candidates:
            self.statistics.pruned_no_candidates += 1
            return
        candidate_array = np.asarray(candidates, dtype=np.int64)
        # Word-native coverage counting: popcounts over the packed uncovered
        # bitset replace the boolean fancy-index submatrix of the pre-word
        # implementation (same counts, ~64x less data touched per node).
        coverage_counts = popcount(
            self._contains_ev_words[candidate_array] & uncovered_bits
        ).sum(axis=1, dtype=np.int64)
        useful = coverage_counts > 0
        if not useful.any():
            self.statistics.pruned_no_candidates += 1
            return
        order = np.argsort(-coverage_counts[useful], kind="stable")
        ordered = candidate_array[useful][order].tolist()

        space = self.evidence.space
        for position, candidate in enumerate(ordered):
            remaining_uncovered = uncovered[~self._contains[candidate][uncovered]]
            remaining_bits = uncovered_bits & ~self._contains_ev_words[candidate]
            # Like ADCEnum, drop operator-only variants of the chosen
            # predicate from the remaining candidates: covers using two
            # predicates over the same column pair are either trivial or
            # violate indifference-to-redundancy minimality.
            group_mask = space.group_mask(candidate)
            remaining_candidates = [
                other for other in ordered[position + 1:] if not (group_mask >> other) & 1
            ]
            self._search(
                cover_mask | (1 << candidate),
                cover_elements + [candidate],
                remaining_candidates,
                remaining_uncovered,
                remaining_bits,
                covers,
            )

    def _locally_minimal(self, cover_mask: int, cover_elements: list[int]) -> bool:
        """Check that dropping any single predicate breaks the threshold."""
        for element in cover_elements:
            reduced = cover_mask & ~(1 << element)
            reduced_uncovered = np.asarray(
                self.evidence.uncovered_indices(reduced), dtype=np.int64
            )
            if self._passes(reduced_uncovered):
                return False
        return True

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------
    def _minimize(self, covers: dict[int, float]) -> dict[int, float]:
        """Drop covers that strictly contain another discovered cover."""
        minimal: dict[int, float] = {}
        masks = list(covers)
        for mask in masks:
            dominated = any(other != mask and other & mask == other for other in masks)
            if not dominated:
                minimal[mask] = covers[mask]
        return minimal

    def _to_adcs(self, covers: dict[int, float]) -> list[DiscoveredADC]:
        space = self.evidence.space
        results: list[DiscoveredADC] = []
        for mask, score in covers.items():
            predicates = [space[space.complement_index(index)] for index in iter_bits(mask)]
            constraint = DenialConstraint(predicates)
            if constraint.is_trivial():
                continue
            results.append(DiscoveredADC(constraint, mask, score))
        return results


def search_minimal_covers(
    evidence: EvidenceSet,
    function: ApproximationFunction | None = None,
    epsilon: float = 0.01,
    max_cover_size: int | None = None,
) -> list[DiscoveredADC]:
    """Convenience wrapper running :class:`SearchMC` once."""
    return SearchMC(evidence, function, epsilon, max_cover_size).enumerate()
