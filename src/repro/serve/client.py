"""Synchronous client of the violation-serving server.

:class:`ServeClient` is the one blocking client everything shares — tests,
benchmarks, examples, and the CI smoke driver — instead of each
hand-rolling socket framing.  One instance owns one connection; calls are
request/response in order (a lock serializes concurrent callers, so an
instance is thread-safe but not pipelined — open one client per thread for
throughput).

Typed helpers cover every server op; :meth:`request` is the escape hatch
for raw frames.  A server-side failure raises
:class:`~repro.serve.protocol.ServeError` carrying the error code.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Iterable, Mapping, Sequence

from repro.serve import protocol
from repro.serve.protocol import ServeError

Row = Mapping[str, object]


class ServeClient:
    """Blocking JSON-frame client for one server connection.

    Parameters
    ----------
    host, port:
        The server's listen address.
    timeout:
        Socket timeout for connect and for every response (seconds;
        ``None`` blocks forever — remines on big stores can be slow).
    max_frame_bytes:
        Refusal bound for response frames (matches the server's).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.max_frame_bytes = int(max_frame_bytes)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def request(self, op: str, **fields: object) -> dict[str, object]:
        """Send one request and wait for its response.

        Returns the success frame (minus the envelope); raises
        :class:`ServeError` on an error frame and :class:`ConnectionError`
        when the link dies.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        with self._lock:
            request_id = next(self._ids)
            self._sock.sendall(
                protocol.encode_frame({"id": request_id, "op": op, **fields})
            )
            response = protocol.read_frame(self._sock, self.max_frame_bytes)
        if response.get("id") not in (request_id, None):
            raise protocol.ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                str(error.get("code", protocol.INTERNAL)),
                str(error.get("message", "unspecified server error")),
            )
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Typed ops
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, object]:
        """Server liveness, protocol version, and registered store names."""
        return self.request("ping")

    def create_store(
        self,
        store: str,
        rows: Iterable[Row],
        types: Mapping[str, str] | None = None,
    ) -> dict[str, object]:
        """Register a tenant store seeded with ``rows``."""
        fields: dict[str, object] = {"store": store, "rows": list(rows)}
        if types is not None:
            fields["types"] = dict(types)
        return self.request("create_store", **fields)

    def drop_store(self, store: str) -> dict[str, object]:
        """Drain and remove a tenant store."""
        return self.request("drop_store", store=store)

    def append(self, store: str, rows: Iterable[Row]) -> dict[str, object]:
        """Stream a batch of rows into a store (coalesced server-side)."""
        return self.request("append", store=store, rows=list(rows))

    def remine(
        self,
        store: str,
        epsilon: float,
        function: str = "f1",
        max_dc_size: int | None = None,
        limit: int | None = None,
    ) -> dict[str, object]:
        """Mine ADCs on the store's current state and install them."""
        fields: dict[str, object] = {
            "store": store, "epsilon": epsilon, "function": function,
        }
        if max_dc_size is not None:
            fields["max_dc_size"] = max_dc_size
        if limit is not None:
            fields["limit"] = limit
        return self.request("remine", **fields)

    def declare(
        self,
        store: str,
        constraints: Sequence[Sequence[Mapping[str, object]]],
        epsilon: float = 0.01,
    ) -> dict[str, object]:
        """Install hand-written DCs (lists of predicate specs)."""
        return self.request(
            "declare", store=store,
            constraints=[list(spec) for spec in constraints],
            epsilon=epsilon,
        )

    def violations(
        self, store: str, dc: int, mode: str = "counters"
    ) -> dict[str, object]:
        """One DC's violating-pair count/rate (push counters by default)."""
        return self.request("violations", store=store, dc=dc, mode=mode)

    def report(self, store: str) -> dict[str, object]:
        """All served DCs' counts/rates off one consistent counter snapshot."""
        return self.request("report", store=store)

    def check_batch(self, store: str, rows: Iterable[Row]) -> dict[str, object]:
        """Per-row epsilon admission verdicts for an incoming batch."""
        return self.request("check_batch", store=store, rows=list(rows))

    def violating_pairs(
        self, store: str, dc: int, limit: int = 10_000
    ) -> dict[str, object]:
        """The actual violating ``(t, t')`` pairs of one DC (tile replay)."""
        return self.request("violating_pairs", store=store, dc=dc, limit=limit)

    def tuple_scores(
        self, store: str, dc: int, ranking: bool = False
    ) -> dict[str, object]:
        """Per-tuple violation scores (and optionally the repair ranking)."""
        return self.request("tuple_scores", store=store, dc=dc, ranking=ranking)

    def stats(self) -> dict[str, object]:
        """Server-wide and per-store operational statistics."""
        return self.request("stats")
