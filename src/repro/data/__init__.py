"""Data substrate for the ADC reproduction.

This subpackage provides the typed in-memory relational layer the mining
algorithms operate on, plus the synthetic dataset generators, golden denial
constraints, noise models, and position list indexes (PLIs).
"""

from repro.data.types import ColumnType, infer_column_type
from repro.data.relation import Column, Relation, running_example
from repro.data.pli import PositionListIndex, build_pli
from repro.data.noise import NoiseReport, add_concentrated_noise, add_spread_noise
from repro.data.datasets import (
    DATASET_NAMES,
    Dataset,
    generate_dataset,
    generate_adult,
    generate_airport,
    generate_flight,
    generate_food,
    generate_hospital,
    generate_stock,
    generate_tax,
    generate_voter,
)

__all__ = [
    "ColumnType",
    "infer_column_type",
    "Column",
    "Relation",
    "running_example",
    "PositionListIndex",
    "build_pli",
    "NoiseReport",
    "add_spread_noise",
    "add_concentrated_noise",
    "DATASET_NAMES",
    "Dataset",
    "generate_dataset",
    "generate_tax",
    "generate_stock",
    "generate_hospital",
    "generate_food",
    "generate_airport",
    "generate_adult",
    "generate_flight",
    "generate_voter",
]
