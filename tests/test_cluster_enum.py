"""Tests of distributed enumeration (root subtrees as cluster work units).

The claim under test is *exactness*: :func:`parallel_enumerate` returns the
same DC list — same constraints, same order, same scores, same hitting-set
masks — as a serial :class:`ADCEnum` run, for every approximation function
and selection strategy the units support.  The root-branch restriction is
additionally checked directly: the per-branch outputs, concatenated in root
order and deduplicated first-occurrence by mask, must replay the serial
emission sequence.
"""

from __future__ import annotations

import pytest

from tests.conftest import make_random_relation
from repro.cluster import LocalCluster, parallel_enumerate
from repro.core.adc_enum import ADCEnum
from repro.core.approximation import F1, F2, F3Greedy
from repro.core.evidence_builder import build_evidence_set
from repro.core.miner import ADCMiner, run_enumeration
from repro.core.predicate_space import build_predicate_space
from repro.data.relation import running_example


@pytest.fixture(scope="module")
def local_cluster():
    with LocalCluster(2, transport="local") as cluster:
        yield cluster


def signature(adcs):
    """Order-sensitive identity of a DC list."""
    return [
        (adc.hitting_set_mask, adc.violation_score, str(adc.constraint))
        for adc in adcs
    ]


def evidence_for(seed: int, n_rows: int = 10):
    relation = make_random_relation(n_rows=n_rows, seed=seed)
    space = build_predicate_space(relation)
    return build_evidence_set(relation, space)


class TestRootBranchRestriction:
    @pytest.mark.parametrize("selection", ["max", "min"])
    def test_branches_partition_the_serial_output(self, selection):
        evidence = evidence_for(seed=5)
        serial = ADCEnum(evidence, F1(), 0.01, selection=selection)
        reference = serial.enumerate()
        kind, elements = serial.root_plan()
        assert kind == "branch" and elements

        merged, seen = [], set()
        for branch in ["skip", *elements]:
            unit = ADCEnum(
                evidence, F1(), 0.01, selection=selection, root_branch=branch
            )
            for adc in unit.enumerate():
                if adc.hitting_set_mask not in seen:
                    seen.add(adc.hitting_set_mask)
                    merged.append(adc)
        assert signature(merged) == signature(reference)

    def test_root_plan_is_leaf_when_empty_set_passes(self):
        evidence = evidence_for(seed=5)
        # Epsilon 1.0 admits everything: the root emits and never branches.
        kind, elements = ADCEnum(evidence, F1(), 1.0).root_plan()
        assert (kind, elements) == ("leaf", [])

    def test_root_plan_does_not_disturb_search_state(self):
        evidence = evidence_for(seed=2)
        enumerator = ADCEnum(evidence, F1(), 0.01)
        enumerator.root_plan()
        assert signature(enumerator.enumerate()) == signature(
            ADCEnum(evidence, F1(), 0.01).enumerate()
        )


class TestParallelEnumerate:
    @pytest.mark.parametrize("seed", [0, 1, 4, 9])
    @pytest.mark.parametrize("epsilon", [0.0, 0.01, 0.1])
    def test_exact_for_f1(self, local_cluster, seed, epsilon):
        evidence = evidence_for(seed)
        serial, _ = run_enumeration(evidence, F1(), epsilon)
        distributed, statistics = parallel_enumerate(
            evidence, F1(), epsilon, local_cluster
        )
        assert signature(distributed) == signature(serial)
        assert statistics.outputs == len(distributed)

    @pytest.mark.parametrize("function", [F2(), F3Greedy()])
    def test_exact_for_participation_functions(self, local_cluster, function):
        evidence = evidence_for(seed=3)
        serial, _ = run_enumeration(evidence, function, 0.05)
        distributed, _ = parallel_enumerate(evidence, function, 0.05, local_cluster)
        assert signature(distributed) == signature(serial)

    @pytest.mark.parametrize("selection", ["min", "random"])
    def test_exact_for_other_selections(self, local_cluster, selection):
        # "min" distributes; "random" falls back to a serial run — both
        # must reproduce the serial list either way.
        evidence = evidence_for(seed=6)
        serial, _ = run_enumeration(evidence, F1(), 0.01, selection=selection)
        distributed, _ = parallel_enumerate(
            evidence, F1(), 0.01, local_cluster, selection=selection
        )
        assert signature(distributed) == signature(serial)

    def test_exact_with_max_dc_size(self, local_cluster):
        evidence = evidence_for(seed=8)
        serial, _ = run_enumeration(evidence, F1(), 0.01, max_dc_size=2)
        distributed, _ = parallel_enumerate(
            evidence, F1(), 0.01, local_cluster, max_dc_size=2
        )
        assert signature(distributed) == signature(serial)


class TestClusterMiner:
    def test_cluster_mining_matches_tiled_mining(self, local_cluster):
        relation = running_example()
        baseline = ADCMiner("f1", 0.05).mine(relation)
        clustered = ADCMiner(
            "f1", 0.05, cluster=local_cluster, cluster_enumeration=True
        ).mine(relation)
        assert signature(clustered.adcs) == signature(baseline.adcs)
        assert clustered.evidence.n_rows == baseline.evidence.n_rows

    def test_cluster_evidence_only_also_matches(self, local_cluster):
        relation = running_example()
        baseline = ADCMiner("f2", 0.05).mine(relation)
        clustered = ADCMiner("f2", 0.05, cluster=local_cluster).mine(relation)
        assert signature(clustered.adcs) == signature(baseline.adcs)
