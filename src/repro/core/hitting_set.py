"""Exact minimal hitting set enumeration (MMCS).

The algorithm of Murakami and Uno [32] (Figure 3 of the paper) enumerates all
minimal hitting sets of a family of subsets.  ADCEnum extends it to the
approximate setting; the exact version is kept both as a reusable substrate
(valid-DC discovery corresponds to epsilon = 0) and as a reference for the
tests of Theorem 6.1.

The public interface still speaks Python-int bitmasks over element indices
``0 .. n_elements - 1`` (subsets in, minimal hitting sets out), but the
search itself runs on the same word-native core as ADCEnum: subsets and the
candidate set are packed uint64 word vectors, the uncovered family is a
packed bitset over subset indices, and the criticality bookkeeping of
UpdateCritUncov lives in :class:`~repro.core.bitset.CriticalityPlanes`.
Sharing the representation means the Figure 6 family of comparisons measures
algorithms, not representations.

Subset selection uses the minimal-intersection rule recommended in [32],
with ties broken towards the lowest subset index (the historical
implementation iterated a Python set, which left the tie order unspecified;
pinning it makes runs reproducible and lets the cross-check tests assert
exact output order against :class:`repro.core.legacy_enum.LegacyMMCS`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.bitset import (
    CriticalityPlanes,
    bits_to_indices,
    full_bits,
    n_words_for_bits,
    pack_bool_rows,
    popcount,
    set_bit,
    unpack_bits,
    word_bits_list,
)
from repro.core.evidence import masks_to_words


@dataclass
class MMCSStatistics:
    """Counters describing one enumeration run (used by benchmarks)."""

    recursive_calls: int = 0
    outputs: int = 0
    pruned_by_criticality: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class _MMCSFrame:
    """One node of the explicit MMCS search stack."""

    __slots__ = (
        "uncov_bits", "cand_words", "to_try", "cand_loop",
        "position", "removed", "returning",
    )

    def __init__(self, uncov_bits: np.ndarray, cand_words: np.ndarray) -> None:
        self.uncov_bits = uncov_bits
        self.cand_words = cand_words
        self.to_try: list[int] | None = None
        self.cand_loop: np.ndarray | None = None
        self.position = 0
        self.removed: np.ndarray | None = None
        self.returning = False


class MMCS:
    """Minimal hitting set enumerator of Murakami and Uno.

    Parameters
    ----------
    subsets:
        The family ``M`` of subsets to hit, as bitmasks.
    n_elements:
        Size of the ground set ``K``.
    """

    def __init__(self, subsets: Sequence[int], n_elements: int) -> None:
        self.subsets = list(subsets)
        self.n_elements = int(n_elements)
        self.statistics = MMCSStatistics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enumerate(self) -> list[int]:
        """Return all minimal hitting sets as bitmasks."""
        return list(self.iter_minimal_hitting_sets())

    def iter_minimal_hitting_sets(self) -> Iterator[int]:
        """Yield every minimal hitting set exactly once.

        All search state (packed planes, criticality bookkeeping) lives in
        per-call locals, so several iterators over the same :class:`MMCS`
        instance may be interleaved safely; only :attr:`statistics` is
        shared, describing the most recently started run.
        """
        self.statistics = MMCSStatistics()
        if any(subset == 0 for subset in self.subsets):
            # An empty subset can never be hit; there are no hitting sets.
            return
        # subset_words[s] is subset s packed over element bits;
        # element_covers[e] is the transposed membership packed over subset
        # bits (which subsets does element e hit) — the plane UpdateCritUncov
        # intersects against.
        n_element_words = n_words_for_bits(self.n_elements)
        subset_words = masks_to_words(self.subsets, n_element_words)
        membership = unpack_bits(subset_words, self.n_elements)
        element_covers = pack_bool_rows(membership.T)
        crit = CriticalityPlanes(len(self.subsets), self.n_elements + 1)
        uncov_bits = full_bits(len(self.subsets))
        cand_words = full_bits(self.n_elements)
        yield from self._search(
            [], uncov_bits, cand_words, subset_words, element_covers, crit
        )

    # ------------------------------------------------------------------
    # Search (explicit stack)
    # ------------------------------------------------------------------
    def _search(
        self,
        elements: list[int],
        uncov_bits: np.ndarray,
        cand_words: np.ndarray,
        subset_words: np.ndarray,
        element_covers: np.ndarray,
        crit: CriticalityPlanes,
    ) -> Iterator[int]:
        """Depth-first search over (element, skip) decisions.

        The tree is walked with an explicit frame stack rather than Python
        recursion, so the search depth is bounded by memory, not by the
        interpreter recursion limit (hitting-set chains routinely exceed the
        default limit on long thin inputs).  The visit order, statistics and
        criticality bookkeeping are exactly those of the recursive original:
        a frame's hit loop applies the criticality planes before descending
        and undoes them when the subtree returns.
        """
        statistics = self.statistics
        frames: list[_MMCSFrame] = [_MMCSFrame(uncov_bits, cand_words)]
        while frames:
            frame = frames[-1]
            if frame.to_try is None:
                # First visit: the recursive function's prologue.
                statistics.recursive_calls += 1
                if not frame.uncov_bits.any():
                    statistics.outputs += 1
                    mask = 0
                    for element in elements:
                        mask |= 1 << element
                    yield mask
                    frames.pop()
                    continue
                chosen = self._choose_subset(
                    frame.uncov_bits, frame.cand_words, subset_words
                )
                chosen_words = subset_words[chosen]
                frame.to_try = word_bits_list(chosen_words & frame.cand_words)
                frame.cand_loop = frame.cand_words & ~chosen_words
            elif frame.returning:
                # A descended child just finished: the loop's epilogue.
                frame.returning = False
                elements.pop()
                set_bit(frame.cand_loop, frame.to_try[frame.position])
                crit.undo(frame.removed)
                frame.position += 1
            while frame.position < len(frame.to_try):
                element = frame.to_try[frame.position]
                covers = element_covers[element]
                viable, removed = crit.apply(frame.uncov_bits & covers, covers)
                if viable:
                    frame.removed = removed
                    frame.returning = True
                    elements.append(element)
                    frames.append(
                        _MMCSFrame(frame.uncov_bits & ~covers, frame.cand_loop)
                    )
                    break
                statistics.pruned_by_criticality += 1
                crit.undo(removed)
                frame.position += 1
            else:
                frames.pop()

    def _choose_subset(
        self,
        uncov_bits: np.ndarray,
        cand_words: np.ndarray,
        subset_words: np.ndarray,
    ) -> int:
        """Pick the uncovered subset with the fewest candidate elements.

        This is the selection rule recommended in [32]; ADCEnum flips it to
        the maximum-intersection rule (Section 6.2, Figure 10).  Ties go to
        the lowest subset index.
        """
        uncovered = bits_to_indices(uncov_bits, len(self.subsets))
        intersections = popcount(subset_words[uncovered] & cand_words).sum(
            axis=1, dtype=np.int64
        )
        return int(uncovered[int(np.argmin(intersections))])


def minimal_hitting_sets(subsets: Iterable[int], n_elements: int) -> list[int]:
    """Convenience wrapper returning all minimal hitting sets as bitmasks."""
    return MMCS(list(subsets), n_elements).enumerate()


def brute_force_minimal_hitting_sets(subsets: Sequence[int], n_elements: int) -> list[int]:
    """Exponential reference implementation used to validate MMCS in tests."""
    subsets = list(subsets)
    if any(subset == 0 for subset in subsets):
        return []
    hitting: list[int] = []
    for candidate in range(1 << n_elements):
        if all(candidate & subset for subset in subsets):
            hitting.append(candidate)
    minimal = []
    for candidate in hitting:
        if not any(other != candidate and other & candidate == other for other in hitting):
            minimal.append(candidate)
    return minimal


def is_hitting_set(candidate: int, subsets: Iterable[int]) -> bool:
    """Whether ``candidate`` intersects every subset."""
    return all(candidate & subset for subset in subsets)
