"""ADCEnum — enumeration of minimal approximate denial constraints.

This module implements the paper's main algorithmic contribution (Section 6,
Figures 4 and 5): a general algorithm for enumerating *minimal approximate
hitting sets* of the evidence set w.r.t. an arbitrary valid approximation
function, extended from the MMCS enumerator of Murakami and Uno with

* an approximate base case (``1 - f(D, S) <= epsilon``) plus an explicit
  minimality check (``IsMinimal``),
* a second recursive branch per chosen evidence that *does not* hit it,
  guarded by the ``canHit`` bookkeeping and the ``WillCover`` monotonicity
  prune,
* removal of same-group (operator-only variants) predicates from the
  candidate list once a predicate has been added, avoiding trivial and
  redundancy-non-minimal DCs,
* evidence selection by *maximal* intersection with the candidate list (the
  ablation of Figure 10 can switch back to the minimal-intersection rule of
  MMCS or a pseudo-random rule).

The enumerated hitting set ``S`` is a set of predicates; the reported DC is
``S_phi = complement(S)``.

The search is **word-native and stack-explicit**: no Python-int bitmask is
touched inside the hot loop, and no Python recursion happens at all.  All
per-node state — the transposed evidence plane, candidate planes, overlap
counters, criticality bookkeeping — lives in a per-depth arena
(:class:`repro.native.NumpySearchWorkspace` and its compiled twin) owned by
the dispatched kernel backend (:mod:`repro.native.dispatch`), so a search
node is a handful of fused kernel calls writing into preallocated buffers
instead of dozens of small numpy dispatches allocating fresh arrays.  The
driver (:meth:`ADCEnum._run_search`) walks an explicit frame stack, which
removes the old ``sys.setrecursionlimit`` mutation and the recursion-depth
ceiling on deep skip chains: depth is bounded only by the number of
predicates.  Chosen evidences are read directly from the packed
``evidence.words`` plane; the lazy Python-int ``masks`` view is never
consulted.  This is the Python-level reproduction of DCFinder's bit-level
engineering, without which the enumeration would be orders of magnitude
slower (``benchmarks/bench_enum_core.py`` tracks the node rate against the
pre-refactor core kept in :mod:`repro.core.legacy_enum`, and
``benchmarks/bench_kernels.py`` the compiled-vs-numpy backend ratio).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Literal, Sequence

import numpy as np

from repro.core.approximation import ApproximationFunction, F1
from repro.core.bitset import (
    full_bits,
    pack_bool_rows,
    popcount,
    unpack_bits,
    word_bits_list,
)
from repro.core.dc import DenialConstraint
from repro.core.evidence import EvidenceSet, masks_to_words
from repro.core.predicate_space import iter_bits
from repro.native import dispatch as native_dispatch
from repro.native.numpy_backend import (
    DESCENDED,
    PRUNED,
    selection_code,
)

SelectionStrategy = Literal["max", "min", "random"]


class _Frame:
    """One explicit-stack search frame (pooled per depth, reused in place).

    Frames carry only scalars; the array state of the node lives in the
    workspace slot of the same depth.  ``phase`` sequences the node through
    enter/base-case (0), hit-loop setup (1) and the hit loop itself (2);
    ``returning`` marks that the frame is being resumed after a descended
    child, so the loop replays the post-child bookkeeping (criticality pop,
    hitting-set pop) before advancing.
    """

    __slots__ = (
        "n", "uncovered_pairs", "dead_pairs", "phase", "n_to_try",
        "k", "position", "elements", "returning", "root_branch",
    )


@dataclass
class EnumerationStatistics:
    """Counters describing one ADCEnum run (reported by the benchmarks)."""

    recursive_calls: int = 0
    hit_branches: int = 0
    skip_branches: int = 0
    pruned_by_willcover: int = 0
    pruned_by_criticality: int = 0
    minimality_checks: int = 0
    outputs: int = 0
    elapsed_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def nodes_per_second(self) -> float:
        """Search nodes visited per wall-clock second (0 when unmeasured)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.recursive_calls / self.elapsed_seconds


@dataclass(frozen=True)
class DiscoveredADC:
    """One minimal approximate denial constraint found by the enumerator."""

    constraint: DenialConstraint
    hitting_set_mask: int
    violation_score: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.constraint}   [1 - f = {self.violation_score:.6f}]"


class ADCEnum:
    """Enumerator of minimal approximate denial constraints.

    Parameters
    ----------
    evidence:
        Evidence set of the database (or sample).
    function:
        A valid approximation function (monotone + indifferent to
        redundancy).
    epsilon:
        Approximation threshold; a DC passes when ``1 - f(D, S_phi) <= epsilon``.
    selection:
        Evidence-selection rule: ``"max"`` (paper's choice), ``"min"``
        (Murakami & Uno) or ``"random"`` (deterministic pseudo-random,
        seeded by the recursion counter).
    max_dc_size:
        Optional cap on the number of predicates per DC; ``None`` means
        unbounded.  The cap applies to the hitting branch only, so all
        minimal ADCs within the bound are still enumerated.
    root_branch:
        Restrict the search to ONE top-level subtree: ``"skip"`` explores
        only the root's skip branch, an integer predicate index only that
        element's hit branch.  Below the root the subtree is searched in
        full, with the sibling bookkeeping (candidate re-additions,
        criticality round-trips) replayed exactly, so the union of all
        root branches — deduplicated in root order — reproduces the
        unrestricted output bit for bit.  This is the hook
        :func:`repro.cluster.enum.parallel_enumerate` farms out over
        cluster workers; ``None`` (default) searches the whole tree.
    """

    def __init__(
        self,
        evidence: EvidenceSet,
        function: ApproximationFunction | None = None,
        epsilon: float = 0.01,
        selection: SelectionStrategy = "max",
        max_dc_size: int | None = None,
        root_branch: int | str | None = None,
        progress: "Callable[[EnumerationStatistics], None] | None" = None,
        progress_interval: int = 8192,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if selection not in ("max", "min", "random"):
            raise ValueError(f"unknown selection strategy {selection!r}")
        if root_branch is not None and root_branch != "skip":
            root_branch = int(root_branch)
        self.root_branch = root_branch
        self._pending_root_branch: int | str | None = None
        self.evidence = evidence
        self.function = function if function is not None else F1()
        self.epsilon = float(epsilon)
        self.selection: SelectionStrategy = selection
        self.max_dc_size = max_dc_size
        if progress_interval < 1:
            raise ValueError("progress_interval must be positive")
        # Live-observability hook: every ``progress_interval`` visited nodes
        # the search calls ``progress(self.statistics)`` with the counters
        # (and a refreshed ``elapsed_seconds`` / ``extra["max_stack_depth"]``)
        # as of that instant.  The hook must not mutate the statistics —
        # the counters are cross-checked against the legacy enumerator.
        self.progress = progress
        self.progress_interval = int(progress_interval)
        self.statistics = EnumerationStatistics()
        if self.function.requires_participation and not evidence.has_participation:
            raise ValueError(
                f"approximation function {self.function.name} needs tuple participation; "
                "build the evidence set with include_participation=True"
            )
        self._prepare_planes()

    # ------------------------------------------------------------------
    # Precomputed bit planes
    # ------------------------------------------------------------------
    def _prepare_planes(self) -> None:
        # The packed (n_evidences, n_words) uint64 array is the evidence
        # set's native representation, consumed as-is.  Everything else the
        # recursion needs is precomputed here as word planes: per-predicate
        # evidence-membership bitsets (for criticality updates), per-predicate
        # group masks (from the PredicateSpace cache) and the full candidate
        # plane the root starts from.
        space = self.evidence.space
        self._n_evidences = len(self.evidence)
        self._n_predicates = len(space)
        self._n_words = self.evidence.n_words
        self._ev_words = self.evidence.words
        # Transposed copy: plane w holds word w of every evidence
        # contiguously.  The per-node popcounts then run as unrolled 1-D
        # kernels over contiguous planes — an order of magnitude cheaper
        # than broadcast-and-reduce over the (n_evidences, n_words) layout,
        # whose axis-1 reductions of tiny width dominate otherwise.
        self._ev_planes = np.ascontiguousarray(self._ev_words.T)
        self._counts = np.asarray(self.evidence.counts, dtype=np.int64)
        # contains_ev_words[p] is predicate p's evidence-membership vector
        # packed over evidence bits; the boolean matrix it is packed from is
        # deliberately not retained (it is 64x the size of the plane).
        self._contains_ev_words = pack_bool_rows(self.evidence.predicate_membership())
        self._group_words = masks_to_words(space.group_masks, self._n_words)
        # Complemented group planes: the hit branch prunes a chosen
        # predicate's whole group with a single AND against this plane.
        self._group_words_inv = ~self._group_words
        self._full_cand_words = full_bits(self._n_predicates)
        self._total_pairs = self.evidence.total_pairs
        # A function that declares its score fully determined by the
        # violating-pair fraction (f1 and the adjusted f1') lets every
        # threshold test in the search collapse to scalar arithmetic on the
        # maintained counter.  It also licenses the dead-evidence
        # compaction: evidences whose candidate overlap reaches zero are
        # dropped from the threaded vectors (their pairs accumulate in the
        # dead_pairs scalar), because only their pair total — never their
        # identity — can still influence a threshold test; the uncovered
        # index list is rebuilt from uncov_bits at emission time.  Functions
        # that inspect the uncovered multiset (f2/f3) — or that only have a
        # *partial* pair shortcut — keep the full vectors and the explicit
        # index array.
        self._pair_determined = self._total_pairs == 0 or self.function.pair_determined
        # The search arena is built lazily on the first run and reused by
        # later runs of the same instance (slot buffers stay warm); it is
        # rebuilt if the dispatched backend changes between runs (tests).
        self._workspace = None
        self._workspace_backend = None

    def _get_workspace(self):
        backend = native_dispatch.get_backend()
        if self._workspace is None or self._workspace_backend is not backend:
            self._workspace = backend.make_search_workspace(
                ev_planes=self._ev_planes,
                counts=self._counts,
                contains_ev_words=self._contains_ev_words,
                group_words_inv=self._group_words_inv,
                full_cand_words=self._full_cand_words,
                n_evidences=self._n_evidences,
                n_predicates=self._n_predicates,
                track_uncov=not self._pair_determined,
            )
            self._workspace_backend = backend
        return self._workspace

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enumerate(self) -> list[DiscoveredADC]:
        """Run the enumeration and return all minimal nontrivial ADCs."""
        return list(self.iter_adcs())

    def iter_adcs(self) -> Iterator[DiscoveredADC]:
        """Yield all minimal nontrivial ADCs (computed eagerly, then yielded).

        The search runs as an explicit frame stack over the native arena
        rather than a generator chain — outputs are rare relative to search
        nodes, and dragging every node through the iterator protocol (or
        the interpreter's call machinery) measurably slows the hot loop.
        """
        self.statistics = EnumerationStatistics()
        started = time.perf_counter()
        self._search_started = started
        self._seen_outputs: set[int] = set()
        self._results: list[DiscoveredADC] = []
        workspace = self._get_workspace()
        self._run_search(workspace)
        self.statistics.elapsed_seconds = time.perf_counter() - started
        yield from self._results

    def root_plan(self) -> tuple[str, list[int]]:
        """Shape of the root search node, for distributed enumeration.

        Returns ``("leaf", [])`` when the root terminates without branching
        (the empty set already passes the threshold, or no uncovered
        evidence intersects the candidate plane), else
        ``("branch", elements)`` where ``elements`` is the root hit loop's
        predicate list in visit order.  Together with the ``"skip"`` branch
        those elements partition the search tree into the self-contained
        units :func:`repro.cluster.enum.parallel_enumerate` farms out via
        the ``root_branch`` restriction.  Read-only: no search state is
        touched.
        """
        if self._n_evidences == 0:
            return ("leaf", [])
        uncovered_pairs = int(self._counts.sum())
        cand_words = self._full_cand_words
        cand_counts = self._intersection_counts(self._ev_planes, cand_words)
        total = self.evidence.total_pairs
        if total == 0 or self.function.pair_determined:
            passes = total == 0 or (
                self.function.violation_score_from_pair_fraction(
                    uncovered_pairs / total, total
                )
                <= self.epsilon
            )
        else:
            passes = self._passes_lazy(
                np.arange(self._n_evidences, dtype=np.int64), uncovered_pairs
            )
        if passes:
            return ("leaf", [])
        selectable = (cand_counts > 0).nonzero()[0]
        if selectable.size == 0:
            return ("leaf", [])
        # call_index=1: recursive_calls is 1 when the real search's root runs.
        chosen = self._choose_evidence(selectable, cand_counts, 1)
        to_try = cand_words & self._ev_planes[:, chosen]
        return ("branch", word_bits_list(to_try))

    # ------------------------------------------------------------------
    # Scoring helpers
    # ------------------------------------------------------------------
    def _violation_score(self, uncov_indices: Sequence[int], uncovered_pairs: int) -> float:
        """``1 - f`` for the given uncovered evidences.

        Pair-based functions are answered from the maintained pair counter;
        for the tuple-based ones the Proposition 5.3 pre-filter avoids the
        expensive computation when the pair-based bound already exceeds
        ``pair_bound_factor * epsilon``.
        """
        total = self.evidence.total_pairs
        if total == 0:
            return 0.0
        pair_fraction = uncovered_pairs / total
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return math.inf
        return self.function.violation_score(self.evidence, uncov_indices)

    def _passes(self, uncov_indices: Sequence[int], uncovered_pairs: int) -> bool:
        return self._violation_score(uncov_indices, uncovered_pairs) <= self.epsilon

    def _passes_lazy(self, uncov: np.ndarray, uncovered_pairs: int) -> bool:
        """Threshold test that only materialises index lists when necessary."""
        total = self.evidence.total_pairs
        if total == 0:
            return True
        pair_fraction = uncovered_pairs / total
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut <= self.epsilon
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return False
        score = self.function.violation_score(self.evidence, uncov)
        return score <= self.epsilon

    def _is_minimal(
        self,
        s_elements: list[int],
        uncov: np.ndarray | None,
        uncovered_pairs: int,
    ) -> bool:
        """The IsMinimal subroutine of Figure 5.

        Removing element ``e`` from ``S`` un-covers exactly the evidences for
        which ``e`` is critical, so the score of ``S \\ {e}`` is evaluated on
        the current uncovered set extended with the criticality plane of
        ``e``.
        """
        self.statistics.minimality_checks += 1
        if not s_elements:
            return True
        total = self.evidence.total_pairs
        # One batched unpack answers every member's "how many pairs would
        # dropping it un-cover" question; the per-member index lists are only
        # materialised for functions the pair fraction cannot decide.
        crit_bools = unpack_bits(self._workspace.crit_active_rows(), self._n_evidences)
        extra_pairs_vector = crit_bools @ self._counts
        uncov_indices: list[int] | None = None
        for depth in range(len(s_elements)):
            extra_pairs = int(extra_pairs_vector[depth])
            pair_fraction_known = self.function.violation_score_from_pair_fraction(
                (uncovered_pairs + extra_pairs) / max(total, 1), total
            )
            if pair_fraction_known is not None:
                if pair_fraction_known <= self.epsilon:
                    return False
                continue
            critical = np.flatnonzero(crit_bools[depth])
            if uncov_indices is None:
                uncov_indices = uncov.tolist()
            if self._passes(uncov_indices + critical.tolist(), uncovered_pairs + extra_pairs):
                return False
        return True

    # ------------------------------------------------------------------
    # Explicit-stack search
    # ------------------------------------------------------------------
    def _run_search(self, workspace) -> None:
        """Drive the Figure 4/5 search as an explicit frame stack.

        The traversal order, branch bookkeeping and statistics increments
        reproduce the former recursive implementation exactly (the
        cross-checks against :class:`repro.core.legacy_enum.LegacyADCEnum`
        compare counter-for-counter); only the mechanism changed — frames
        are pooled per depth, the array state lives in the workspace arena,
        and each node is a handful of fused kernel calls.  Depth is bounded
        by the predicate count (every level consumes at least one
        candidate), not by the interpreter's recursion limit.

        Frame phases: 0 = enter (base case + expansion + skip branch),
        1 = hit-loop setup (WillCover prune resolved, skip subtree done),
        2 = hit loop (one ``try_hit`` per candidate element, descending
        into child frames and resuming through ``returning``).
        """
        statistics = self.statistics
        total = self._total_pairs
        pair_determined = self._pair_determined
        pair_score = self.function.violation_score_from_pair_fraction
        epsilon = self.epsilon
        selection = selection_code(self.selection)
        max_dc_size = self.max_dc_size
        # Progress hook bookkeeping, hoisted so the disabled case costs one
        # int compare per node (next_progress stays at +inf).
        progress = self.progress
        progress_interval = self.progress_interval
        next_progress: float = progress_interval if progress is not None else math.inf
        search_started = getattr(self, "_search_started", None)

        n_root = workspace.init_root()
        s_elements: list[int] = []
        frames = [_Frame()]
        root = frames[0]
        root.n = n_root
        root.uncovered_pairs = int(self._counts.sum()) if n_root else 0
        root.dead_pairs = 0
        root.phase = 0
        root.returning = False
        # Root-branch restriction (distributed enumeration): carried by the
        # root frame only; every deeper frame searches its subtree in full.
        root.root_branch = self.root_branch
        depth = 0
        max_depth = 0

        while depth >= 0:
            frame = frames[depth]
            phase = frame.phase

            if phase == 2:
                # Hit loop (Figure 4 lines 13-22).  Resuming after a
                # descended child replays the post-child bookkeeping first.
                if frame.returning:
                    frame.returning = False
                    workspace.crit_pop()
                    s_elements.pop()
                    if frame.elements[frame.position] == frame.root_branch:
                        depth -= 1
                        continue
                    frame.position += 1
                descended = False
                while frame.position < frame.k:
                    root_branch = frame.root_branch
                    element = frame.elements[frame.position]
                    # Under a root-branch restriction, siblings before the
                    # target element are *replayed* (criticality round-trip
                    # and candidate re-addition, which shape the target's
                    # subtree) but their subtrees are not descended into.
                    descend = root_branch is None or element == root_branch
                    status, _, child_n, child_pairs = workspace.try_hit(
                        depth, frame.n, frame.position, descend
                    )
                    if status == DESCENDED:
                        statistics.hit_branches += 1
                        s_elements.append(element)
                        frame.returning = True
                        child = self._frame_at(frames, depth + 1)
                        child.n = child_n
                        child.uncovered_pairs = frame.dead_pairs + child_pairs
                        child.dead_pairs = frame.dead_pairs
                        child.phase = 0
                        child.returning = False
                        child.root_branch = None
                        depth += 1
                        if depth > max_depth:
                            max_depth = depth
                        descended = True
                        break
                    if status == PRUNED:
                        statistics.pruned_by_criticality += 1
                        if element == root_branch:
                            # The restricted element was pruned: the whole
                            # restricted subtree is this empty visit.
                            break
                    frame.position += 1
                if not descended:
                    depth -= 1
                continue

            if phase == 0:
                statistics.recursive_calls += 1
                if statistics.recursive_calls >= next_progress:
                    next_progress = statistics.recursive_calls + progress_interval
                    if search_started is not None:
                        # Overwritten with the final value by iter_adcs.
                        statistics.elapsed_seconds = (
                            time.perf_counter() - search_started
                        )
                    statistics.extra["max_stack_depth"] = float(max_depth)
                    progress(statistics)
                n = frame.n
                uncovered_pairs = frame.uncovered_pairs

                # Base case (Figure 4, lines 1-3): report S when it passes
                # the threshold and is minimal.  Whenever the threshold is
                # met, no strict superset can be a *minimal* ADC
                # (monotonicity), so the branch ends.
                if pair_determined:
                    uncov = None
                    passes = (
                        total == 0
                        or pair_score(uncovered_pairs / total, total) <= epsilon
                    )
                else:
                    uncov = workspace.uncov_view(depth, n)
                    passes = self._passes_lazy(uncov, uncovered_pairs)
                if passes:
                    if self._is_minimal(s_elements, uncov, uncovered_pairs):
                        self._emit(
                            s_elements, uncov, workspace.uncov_bits_view(depth)
                        )
                    depth -= 1
                    continue

                # Line 4: choose an uncovered evidence that may still be
                # hit.  We additionally require a non-empty intersection
                # with the candidate list: an evidence without candidate
                # predicates can never be hit in this subtree, and because
                # every approximation function here is determined by the
                # uncovered-evidence multiset, skipping it loses no minimal
                # ADC (it simply stays uncovered).  The expansion kernel
                # answers the selection rule, the skip-branch candidate
                # planes, the reduced overlap counts and the WillCover pair
                # total in one fused pass.
                chosen, n_selectable, lost_pairs, n_to_try = workspace.expand(
                    depth, n, selection, statistics.recursive_calls
                )
                if n_selectable == 0:
                    depth -= 1
                    continue
                frame.n_to_try = n_to_try
                frame.phase = 1

                # Skip branch (lines 7-12): do NOT hit the chosen evidence,
                # guarded by the WillCover monotonicity prune.
                root_branch = frame.root_branch
                if root_branch is None or root_branch == "skip":
                    will_cover_pairs = frame.dead_pairs + lost_pairs
                    if pair_determined:
                        will_cover_passes = (
                            pair_score(will_cover_pairs / total, total) <= epsilon
                        )
                    else:
                        lost_positions = (
                            workspace.red_view(depth, n) == 0
                        ).nonzero()[0]
                        will_cover_passes = self._passes_lazy(
                            uncov.take(lost_positions), will_cover_pairs
                        )
                    if will_cover_passes:
                        statistics.skip_branches += 1
                        # Dead-evidence compaction (pair-determined only):
                        # an evidence with no candidate overlap can never be
                        # covered or selected anywhere in this subtree, so
                        # only its pair total still matters; dropping it
                        # shrinks every descendant's vectors and its pairs
                        # move into the dead_pairs scalar.
                        child_n = workspace.skip_child(depth, n, pair_determined)
                        child = self._frame_at(frames, depth + 1)
                        child.n = child_n
                        child.uncovered_pairs = uncovered_pairs
                        child.dead_pairs = (
                            will_cover_pairs if pair_determined else frame.dead_pairs
                        )
                        child.phase = 0
                        child.returning = False
                        child.root_branch = None
                        depth += 1
                        if depth > max_depth:
                            max_depth = depth
                        continue
                    statistics.pruned_by_willcover += 1
                continue

            # phase == 1: the skip subtree (if any) has returned; set up the
            # hit loop over the chosen evidence's candidate predicates.
            if frame.root_branch == "skip":
                depth -= 1
                continue
            if max_dc_size is not None and len(s_elements) >= max_dc_size:
                depth -= 1
                continue
            frame.k = workspace.hit_prepare(depth, frame.n, frame.n_to_try)
            frame.elements = workspace.elements_list(depth, frame.k)
            frame.position = 0
            frame.returning = False
            frame.phase = 2

        statistics.extra["max_stack_depth"] = float(max_depth)

    @staticmethod
    def _frame_at(frames: list[_Frame], depth: int) -> _Frame:
        if len(frames) <= depth:
            frames.append(_Frame())
        return frames[depth]

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _choose_evidence(
        self,
        selectable_positions: np.ndarray,
        cand_counts: np.ndarray,
        call_index: int,
    ) -> int:
        """The evidence-selection rule (Figure 4 line 4 / Figure 10).

        Single source of truth for the choice *and its tie-breaks*, shared
        by the :meth:`_search` hot loop and :meth:`root_plan` — if the two
        ever diverged, the distributed units would silently partition the
        tree on the wrong chosen evidence.
        """
        if self.selection == "random":
            return int(selectable_positions[call_index % selectable_positions.size])
        intersections = cand_counts.take(selectable_positions)
        if self.selection == "max":
            return int(selectable_positions[int(intersections.argmax())])
        return int(selectable_positions[int(intersections.argmin())])

    @staticmethod
    def _intersection_counts(ev_planes: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
        """Per-evidence ``|evidence ∩ mask|`` over transposed word planes.

        Unrolls the word axis into contiguous 1-D popcounts, which numpy
        executes far faster than a broadcast-and-reduce over the row-major
        layout (predicate spaces rarely span more than a handful of words).
        """
        n_words = ev_planes.shape[0]
        if n_words == 1:
            return popcount(ev_planes[0] & mask_words[0]).astype(np.int64)
        if n_words == 2:
            return np.add(
                popcount(ev_planes[0] & mask_words[0]),
                popcount(ev_planes[1] & mask_words[1]),
                dtype=np.int64,
            )
        counts = popcount(ev_planes[0] & mask_words[0]).astype(np.int64)
        for word in range(1, n_words):
            counts += popcount(ev_planes[word] & mask_words[word])
        return counts

    def _emit(
        self,
        s_elements: list[int],
        uncov: np.ndarray | None,
        uncov_bits: np.ndarray,
    ) -> None:
        """Build the DC from the hitting set and record it if nontrivial.

        In pair-determined mode the recursion does not thread the uncovered
        index array (see :meth:`iter_adcs`); it is rebuilt here — emission is
        rare — from the packed uncovered bitset, which still carries every
        uncovered evidence including the compacted dead ones.
        """
        s_mask = 0
        for element in s_elements:
            s_mask |= 1 << element
        if s_mask == 0 or s_mask in self._seen_outputs:
            return
        space = self.evidence.space
        complements = space.complement_indices
        dc_predicates = []
        for index in iter_bits(s_mask):
            complement = int(complements[index])
            if complement < 0:
                space.complement_index(index)  # raises the canonical KeyError
            dc_predicates.append(space[complement])
        constraint = DenialConstraint(dc_predicates)
        if constraint.is_trivial():
            return
        self._seen_outputs.add(s_mask)
        if uncov is None:
            uncov = unpack_bits(uncov_bits, self._n_evidences).nonzero()[0]
        score = self.function.violation_score(self.evidence, uncov)
        self.statistics.outputs += 1
        self._results.append(DiscoveredADC(constraint, s_mask, score))


def enumerate_adcs(
    evidence: EvidenceSet,
    function: ApproximationFunction | None = None,
    epsilon: float = 0.01,
    selection: SelectionStrategy = "max",
    max_dc_size: int | None = None,
) -> list[DiscoveredADC]:
    """Convenience wrapper running :class:`ADCEnum` once."""
    return ADCEnum(evidence, function, epsilon, selection, max_dc_size).enumerate()
