"""Unit and property tests of the observability layer (:mod:`repro.obs`).

The registry's correctness contract is concurrency-independent counting:
whatever interleaving executor threads, asyncio callbacks, and cluster
reader threads produce, every per-tenant counter must equal the serial
tally of its increments, and every histogram bucket must hold exactly the
observations at or below its bound (Prometheus ``le`` semantics).  Both
are hypothesis properties here.  The rest covers the enabled gate, the
Prometheus text renderer, trace spans (disjoint segments, ambient
propagation across a thread hop), and the structured JSON logger.
"""

from __future__ import annotations

import io
import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.logging import JsonLogger
from repro.obs.prometheus import render_text
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.spans import Span, bound, current, use


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_and_gauge_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge = registry.gauge("depth", "depth", ("store",))
        gauge.set_labels("a", value=7)
        gauge.labels("a").dec(3)
        assert gauge.value_labels("a") == 4.0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events")
        with pytest.raises(ValueError):
            counter.labels().inc(-1)

    def test_registration_is_idempotent_and_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", ("op",))
        assert registry.counter("x_total", "x", ("op",)) is first
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x", ("op",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", ("other",))

    def test_invalid_names_and_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name", "x")
        with pytest.raises(ValueError):
            registry.histogram("h", "x", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h", "x", buckets=(1.0, 1.0))

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("events_total", "events", ("op",))
        hist = registry.histogram("lat_seconds", "lat")
        gauge = registry.gauge("depth", "depth")
        counter.inc_labels("append")
        hist.observe(0.5)
        gauge.set(9)
        assert counter.value_labels("append") == 0.0
        assert hist.labels().count == 0
        assert gauge.value == 0.0
        registry.enabled = True
        counter.inc_labels("append")
        assert counter.value_labels("append") == 1.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", ("op",)).inc_labels("ping")
        registry.histogram("h_seconds", "h").observe(0.25)
        snap = registry.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["samples"][0] == {
            "labels": {"op": "ping"}, "value": 1.0,
        }
        hist_sample = snap["h_seconds"]["samples"][0]
        assert hist_sample["count"] == 1
        assert hist_sample["sum"] == 0.25
        assert hist_sample["buckets"][-1] == ["+Inf", 1]
        assert json.dumps(snap)  # JSON-serializable end to end


# ----------------------------------------------------------------------
# Property: concurrent per-tenant counting equals the serial tally
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["tenant-a", "tenant-b", "tenant-c"]),
            st.integers(min_value=1, max_value=100),
        ),
        max_size=200,
    ),
    n_threads=st.integers(min_value=1, max_value=6),
)
def test_concurrent_tenant_counters_match_serial_tally(ops, n_threads):
    registry = MetricsRegistry()
    counter = registry.counter("rows_total", "appended rows", ("store",))
    barrier = threading.Barrier(n_threads)

    def worker(shard):
        barrier.wait()  # maximize interleaving
        for tenant, amount in shard:
            counter.inc_labels(tenant, amount=amount)

    threads = [
        threading.Thread(target=worker, args=(ops[i::n_threads],))
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    expected: dict[str, int] = {}
    for tenant, amount in ops:
        expected[tenant] = expected.get(tenant, 0) + amount
    for tenant, total in expected.items():
        assert counter.value_labels(tenant) == total


# ----------------------------------------------------------------------
# Property: histogram buckets hold exactly the values <= their bound
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        max_size=60,
    )
)
def test_histogram_bucket_boundaries(values):
    bounds = (0.5, 1.0, 5.0, 25.0)
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", "lat", buckets=bounds)
    for value in values:
        hist.observe(value)
    snap = hist.labels().snapshot()
    for bound_value, cumulative in snap["buckets"][:-1]:
        assert cumulative == sum(1 for v in values if v <= bound_value)
    assert snap["buckets"][-1] == ["+Inf", len(values)]
    assert snap["count"] == len(values)
    assert snap["sum"] == pytest.approx(sum(values))


def test_histogram_boundary_value_is_inclusive():
    """An observation exactly on a bound lands in that bound's bucket."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", "lat", buckets=(0.5, 1.0, 5.0))
    hist.observe(1.0)
    snap = hist.labels().snapshot()
    assert dict((b, c) for b, c in snap["buckets"]) == {
        0.5: 0, 1.0: 1, 5.0: 1, "+Inf": 1,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusRender:
    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("repro_req_total", "Requests.", ("op",)).inc_labels(
            "append", amount=3
        )
        registry.gauge("repro_depth", "Depth.").set(2)
        hist = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_text(registry)
        lines = text.splitlines()
        assert "# TYPE repro_req_total counter" in lines
        assert 'repro_req_total{op="append"} 3' in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 2" in lines
        assert "# TYPE repro_lat_seconds histogram" in lines
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_lat_seconds_bucket{le="1"} 2' in lines
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_lat_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_err_total", "Errors.", ("msg",)).inc_labels(
            'quote " backslash \\ newline \n'
        )
        text = render_text(registry)
        assert (
            'repro_err_total{msg="quote \\" backslash \\\\ newline \\n"} 1'
            in text
        )

    def test_unfired_labeled_family_still_emits_headers(self):
        """A scrape sees the whole declared surface, fired or not."""
        registry = MetricsRegistry()
        registry.counter("repro_quiet_total", "Never incremented.", ("op",))
        text = render_text(registry)
        assert "# HELP repro_quiet_total Never incremented." in text
        assert "# TYPE repro_quiet_total counter" in text


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_segments_accumulate_and_clamp(self):
        span = Span("abc", op="append")
        span.add_segment("fold", 0.25)
        span.add_segment("fold", 0.25)
        span.add_segment("queue", -1.0)  # clock skew clamps to zero
        span.add_detail("cluster_submit", 0.1)
        assert span.segments == {"fold": 0.5, "queue": 0.0}
        assert span.accounted() == 0.5
        payload = span.jsonable()
        assert payload["trace_id"] == "abc"
        assert payload["detail"] == {"cluster_submit": 0.1}

    def test_ambient_stack_nests(self):
        outer, inner = Span("o", op="x"), Span("i", op="y")
        assert current() is None
        with use(outer):
            assert current() is outer
            with use(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None
        with use(None):  # no-op block
            assert current() is None

    def test_bound_crosses_thread_hop(self):
        span = Span("t", op="append")
        seen: list[Span | None] = []

        def work():
            seen.append(current())

        thread = threading.Thread(target=bound(span, work))
        thread.start()
        thread.join()
        assert seen == [span]
        assert bound(None, work) is work  # no wrapper when untraced

    def test_segment_context_manager_times(self):
        span = Span("t", op="append")
        with span.segment("fold"):
            pass
        assert "fold" in span.segments
        assert span.segments["fold"] >= 0.0


# ----------------------------------------------------------------------
# Structured JSON logging
# ----------------------------------------------------------------------
class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream, min_level="info", name="test")
        log.info("request", op="append", store="t1", code="ok", seconds=0.5)
        log.debug("suppressed", detail="below min level")
        log.warning("slow_op", segments={"fold": 0.4})
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "request"
        assert first["level"] == "info"
        assert first["logger"] == "test"
        assert first["op"] == "append" and first["code"] == "ok"
        second = json.loads(lines[1])
        assert second["segments"] == {"fold": 0.4}

    def test_unserializable_fields_fall_back_to_repr(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream, min_level="info")

        class Weird:
            def __repr__(self) -> str:
                return "<weird>"

        log.error("boom", payload=Weird())
        record = json.loads(stream.getvalue())
        assert record["payload"] == "<weird>"

    def test_numpy_scalars_serialize(self):
        np = pytest.importorskip("numpy")
        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        log.info("count", n=np.int64(7), rate=np.float64(0.5))
        record = json.loads(stream.getvalue())
        assert record["n"] == 7 and record["rate"] == 0.5

    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *_args: object) -> int:
                raise OSError("gone")

        log = JsonLogger(stream=Broken())
        log.info("fine")  # must not raise

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            JsonLogger(min_level="loud")
