"""Tests for the approximation functions (Section 5)."""

from __future__ import annotations

import pytest

from tests.conftest import make_random_relation
from repro.core.approximation import (
    F1,
    F1Adjusted,
    F2,
    F3Greedy,
    check_indifference_to_redundancy,
    check_monotonicity,
    get_approximation_function,
    pair_violation_fraction,
    verify_proposition_5_3,
)
from repro.core.dc import DenialConstraint
from repro.core.evidence_builder import build_evidence_set
from repro.core.operators import Operator
from repro.core.predicate_space import build_predicate_space
from repro.core.predicates import same_column_predicate


def _uncovered_for(evidence, constraint):
    space = evidence.space
    hitting = space.complement_mask(space.mask_of(constraint.predicates))
    return evidence.uncovered_indices(hitting)


@pytest.fixture(scope="module")
def phi1() -> DenialConstraint:
    return DenialConstraint([
        same_column_predicate("State", Operator.EQ),
        same_column_predicate("Income", Operator.GT),
        same_column_predicate("Tax", Operator.LE),
    ])


@pytest.fixture(scope="module")
def phi2() -> DenialConstraint:
    return DenialConstraint([
        same_column_predicate("Zip", Operator.EQ),
        same_column_predicate("State", Operator.NE),
    ])


class TestExample12Values:
    """The concrete numbers of Example 1.2 on the running example."""

    def test_f1_phi1(self, example_evidence, phi1):
        score = F1().violation_score(example_evidence, _uncovered_for(example_evidence, phi1))
        assert score == pytest.approx(2 / 210)

    def test_f1_phi2(self, example_evidence, phi2):
        score = F1().violation_score(example_evidence, _uncovered_for(example_evidence, phi2))
        assert score == pytest.approx(16 / 210)

    def test_f3_phi1_requires_two_removals(self, example_evidence, phi1):
        # One of t6/t7 and one of t14/t15 must be removed: 2 / 15 = 13.3%.
        score = F3Greedy().violation_score(example_evidence, _uncovered_for(example_evidence, phi1))
        assert score == pytest.approx(2 / 15)

    def test_f3_phi2_requires_one_removal(self, example_evidence, phi2):
        # Removing t15 alone satisfies the DC: 1 / 15 = 6.67%.
        score = F3Greedy().violation_score(example_evidence, _uncovered_for(example_evidence, phi2))
        assert score == pytest.approx(1 / 15)

    def test_example_1_2_conclusion(self, example_evidence, phi1, phi2):
        f1, f3 = F1(), F3Greedy()
        uncovered1 = _uncovered_for(example_evidence, phi1)
        uncovered2 = _uncovered_for(example_evidence, phi2)
        # epsilon = 5%: phi1 is an ADC under f1 but not under f3.
        assert f1.violation_score(example_evidence, uncovered1) <= 0.05
        assert f3.violation_score(example_evidence, uncovered1) > 0.05
        # epsilon = 7%: phi2 is an ADC under f3 but not under f1.
        assert f3.violation_score(example_evidence, uncovered2) <= 0.07
        assert f1.violation_score(example_evidence, uncovered2) > 0.07

    def test_f2_counts_problematic_tuples(self, example_evidence, phi2):
        score = F2().violation_score(example_evidence, _uncovered_for(example_evidence, phi2))
        assert score == pytest.approx(9 / 15)


class TestBasicProperties:
    def test_score_is_one_minus_violation(self, example_evidence, phi1):
        uncovered = _uncovered_for(example_evidence, phi1)
        for function in (F1(), F2(), F3Greedy()):
            assert function.score(example_evidence, uncovered) == pytest.approx(
                1.0 - function.violation_score(example_evidence, uncovered)
            )

    def test_valid_dc_has_zero_violation(self, example_evidence):
        constraint = DenialConstraint([same_column_predicate("Income", Operator.EQ),
                                       same_column_predicate("Income", Operator.NE)])
        # A trivial DC is satisfied by every pair -> violation 0 for all functions.
        uncovered = _uncovered_for(example_evidence, constraint)
        assert uncovered == []
        for function in (F1(), F2(), F3Greedy()):
            assert function.violation_score(example_evidence, uncovered) == 0.0

    def test_is_approximate_threshold(self, example_evidence, phi1):
        uncovered = _uncovered_for(example_evidence, phi1)
        assert F1().is_approximate(example_evidence, uncovered, epsilon=0.05)
        assert not F1().is_approximate(example_evidence, uncovered, epsilon=0.001)

    def test_lookup_by_name(self):
        assert isinstance(get_approximation_function("f1"), F1)
        assert isinstance(get_approximation_function("f3"), F3Greedy)
        with pytest.raises(KeyError):
            get_approximation_function("f9")

    def test_pair_fraction_shortcut_consistent(self, example_evidence, phi1):
        uncovered = _uncovered_for(example_evidence, phi1)
        fraction = pair_violation_fraction(example_evidence, uncovered)
        assert F1().violation_score_from_pair_fraction(
            fraction, example_evidence.total_pairs
        ) == pytest.approx(fraction)
        assert F2().violation_score_from_pair_fraction(fraction, example_evidence.total_pairs) is None

    def test_adjusted_function_is_more_conservative(self, example_evidence, phi1):
        uncovered = _uncovered_for(example_evidence, phi1)
        plain = F1().violation_score(example_evidence, uncovered)
        adjusted = F1Adjusted(confidence_z=1.645).violation_score(example_evidence, uncovered)
        assert adjusted >= plain

    def test_adjusted_function_rejects_negative_z(self):
        with pytest.raises(ValueError):
            F1Adjusted(confidence_z=-1.0)


class TestAxioms:
    """Monotonicity and indifference to redundancy (Definitions 4.1, 4.2)."""

    @pytest.mark.parametrize("function", [F1(), F2()])
    def test_monotonicity_on_running_example(self, example_evidence, function):
        assert check_monotonicity(function, example_evidence, trials=60, seed=1)

    @pytest.mark.parametrize("function", [F1(), F2(), F3Greedy()])
    def test_indifference_to_redundancy(self, example_evidence, function):
        assert check_indifference_to_redundancy(function, example_evidence, trials=60, seed=1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_monotonicity_on_random_relations(self, seed):
        relation = make_random_relation(n_rows=8, seed=seed)
        space = build_predicate_space(relation)
        evidence = build_evidence_set(relation, space, include_participation=True)
        for function in (F1(), F2()):
            assert check_monotonicity(function, evidence, trials=40, seed=seed)

    def test_proposition_5_3(self, example_evidence, example_space):
        dc_masks = [
            example_space.mask_of([same_column_predicate("Zip", Operator.EQ),
                                   same_column_predicate("State", Operator.NE)]),
            example_space.mask_of([same_column_predicate("Name", Operator.EQ)]),
        ]
        for epsilon in (0.01, 0.05, 0.1):
            assert verify_proposition_5_3(example_evidence, dc_masks, epsilon)
