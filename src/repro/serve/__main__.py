"""CLI entry point: ``python -m repro.serve --listen host:port``.

Boots a :class:`~repro.serve.server.ViolationServer`, prints the bound
address (one line on stdout, so wrappers can wait for readiness and parse
the OS-assigned port when ``:0`` is requested), and serves until SIGTERM
or SIGINT triggers the graceful drain: pending append flushes commit,
in-flight requests answer, connections close, then the process exits 0.

When `uvloop <https://uvloop.readthedocs.io>`_ is importable it replaces
the default event loop (``--no-uvloop`` opts out); the selected loop is
reported in the structured startup log on stderr.  The readiness banner on
stdout is a parse contract and stays a plain print either way.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.cluster.transport import parse_address
from repro.obs.logging import JsonLogger, get_logger, set_logger
from repro.serve.server import ViolationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve DC violation queries over evidence stores.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:7332", metavar="HOST:PORT",
        help="listen address (port 0 lets the OS pick; default %(default)s)",
    )
    parser.add_argument(
        "--flush-window", type=float, default=0.0, metavar="SECONDS",
        help="append-coalescing window per store (default %(default)s)",
    )
    parser.add_argument(
        "--max-pending-rows", type=int, default=100_000,
        help="append backpressure bound per store (default %(default)s)",
    )
    parser.add_argument(
        "--executor-threads", type=int, default=4,
        help="worker threads for blocking store work (default %(default)s)",
    )
    parser.add_argument(
        "--store-workers", type=int, default=1,
        help="process-pool width of each store's tile folds (default %(default)s)",
    )
    parser.add_argument(
        "--max-frame-mb", type=int, default=64,
        help="per-frame size bound in MiB (default %(default)s)",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durability root: journal every store under DIR/<name>/ and "
             "recover all journaled stores on boot (default: in-memory only)",
    )
    parser.add_argument(
        "--fsync", choices=("always", "commit", "never"), default="commit",
        help="WAL fsync policy for tenant journals (default %(default)s)",
    )
    parser.add_argument(
        "--snapshot-bytes", type=int, default=4 * 1024 * 1024,
        help="WAL size triggering snapshot compaction (default %(default)s)",
    )
    parser.add_argument(
        "--max-stores", type=int, default=None,
        help="cap on live tenant stores (default: unlimited)",
    )
    parser.add_argument(
        "--max-rows-per-store", type=int, default=None,
        help="per-tenant row quota (default: unlimited)",
    )
    parser.add_argument(
        "--dedup-window", type=int, default=1024,
        help="idempotency window per store, in keyed appends "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text exposition on this port "
             "(0 lets the OS pick; default: no metrics endpoint)",
    )
    parser.add_argument(
        "--slow-op-ms", type=float, default=1000.0, metavar="MS",
        help="log and count requests slower than this (default %(default)s)",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum structured-log level on stderr (default %(default)s)",
    )
    parser.add_argument(
        "--no-uvloop", action="store_true",
        help="stay on the default asyncio event loop even if uvloop "
             "is importable",
    )
    return parser


def _install_uvloop(disabled: bool) -> str:
    """Install uvloop's event-loop policy when available; name the loop used.

    uvloop is optional (never a hard dependency): the import is attempted
    and any failure silently keeps the stdlib loop.
    """
    if disabled:
        return "asyncio"
    try:
        import uvloop
    except Exception:  # noqa: BLE001 - absence or broken install both fine
        return "asyncio"
    uvloop.install()
    return "uvloop"


async def _amain(args: argparse.Namespace, loop_name: str) -> int:
    log = get_logger()
    host, port = parse_address(args.listen)
    server = ViolationServer(
        host, port,
        flush_window=args.flush_window,
        max_pending_rows=args.max_pending_rows,
        executor_threads=args.executor_threads,
        store_workers=args.store_workers,
        max_frame_bytes=args.max_frame_mb * 1024 * 1024,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every_bytes=args.snapshot_bytes,
        max_stores=args.max_stores,
        max_rows_per_store=args.max_rows_per_store,
        dedup_window=args.dedup_window,
        metrics_port=args.metrics_port,
        slow_op_seconds=args.slow_op_ms / 1000.0,
    )
    log.info("event_loop_selected", loop=loop_name)
    host, port = await server.start()
    # Parse contract: wrappers and benchmarks wait for this stdout line.
    print(f"repro-serve listening on {host}:{port}", flush=True)
    metrics_address = server.metrics_address
    if metrics_address is not None:
        print(
            f"repro-serve metrics on "
            f"{metrics_address[0]}:{metrics_address[1]}",
            flush=True,
        )

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.stop())
        )
    await server.serve_forever()
    log.info("server_stopped", host=host, port=port)
    print("repro-serve drained and stopped", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    set_logger(JsonLogger(min_level=args.log_level))
    loop_name = _install_uvloop(args.no_uvloop)
    try:
        return asyncio.run(_amain(args, loop_name))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":
    sys.exit(main())
