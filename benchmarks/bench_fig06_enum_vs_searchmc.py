"""Figure 6 — enumeration time of ADCEnum vs SearchMC (f1, epsilon = 0.1)."""

from conftest import report

from repro.experiments import figure6_enum_vs_searchmc


def test_figure6_adcenum_vs_searchmc(benchmark, config):
    rows = benchmark.pedantic(figure6_enum_vs_searchmc, args=(config,), iterations=1, rounds=1)
    report("Figure 6: ADCEnum vs SearchMC enumeration time (seconds)", rows)
    assert len(rows) == len(config.datasets)
    # Both enumerators must agree on the discovered constraints.
    assert all(row["adcenum_dcs"] == row["searchmc_dcs"] for row in rows)
