"""Tests for the packed uint64 bitset primitives of the word-native core."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitset import (
    BIT_TABLE,
    CriticalityPlanes,
    bits_to_indices,
    full_bits,
    indices_to_bits,
    n_words_for_bits,
    pack_bool_rows,
    popcount,
    set_bit,
    unpack_bits,
    word_bits_list,
)


class TestPrimitives:
    def test_n_words_for_bits(self):
        assert n_words_for_bits(0) == 1
        assert n_words_for_bits(1) == 1
        assert n_words_for_bits(64) == 1
        assert n_words_for_bits(65) == 2
        assert n_words_for_bits(128) == 2
        assert n_words_for_bits(129) == 3

    def test_bit_table(self):
        assert BIT_TABLE.dtype == np.uint64
        assert [int(v) for v in BIT_TABLE] == [1 << b for b in range(64)]

    @pytest.mark.parametrize("n_bits", [0, 1, 7, 63, 64, 65, 130])
    def test_pack_unpack_roundtrip(self, n_bits):
        rng = np.random.default_rng(n_bits)
        matrix = rng.random((5, n_bits)) > 0.5
        packed = pack_bool_rows(matrix)
        assert packed.dtype == np.uint64
        assert packed.shape == (5, n_words_for_bits(n_bits))
        assert np.array_equal(unpack_bits(packed, n_bits), matrix)

    def test_pack_requires_2d(self):
        with pytest.raises(ValueError):
            pack_bool_rows(np.zeros(4, dtype=bool))

    def test_pack_bit_layout_matches_word_convention(self):
        # Bit b lives at word b // 64, bit b % 64.
        matrix = np.zeros((1, 130), dtype=bool)
        matrix[0, [0, 63, 64, 129]] = True
        packed = pack_bool_rows(matrix)
        assert int(packed[0, 0]) == (1 << 0) | (1 << 63)
        assert int(packed[0, 1]) == 1 << 0
        assert int(packed[0, 2]) == 1 << 1

    @pytest.mark.parametrize("n_bits", [1, 64, 65, 129])
    def test_indices_bits_roundtrip(self, n_bits):
        rng = np.random.default_rng(n_bits)
        indices = np.unique(rng.integers(0, n_bits, size=min(10, n_bits)))
        row = indices_to_bits(indices, n_bits)
        assert np.array_equal(bits_to_indices(row, n_bits), indices)
        assert word_bits_list(row) == indices.tolist()

    def test_indices_to_bits_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            indices_to_bits([64], 64)
        with pytest.raises(ValueError):
            indices_to_bits([-1], 64)

    @pytest.mark.parametrize("n_bits", [0, 1, 63, 64, 65, 128, 200])
    def test_full_bits(self, n_bits):
        row = full_bits(n_bits)
        assert np.array_equal(bits_to_indices(row, max(n_bits, 1)),
                              np.arange(n_bits))
        # No tail bits beyond n_bits may be set.
        assert np.array_equal(unpack_bits(row, row.size * 64)[n_bits:],
                              np.zeros(row.size * 64 - n_bits, dtype=bool))

    def test_set_bit(self):
        row = np.zeros(2, dtype=np.uint64)
        set_bit(row, 3)
        set_bit(row, 64)
        assert int(row[0]) == 8 and int(row[1]) == 1

    def test_popcount_matches_python(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2 ** 63, size=(4, 3)).astype(np.uint64)
        expected = np.vectorize(lambda w: bin(int(w)).count("1"))(words)
        assert np.array_equal(popcount(words).astype(np.int64), expected)

    def test_word_bits_list_empty(self):
        assert word_bits_list(np.zeros(2, dtype=np.uint64)) == []


class TestCriticalityPlanes:
    def test_apply_reports_viability(self):
        planes = CriticalityPlanes(n_bits=8, capacity=4)
        viable, token0 = planes.apply(indices_to_bits([0, 1], 8), indices_to_bits([0, 1], 8))
        assert viable  # first element: nothing to invalidate
        # Second element covers everything the first was critical for.
        viable, token1 = planes.apply(indices_to_bits([2], 8), indices_to_bits([0, 1, 2], 8))
        assert not viable
        planes.undo(token1)
        assert bits_to_indices(planes.row(0), 8).tolist() == [0, 1]
        planes.undo(token0)
        assert planes.depth == 0

    def test_partial_overlap_stays_viable(self):
        planes = CriticalityPlanes(n_bits=8, capacity=4)
        planes.apply(indices_to_bits([0, 1], 8), indices_to_bits([0, 1], 8))
        viable, _ = planes.apply(indices_to_bits([2], 8), indices_to_bits([1, 2], 8))
        assert viable
        assert bits_to_indices(planes.row(0), 8).tolist() == [0]

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_apply_undo_roundtrip_matches_set_model(self, data):
        """Packed criticality bookkeeping is exactly the dict-of-sets model.

        A random interleaving of pushes and pops is mirrored against a naive
        ``list[set[int]]`` model; after every operation the planes must hold
        the same sets, and a final unwind must restore the empty state —
        the round-trip property the enumerators rely on when backtracking.
        """
        n_bits = data.draw(st.integers(min_value=1, max_value=100))
        planes = CriticalityPlanes(n_bits=n_bits, capacity=12)
        model: list[set[int]] = []
        undo_stack: list[tuple[object, list[set[int]]]] = []
        subset = st.sets(st.integers(min_value=0, max_value=n_bits - 1), max_size=n_bits)
        for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
            if model and data.draw(st.booleans()):
                token, model = undo_stack.pop()
                planes.undo(token)
            elif len(model) < 10:
                covers = data.draw(subset)
                new = data.draw(subset)
                viable, token = planes.apply(
                    indices_to_bits(sorted(new), n_bits),
                    indices_to_bits(sorted(covers), n_bits),
                )
                undo_stack.append((token, model))
                expected_members = [member - covers for member in model]
                assert viable == all(expected_members)
                model = expected_members + [new]
            # Invariant: planes rows == model sets, bit for bit.
            assert planes.depth == len(model)
            for depth, expected in enumerate(model):
                assert set(bits_to_indices(planes.row(depth), n_bits).tolist()) == expected
        while undo_stack:
            token, model = undo_stack.pop()
            planes.undo(token)
            assert planes.depth == len(model)
            for depth, expected in enumerate(model):
                assert set(bits_to_indices(planes.row(depth), n_bits).tolist()) == expected
        assert planes.depth == 0
        assert planes.snapshot().shape == (0, planes.n_words)
