"""Shared-memory word planes for same-machine workers.

A local worker that computed a :class:`~repro.engine.partial.PartialEvidenceSet`
normally pickles the whole thing — word rows, multiplicity chunks,
participation histograms — back through its pipe or socket.  On wide
predicate spaces those arrays dominate the result frame.  This module packs
them into one :class:`multiprocessing.shared_memory.SharedMemory` block
instead, so the frame carries only a tiny :class:`ShmPartial` handle (the
segment name plus the array layout) and the coordinator reattaches the
planes directly — the ROADMAP's shared-memory follow-up.

Ownership is transferred with the handle: the worker unregisters the
segment from its own process's resource tracker right after creating it
(otherwise the tracker would tear the segment down — or warn about a leak —
when the worker exits before the coordinator has read it), and
:func:`partial_from_shm` unlinks after copying out.  The coordinator calls
:func:`resolve_result` on *every* incoming result, including late
duplicates of re-issued tasks, so no segment outlives its one read.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.engine.partial import PartialEvidenceSet

#: ``(field, shape, offset)`` triples describing one packed segment; every
#: array is int64/uint64 so the dtype is implied by the field name.
Layout = tuple[tuple[str, tuple[int, ...], int], ...]


@dataclass(frozen=True)
class ShmPartial:
    """Picklable handle to a partial evidence set parked in shared memory."""

    shm_name: str
    n_rows: int
    n_words: int
    include_participation: bool
    chunk_lengths: tuple[int, ...]
    part_chunk_lengths: tuple[int, ...]
    layout: Layout


def _flatten(partial: PartialEvidenceSet) -> dict[str, np.ndarray]:
    """The partial's state as flat arrays (chunk boundaries kept aside)."""
    words = (
        np.vstack(partial._rows)
        if partial._rows
        else np.zeros((0, partial.n_words), dtype=np.uint64)
    )
    empty = np.zeros(0, dtype=np.int64)
    return {
        "words": words,
        "ids": np.concatenate(partial._id_chunks) if partial._id_chunks else empty,
        "counts": np.concatenate(partial._count_chunks) if partial._count_chunks else empty,
        "part_keys": (
            np.concatenate(partial._part_key_chunks) if partial._part_key_chunks else empty
        ),
        "part_counts": (
            np.concatenate(partial._part_count_chunks) if partial._part_count_chunks else empty
        ),
    }


def _unregister_from_tracker(name: str) -> None:
    """Detach a created segment from this process's resource tracker.

    Ownership moves to the coordinator with the handle; without this, the
    creating process's tracker unlinks the segment (or warns) at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def partial_to_shm(partial: PartialEvidenceSet) -> ShmPartial:
    """Pack a partial's arrays into one shared-memory segment."""
    arrays = _flatten(partial)
    layout: list[tuple[str, tuple[int, ...], int]] = []
    offset = 0
    for field, array in arrays.items():
        layout.append((field, array.shape, offset))
        offset += array.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for (field, _, start), array in zip(layout, arrays.values()):
            if array.nbytes:
                segment.buf[start : start + array.nbytes] = array.tobytes()
        handle = ShmPartial(
            shm_name=segment.name,
            n_rows=partial.n_rows,
            n_words=partial.n_words,
            include_participation=partial.include_participation,
            chunk_lengths=tuple(len(chunk) for chunk in partial._id_chunks),
            part_chunk_lengths=tuple(len(chunk) for chunk in partial._part_key_chunks),
            layout=tuple(layout),
        )
    finally:
        segment.close()
    _unregister_from_tracker(handle.shm_name)
    return handle


def _split(flat: np.ndarray, lengths: tuple[int, ...]) -> list[np.ndarray]:
    chunks: list[np.ndarray] = []
    start = 0
    for length in lengths:
        chunks.append(flat[start : start + length])
        start += length
    return chunks


def partial_from_shm(handle: ShmPartial, unlink: bool = True) -> PartialEvidenceSet:
    """Rebuild the partial from its segment (copied out; segment unlinked)."""
    segment = shared_memory.SharedMemory(name=handle.shm_name)
    try:
        arrays: dict[str, np.ndarray] = {}
        for field, shape, offset in handle.layout:
            dtype = np.uint64 if field == "words" else np.int64
            count = int(np.prod(shape, dtype=np.int64)) if shape else 0
            arrays[field] = (
                np.frombuffer(segment.buf, dtype=dtype, count=count, offset=offset)
                .reshape(shape)
                .copy()
            )
    finally:
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    partial = PartialEvidenceSet(
        handle.n_rows, handle.n_words, handle.include_participation
    )
    partial._rows = [row.copy() for row in arrays["words"]]
    partial._ids = {row.tobytes(): index for index, row in enumerate(partial._rows)}
    partial._id_chunks = _split(arrays["ids"], handle.chunk_lengths)
    partial._count_chunks = _split(arrays["counts"], handle.chunk_lengths)
    partial._part_key_chunks = _split(arrays["part_keys"], handle.part_chunk_lengths)
    partial._part_count_chunks = _split(arrays["part_counts"], handle.part_chunk_lengths)
    return partial


def export_result(result: object, use_shm: bool) -> object:
    """Worker-side hook: park partial results in shared memory when asked."""
    if use_shm and isinstance(result, PartialEvidenceSet):
        return partial_to_shm(result)
    return result


def resolve_result(result: object) -> object:
    """Coordinator-side hook: reattach (and unlink) shared-memory results."""
    if isinstance(result, ShmPartial):
        return partial_from_shm(result)
    return result


def discard_result(result: object) -> None:
    """Release a result that will never reach the coordinator.

    A worker whose link died after exporting to shared memory owns a
    segment nobody will ever attach to; unlinking it here is the only
    thing standing between a coordinator crash and a leaked segment.
    """
    if isinstance(result, ShmPartial):
        try:
            segment = shared_memory.SharedMemory(name=result.shm_name)
        except FileNotFoundError:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
