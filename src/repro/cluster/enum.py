"""Distributed ADC enumeration: root subtrees as cluster work units.

A first cut of parallel search over the same shard machinery the evidence
tiles use.  The root node of :class:`~repro.core.adc_enum.ADCEnum` branches
into one *skip* subtree plus one *hit* subtree per candidate predicate of
the chosen evidence; each subtree is self-contained — the criticality
planes start empty at the root, and the only cross-subtree coupling
(candidate re-additions of earlier hit siblings) is replayed exactly by the
``root_branch`` restriction.  So every subtree ships to a worker as a task
against one :class:`EnumContext` (the pickled evidence set plus the search
knobs), and the merge is a pure replay of the serial bookkeeping:

* concatenation in root order (skip first, then hit elements in visit
  order) reproduces the serial emission order, because the serial search
  exhausts each top-level subtree before entering the next;
* first-occurrence deduplication by hitting-set mask reproduces the serial
  ``seen_outputs`` suppression — a duplicate's constraint and score are
  pure functions of the mask, so whichever copy survives is byte-identical.

Hence :func:`parallel_enumerate` returns **exactly** the DC list of a
serial run (asserted in ``tests/test_cluster_enum.py``).  The ``"random"``
selection strategy is the one exception — it keys off the global node
counter, which subtree-local searches cannot see — and falls back to a
serial run, as do trivially small root plans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.local import resolve_coordinator
from repro.core.adc_enum import ADCEnum, EnumerationStatistics

if TYPE_CHECKING:
    from repro.core.adc_enum import DiscoveredADC, SelectionStrategy
    from repro.core.approximation import ApproximationFunction
    from repro.core.evidence import EvidenceSet

#: Statistics counters summed across unit searches (the root node's work is
#: repeated per unit, so sums slightly over-count a serial run's numbers).
_SUMMED_COUNTERS = (
    "recursive_calls",
    "hit_branches",
    "skip_branches",
    "pruned_by_willcover",
    "pruned_by_criticality",
    "minimality_checks",
)


@dataclass
class EnumContext:
    """Shipped-once enumeration payload; tasks are root-branch specs."""

    evidence: "EvidenceSet"
    function: "ApproximationFunction"
    epsilon: float
    selection: "SelectionStrategy"
    max_dc_size: int | None

    def __post_init__(self) -> None:
        self._enumerator: ADCEnum | None = None

    def __getstate__(self) -> dict:
        # The cached enumerator (with its prepared word planes) is
        # worker-local state, never shipped over the wire.
        state = dict(self.__dict__)
        state["_enumerator"] = None
        return state

    def run(
        self, branch: int | str
    ) -> tuple[list["DiscoveredADC"], EnumerationStatistics]:
        # One enumerator per worker: _prepare_planes (plane transpose,
        # membership packing) runs once, then every root-branch task of
        # this context reuses the planes — enumerate() resets all search
        # state, so runs are independent.
        enumerator = self._enumerator
        if enumerator is None:
            enumerator = self._enumerator = ADCEnum(
                self.evidence,
                self.function,
                self.epsilon,
                selection=self.selection,
                max_dc_size=self.max_dc_size,
            )
        enumerator.root_branch = branch if branch == "skip" else int(branch)
        return enumerator.enumerate(), enumerator.statistics


def parallel_enumerate(
    evidence: "EvidenceSet",
    function: "ApproximationFunction | None",
    epsilon: float,
    cluster: object,
    selection: "SelectionStrategy" = "max",
    max_dc_size: int | None = None,
) -> tuple[list["DiscoveredADC"], EnumerationStatistics]:
    """Enumerate minimal ADCs with root subtrees farmed over a cluster.

    Drop-in for :func:`repro.core.miner.run_enumeration`: same arguments
    plus the cluster, same ``(adcs, statistics)`` return, and the exact
    ADC list of a serial run.  Falls back to searching serially when the
    root does not branch (then there is nothing to distribute) or under
    the ``"random"`` selection strategy (see the module docstring).
    """
    started = time.perf_counter()
    probe = ADCEnum(
        evidence, function, epsilon, selection=selection, max_dc_size=max_dc_size
    )
    kind, elements = probe.root_plan()
    if selection == "random" or kind == "leaf" or not elements:
        return probe.enumerate(), probe.statistics

    units: list[int | str] = ["skip", *elements]
    context = EnumContext(
        evidence=evidence,
        function=probe.function,
        epsilon=float(epsilon),
        selection=selection,
        max_dc_size=max_dc_size,
    )
    outcomes = resolve_coordinator(cluster).submit(context, list(units))

    statistics = EnumerationStatistics()
    seen: set[int] = set()
    merged: list["DiscoveredADC"] = []
    for unit_adcs, unit_statistics in outcomes:
        for counter in _SUMMED_COUNTERS:
            setattr(
                statistics,
                counter,
                getattr(statistics, counter) + getattr(unit_statistics, counter),
            )
        for adc in unit_adcs:
            if adc.hitting_set_mask not in seen:
                seen.add(adc.hitting_set_mask)
                merged.append(adc)
    statistics.outputs = len(merged)
    statistics.extra["enum_units"] = float(len(units))
    statistics.elapsed_seconds = time.perf_counter() - started
    return merged, statistics
