"""Mining ADCs from a sample (Section 7).

The evidence set is quadratic in the number of tuples, so the paper mines
ADCs from a uniform tuple sample and provides probabilistic guarantees for
the pair-based function f1:

* the sample violation fraction ``p_hat`` is an unbiased estimator of the
  database violation fraction ``p`` (Section 7.1);
* Chebyshev and normal-approximation error bounds on ``p_hat``;
* the sample threshold ``epsilon_J`` (equivalently, the adjusted function
  ``f1'``) such that accepting a DC on the sample w.r.t. ``epsilon_J``
  guarantees, with probability at least ``1 - alpha``, that the DC is an ADC
  of the full database w.r.t. the desired threshold ``epsilon``
  (Inequality 2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from scipy import stats

from repro.core.approximation import F1Adjusted
from repro.data.relation import Relation


@dataclass(frozen=True)
class SamplePlan:
    """A drawn sample together with the parameters used to draw it."""

    sample: Relation
    fraction: float
    seed: int | None
    population_rows: int

    @property
    def sample_rows(self) -> int:
        """Number of tuples in the sample."""
        return self.sample.n_rows

    @property
    def sample_pairs(self) -> int:
        """Number of ordered distinct tuple pairs in the sample (the ``n`` of §7)."""
        return self.sample_rows * (self.sample_rows - 1)


def draw_sample(relation: Relation, fraction: float, seed: int | None = None) -> SamplePlan:
    """Uniformly sample a fraction of the tuples (the Sample step of Figure 1)."""
    sample = relation.sample(fraction, seed)
    return SamplePlan(sample, fraction, seed, relation.n_rows)


# ----------------------------------------------------------------------
# Estimating the violation fraction (Section 7.1)
# ----------------------------------------------------------------------
def estimate_violation_fraction(violating_pairs: int, sample_rows: int) -> float:
    """The estimator ``p_hat`` = violating pairs / ordered pairs of the sample."""
    if sample_rows < 2:
        return 0.0
    return violating_pairs / (sample_rows * (sample_rows - 1))


def chebyshev_error_bound(p_hat: float, sample_rows: int, deviation: float) -> float:
    """Upper bound on ``Pr(|p_hat - p| > deviation)`` via Chebyshev's inequality.

    Uses the variance upper bound derived in Section 7.1 without any
    independence assumption on the violations:

    ``var(p_hat) <= p * ((C + C(C-1)/2) / C^2 - p)`` with ``C = C(|V_J|, 2)``.

    ``p`` is unknown, so the bound is evaluated at ``p = p_hat`` (the paper
    uses it the same way, as a guide rather than a certified bound).
    """
    if deviation <= 0:
        raise ValueError("deviation must be positive")
    if sample_rows < 2:
        return 1.0
    pair_combinations = sample_rows * (sample_rows - 1) / 2.0
    second_moment_factor = (
        pair_combinations + pair_combinations * (pair_combinations - 1) / 2.0
    ) / pair_combinations**2
    variance_bound = max(0.0, p_hat * (second_moment_factor - p_hat))
    return min(1.0, variance_bound / deviation**2)


def normal_confidence_interval(
    p_hat: float, sample_pairs: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Two-sided normal-approximation confidence interval for ``p`` (Inequality 1).

    ``confidence`` is ``1 - 2 alpha`` in the paper's notation.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie strictly between 0 and 1")
    if sample_pairs <= 0:
        return (0.0, 1.0)
    z = z_value(confidence)
    margin = z * math.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / sample_pairs)
    return (max(0.0, p_hat - margin), min(1.0, p_hat + margin))


def z_value(confidence: float) -> float:
    """The ``z_{1-2alpha}`` quantile of the standard normal distribution."""
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


# ----------------------------------------------------------------------
# Computing the sample threshold (Section 7.2)
# ----------------------------------------------------------------------
def sample_threshold(
    epsilon: float,
    p_hat: float,
    sample_pairs: int,
    alpha: float = 0.05,
) -> float:
    """The DC-specific sample threshold ``epsilon_J^phi`` of Section 7.2.

    A DC with sample violation fraction ``p_hat`` is accepted on the sample
    when ``1 - p_hat >= 1 - epsilon_J``; with probability at least
    ``1 - alpha`` it is then an ADC of the database w.r.t. ``epsilon``.
    """
    if sample_pairs <= 0:
        return epsilon
    z = z_value(1.0 - 2.0 * alpha)
    margin = z * math.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / sample_pairs)
    return epsilon - margin


def accept_on_sample(
    epsilon: float,
    p_hat: float,
    sample_pairs: int,
    alpha: float = 0.05,
) -> bool:
    """Acceptance criterion of Inequality 2.

    Equivalent to ``p_hat <= sample_threshold(epsilon, p_hat, sample_pairs, alpha)``.
    """
    z = z_value(1.0 - 2.0 * alpha)
    margin = z * math.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / max(sample_pairs, 1))
    return (1.0 - p_hat) >= margin + (1.0 - epsilon)


def adjusted_function(sample_pairs: int, alpha: float = 0.05) -> F1Adjusted:
    """The adjusted approximation function ``f1'`` of Section 7.2.

    Using ``f1'`` with the original threshold ``epsilon`` on the sample is
    equivalent to using per-DC sample thresholds; the function form is more
    convenient inside the enumerator.  ``sample_pairs`` is accepted only for
    interface symmetry — the margin is recomputed from the evidence set the
    function is evaluated on.
    """
    del sample_pairs  # the margin uses the evidence set's own pair count
    return F1Adjusted(confidence_z=z_value(1.0 - 2.0 * alpha))


def required_sample_rows(epsilon_margin: float, alpha: float = 0.05, p_hat: float = 0.5) -> int:
    """Smallest sample size whose normal-approximation margin is below a target.

    Solves ``z * sqrt(p_hat (1 - p_hat) / (n (n-1))) <= epsilon_margin`` for
    ``n``; useful to pick a sample size before mining.
    """
    if epsilon_margin <= 0:
        raise ValueError("epsilon_margin must be positive")
    z = z_value(1.0 - 2.0 * alpha)
    target_pairs = (z / epsilon_margin) ** 2 * p_hat * (1.0 - p_hat)
    rows = int(math.ceil((1.0 + math.sqrt(1.0 + 4.0 * target_pairs)) / 2.0))
    return max(rows, 2)


# ----------------------------------------------------------------------
# Random-polluter simulation (the model behind the binomial analysis)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RandomPolluterGraph:
    """A random conflict graph where each directed edge appears w.p. ``p``."""

    n_vertices: int
    edge_probability: float
    edges: frozenset[tuple[int, int]]

    @property
    def violation_fraction(self) -> float:
        """Fraction of ordered vertex pairs that are edges."""
        total = self.n_vertices * (self.n_vertices - 1)
        return len(self.edges) / total if total else 0.0


def simulate_random_polluter(
    n_vertices: int, edge_probability: float, seed: int | None = None
) -> RandomPolluterGraph:
    """Draw a conflict graph from the random-polluter model of Section 7.1."""
    if not 0 <= edge_probability <= 1:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    edges = {
        (i, j)
        for i in range(n_vertices)
        for j in range(n_vertices)
        if i != j and rng.random() < edge_probability
    }
    return RandomPolluterGraph(n_vertices, edge_probability, frozenset(edges))


def sample_edge_fraction(
    graph: RandomPolluterGraph, sample_vertices: list[int]
) -> float:
    """The estimator ``p_hat`` computed on an induced vertex sample."""
    chosen = set(sample_vertices)
    if len(chosen) < 2:
        return 0.0
    sampled_edges = sum(
        1 for (u, v) in graph.edges if u in chosen and v in chosen
    )
    return sampled_edges / (len(chosen) * (len(chosen) - 1))
