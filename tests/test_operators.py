"""Tests for the operator algebra."""

from __future__ import annotations

import itertools

import pytest

from repro.core.operators import (
    NUMERIC_OPERATORS,
    STRING_OPERATORS,
    SATISFIED_BY_CATEGORY,
    Operator,
    OrderCategory,
    category_of,
    operators_satisfiable_together,
)


class TestComplement:
    @pytest.mark.parametrize("op", list(Operator))
    def test_complement_is_involution(self, op):
        assert op.complement.complement is op

    @pytest.mark.parametrize("op", list(Operator))
    @pytest.mark.parametrize("left,right", [(1, 2), (2, 2), (3, 2)])
    def test_complement_negates_truth_value(self, op, left, right):
        assert op.evaluate(left, right) == (not op.complement.evaluate(left, right))

    def test_specific_complements(self):
        assert Operator.EQ.complement is Operator.NE
        assert Operator.LT.complement is Operator.GE
        assert Operator.GT.complement is Operator.LE


class TestInverse:
    @pytest.mark.parametrize("op", list(Operator))
    @pytest.mark.parametrize("left,right", [(1, 2), (2, 2), (3, 2)])
    def test_inverse_swaps_operands(self, op, left, right):
        assert op.evaluate(left, right) == op.inverse.evaluate(right, left)


class TestImplication:
    def test_strict_implies_non_strict(self):
        assert Operator.LT.implies(Operator.LE)
        assert Operator.GT.implies(Operator.GE)

    def test_strict_implies_inequality(self):
        assert Operator.LT.implies(Operator.NE)
        assert Operator.GT.implies(Operator.NE)

    def test_equality_implies_both_bounds(self):
        assert Operator.EQ.implies(Operator.LE)
        assert Operator.EQ.implies(Operator.GE)

    def test_non_implications(self):
        assert not Operator.LE.implies(Operator.LT)
        assert not Operator.NE.implies(Operator.LT)

    @pytest.mark.parametrize("strong,weak", itertools.permutations(list(Operator), 2))
    def test_implication_is_semantically_sound(self, strong, weak):
        if not strong.implies(weak):
            pytest.skip("no implication claimed")
        for left, right in [(1, 2), (2, 2), (3, 2)]:
            if strong.evaluate(left, right):
                assert weak.evaluate(left, right)


class TestCategories:
    def test_category_of_values(self):
        assert category_of(1, 2) is OrderCategory.LESS
        assert category_of(2, 2) is OrderCategory.EQUAL
        assert category_of(3, 2) is OrderCategory.GREATER

    def test_category_of_strings(self):
        assert category_of("a", "a") is OrderCategory.EQUAL
        assert category_of("a", "b") is not OrderCategory.EQUAL

    @pytest.mark.parametrize("category", list(OrderCategory))
    @pytest.mark.parametrize("op", NUMERIC_OPERATORS)
    def test_satisfied_by_category_matches_evaluation(self, category, op):
        witnesses = {
            OrderCategory.LESS: (1, 2),
            OrderCategory.EQUAL: (2, 2),
            OrderCategory.GREATER: (3, 2),
        }
        left, right = witnesses[category]
        assert (op in SATISFIED_BY_CATEGORY[category]) == op.evaluate(left, right)


class TestSatisfiability:
    def test_contradictory_operators(self):
        assert not operators_satisfiable_together({Operator.LT, Operator.GT})
        assert not operators_satisfiable_together({Operator.EQ, Operator.NE})
        assert not operators_satisfiable_together({Operator.LT, Operator.GE})

    def test_compatible_operators(self):
        assert operators_satisfiable_together({Operator.LT, Operator.LE, Operator.NE})
        assert operators_satisfiable_together({Operator.EQ, Operator.LE, Operator.GE})
        assert operators_satisfiable_together(set())

    def test_le_and_ge_satisfiable_by_equality(self):
        assert operators_satisfiable_together({Operator.LE, Operator.GE})


class TestOperatorSets:
    def test_numeric_operators_complete(self):
        assert set(NUMERIC_OPERATORS) == set(Operator)

    def test_string_operators_equality_only(self):
        assert set(STRING_OPERATORS) == {Operator.EQ, Operator.NE}
