"""Packed uint64 bitset primitives of the word-native enumeration core.

The evidence pipeline already stores evidences as packed ``(n, n_words)``
uint64 word planes (:mod:`repro.core.evidence`).  This module provides the
matching *set* primitives the enumerators need so that candidate sets,
hitting sets, uncovered sets and per-element criticality can all live in
preallocated uint64 planes mutated in place — the DCFinder-style bit-level
engineering (Pena et al.) that keeps the per-node budget of the search
recursion free of Python-int bitmask churn.

Bit layout matches the evidence words everywhere: bit ``b`` of a bitset
lives at word ``b // 64``, bit ``b % 64`` (word 0 least significant).

``popcount`` is :func:`numpy.bitwise_count` — numpy >= 2.0 is the declared
dependency floor, so there is exactly one popcount path.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_WORD_BITS = 64

#: BIT_TABLE[b] is the uint64 with only bit ``b`` set (b in 0..63); indexing
#: this table is cheaper than constructing ``np.uint64(1 << b)`` per lookup.
BIT_TABLE = np.uint64(1) << np.arange(64, dtype=np.uint64)


def n_words_for_bits(n_bits: int) -> int:
    """Number of uint64 words needed to hold ``n_bits`` bits (at least 1)."""
    return max(1, (int(n_bits) + _WORD_BITS - 1) // _WORD_BITS)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element number of set bits of a uint64 array."""
    return np.bitwise_count(words)


def pack_bool_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n_rows, n_bits)`` matrix into uint64 word rows.

    Returns an ``(n_rows, n_words_for_bits(n_bits))`` uint64 array with bit
    ``b`` of row ``r`` set iff ``matrix[r, b]``.
    """
    rows = np.ascontiguousarray(matrix, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D boolean matrix; got shape {rows.shape}")
    n_rows, n_bits = rows.shape
    padded_bits = n_words_for_bits(n_bits) * _WORD_BITS
    if n_bits < padded_bits:
        rows = np.concatenate(
            [rows, np.zeros((n_rows, padded_bits - n_bits), dtype=bool)], axis=1
        )
    packed_bytes = np.packbits(rows, axis=1, bitorder="little")
    # Reinterpreting little-endian bytes as "<u8" keeps bit b of the value at
    # position b regardless of the platform's native byte order; astype then
    # normalises to the native uint64 dtype without copying on little-endian.
    return np.ascontiguousarray(packed_bytes).view("<u8").astype(np.uint64, copy=False)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Boolean view of packed words; inverse of :func:`pack_bool_rows`.

    Accepts a single ``(n_words,)`` row or an ``(n_rows, n_words)`` plane and
    returns the matching boolean array truncated to ``n_bits`` positions.
    """
    contiguous = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = np.ascontiguousarray(contiguous.astype("<u8", copy=False)).view(np.uint8)
    as_bytes = as_bytes.reshape(contiguous.shape[:-1] + (contiguous.shape[-1] * 8,))
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :n_bits].astype(bool)


def bits_to_indices(row: np.ndarray, n_bits: int) -> np.ndarray:
    """Ascending positions of the set bits of one packed row."""
    return unpack_bits(row, n_bits).nonzero()[0]


def indices_to_bits(indices: Iterable[int] | np.ndarray, n_bits: int) -> np.ndarray:
    """Packed row with exactly the given bit positions set."""
    row = np.zeros(n_words_for_bits(n_bits), dtype=np.uint64)
    positions = np.asarray(
        indices if isinstance(indices, np.ndarray) else list(indices), dtype=np.int64
    )
    if positions.size:
        if positions.min() < 0 or positions.max() >= max(int(n_bits), 1):
            raise ValueError("bit positions out of range")
        np.bitwise_or.at(
            row,
            positions >> 6,
            np.uint64(1) << (positions & 63).astype(np.uint64),
        )
    return row


def full_bits(n_bits: int) -> np.ndarray:
    """Packed row with the first ``n_bits`` bits set (tail bits clear)."""
    row = np.zeros(n_words_for_bits(n_bits), dtype=np.uint64)
    full_words, remainder = divmod(int(n_bits), _WORD_BITS)
    row[:full_words] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if remainder:
        row[full_words] = np.uint64((1 << remainder) - 1)
    return row


def set_bit(row: np.ndarray, position: int) -> None:
    """Set one bit of a packed row in place."""
    row[position >> 6] |= BIT_TABLE[position & 63]


def word_bits_list(row: np.ndarray) -> list[int]:
    """Ascending set-bit positions of one packed row, as a Python list.

    Equivalent to ``bits_to_indices(row, ...).tolist()`` but runs as a plain
    bit-twiddling loop; for the short rows the enumerators iterate per search
    node this beats the vectorised unpack by a wide margin.
    """
    positions: list[int] = []
    base = 0
    for word in row.tolist():
        while word:
            low = word & -word
            positions.append(base + low.bit_length() - 1)
            word ^= low
        base += _WORD_BITS
    return positions


class CriticalityPlanes:
    """Packed per-element criticality bitsets with exact apply/undo.

    The MMCS-family enumerators keep, for every element of the current
    hitting set ``S``, the set of subsets (evidences) that element is
    *critical* for — the subsets no other element of ``S`` covers.  The
    classic formulation is a ``dict[int, set[int]]`` updated one member at a
    time; here the same state is a preallocated ``(capacity, n_words)``
    uint64 plane whose row ``d`` is the packed criticality set of the
    ``d``-th element of ``S``, so one apply/undo touches all member rows with
    two vectorised word operations.

    ``apply`` pushes a new element (its freshly-critical set plus its
    coverage bitset), strips the covered bits from every member row, and
    reports whether every *previous* member kept at least one critical bit —
    the viability test of UpdateCritUncov.  The returned token restores the
    planes bit-exactly when handed back to ``undo``, which is what makes the
    depth-first backtracking of the enumerators cheap.
    """

    def __init__(self, n_bits: int, capacity: int) -> None:
        self.n_bits = int(n_bits)
        self.n_words = n_words_for_bits(n_bits)
        self.capacity = max(int(capacity), 1)
        self._rows = np.zeros((self.capacity, self.n_words), dtype=np.uint64)
        self.depth = 0

    def row(self, depth: int) -> np.ndarray:
        """The packed criticality bitset of the element at ``depth``."""
        return self._rows[depth]

    def active_rows(self) -> np.ndarray:
        """View of the rows of all currently pushed elements."""
        return self._rows[: self.depth]

    def apply(self, new_row: np.ndarray, covers: np.ndarray) -> tuple[bool, np.ndarray | None]:
        """Push an element; return ``(viable, undo_token)``.

        ``new_row`` is the packed set the new element is critical for and
        ``covers`` the packed set of subsets the element covers.  ``viable``
        is True when every previously pushed element retains at least one
        critical bit after losing the bits in ``covers``.  The token is
        ``None`` when there was nothing to strip (depth 0).
        """
        depth = self.depth
        if depth == 0:
            self._rows[0] = new_row
            self.depth = 1
            return True, None
        if depth == 1:
            member = self._rows[0]
            removed = member & covers
            # removed ⊆ member, so xor strips exactly the covered bits
            # without materialising ~covers.
            member ^= removed
            viable = bool(member.any())
            self._rows[1] = new_row
            self.depth = 2
            return viable, removed
        members = self._rows[:depth]
        removed = members & covers
        members ^= removed
        viable = bool(members.any(axis=1).all())
        self._rows[depth] = new_row
        self.depth = depth + 1
        return viable, removed

    def undo(self, removed: np.ndarray | None) -> None:
        """Pop the most recent element, restoring every member row exactly.

        Rows at or beyond the new depth are left as garbage; every reader
        (``row``, ``active_rows``, ``snapshot``) only looks below ``depth``.
        """
        self.depth -= 1
        if removed is not None:
            self._rows[: self.depth] |= removed

    def snapshot(self) -> np.ndarray:
        """Copy of the active rows (used by tests to check round-trips)."""
        return self._rows[: self.depth].copy()
