"""Tests for the Section 8.4 noise models."""

from __future__ import annotations

import pytest

from repro.data.datasets import generate_tax
from repro.data.noise import add_concentrated_noise, add_spread_noise


@pytest.fixture(scope="module")
def clean_relation():
    return generate_tax(n_rows=120, seed=2).relation


class TestSpreadNoise:
    def test_modification_rate_close_to_probability(self, clean_relation):
        dirty, report = add_spread_noise(clean_relation, cell_probability=0.05, seed=1)
        total_cells = clean_relation.n_rows * clean_relation.n_columns
        assert 0.01 <= report.n_modified_cells / total_cells <= 0.12
        assert dirty.n_rows == clean_relation.n_rows

    def test_original_relation_unchanged(self, clean_relation):
        before = list(clean_relation.rows())
        add_spread_noise(clean_relation, cell_probability=0.2, seed=3)
        assert list(clean_relation.rows()) == before

    def test_reported_cells_actually_changed(self, clean_relation):
        dirty, report = add_spread_noise(clean_relation, cell_probability=0.05, seed=4)
        changed = 0
        for row, column in report.modified_cells:
            if dirty.value(row, column) != clean_relation.value(row, column):
                changed += 1
        # Domain swaps always change the value; typos on numeric columns may
        # occasionally round-trip, so allow a small tolerance.
        assert changed >= 0.9 * report.n_modified_cells

    def test_swap_and_typo_split(self, clean_relation):
        _, report = add_spread_noise(clean_relation, cell_probability=0.2, seed=5)
        assert report.swap_count + report.typo_count == report.n_modified_cells
        assert report.swap_count > 0
        assert report.typo_count > 0

    def test_deterministic_with_seed(self, clean_relation):
        first, _ = add_spread_noise(clean_relation, 0.05, seed=9)
        second, _ = add_spread_noise(clean_relation, 0.05, seed=9)
        assert list(first.rows()) == list(second.rows())

    def test_invalid_probability_rejected(self, clean_relation):
        with pytest.raises(ValueError):
            add_spread_noise(clean_relation, cell_probability=1.5)


class TestConcentratedNoise:
    def test_errors_concentrated_in_few_tuples(self, clean_relation):
        dirty, report = add_concentrated_noise(
            clean_relation, tuple_probability=0.05, cells_per_tuple=3, seed=1
        )
        assert report.n_modified_tuples <= 0.15 * clean_relation.n_rows
        assert report.n_modified_cells == pytest.approx(3 * report.n_modified_tuples)
        assert dirty.n_rows == clean_relation.n_rows

    def test_more_cells_per_tuple_than_spread(self, clean_relation):
        _, concentrated = add_concentrated_noise(clean_relation, 0.05, cells_per_tuple=4, seed=2)
        if concentrated.n_modified_tuples:
            cells_per_tuple = concentrated.n_modified_cells / concentrated.n_modified_tuples
            assert cells_per_tuple == pytest.approx(4.0)

    def test_golden_dcs_become_approximate_not_exact(self):
        dataset = generate_tax(n_rows=120, seed=2)
        dirty, report = add_concentrated_noise(dataset.relation, 0.05, seed=3)
        assert report.n_modified_tuples > 0
        violated = sum(
            1 for constraint in dataset.golden if constraint.violation_count(dirty) > 0
        )
        assert violated > 0

    def test_invalid_probability_rejected(self, clean_relation):
        with pytest.raises(ValueError):
            add_concentrated_noise(clean_relation, tuple_probability=-0.1)
