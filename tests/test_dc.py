"""Tests for denial constraints and their semantics."""

from __future__ import annotations

import pytest

from repro.core.dc import DenialConstraint, format_dc_set, minimize_dcs
from repro.core.operators import Operator
from repro.core.predicates import same_column_predicate, single_tuple_predicate
from repro.data.relation import Relation


@pytest.fixture
def fd_constraint() -> DenialConstraint:
    """Zip determines State: not (Zip = Zip' and State != State')."""
    return DenialConstraint([
        same_column_predicate("Zip", Operator.EQ),
        same_column_predicate("State", Operator.NE),
    ])


class TestSemantics:
    def test_violation_count_on_running_example(self, example_relation, fd_constraint):
        # Example 1.2: sixteen ordered pairs violate the zip->state rule.
        assert fd_constraint.violation_count(example_relation) == 16

    def test_violating_tuples(self, example_relation, fd_constraint):
        involved = fd_constraint.violating_tuples(example_relation)
        assert 14 in involved  # t15 participates in every violation
        assert len(involved) == 9

    def test_is_satisfied(self, example_relation, fd_constraint):
        assert not fd_constraint.is_satisfied(example_relation)
        name_key = DenialConstraint([same_column_predicate("Zip", Operator.EQ),
                                     same_column_predicate("Income", Operator.EQ)])
        clean = Relation("r", {"Zip": [1, 2, 3], "Income": [10, 20, 30]})
        assert DenialConstraint([same_column_predicate("Zip", Operator.EQ)]).is_satisfied(clean)
        assert name_key.violation_count(clean) == 0

    def test_satisfied_by_pair_requires_one_failing_predicate(self, fd_constraint):
        violating = ({"Zip": 1, "State": "A"}, {"Zip": 1, "State": "B"})
        satisfying = ({"Zip": 1, "State": "A"}, {"Zip": 1, "State": "A"})
        assert not fd_constraint.satisfied_by_pair(*violating)
        assert fd_constraint.satisfied_by_pair(*satisfying)


class TestStructure:
    def test_trivial_when_operators_contradict(self):
        constraint = DenialConstraint([
            same_column_predicate("A", Operator.LT),
            same_column_predicate("A", Operator.GE),
        ])
        assert constraint.is_trivial()

    def test_empty_dc_is_trivial(self):
        assert DenialConstraint([]).is_trivial()

    def test_satisfiable_conjunction_is_not_trivial(self, fd_constraint):
        assert not fd_constraint.is_trivial()
        le_ge = DenialConstraint([
            same_column_predicate("A", Operator.LE),
            same_column_predicate("A", Operator.GE),
        ])
        assert not le_ge.is_trivial()

    def test_normalized_drops_implied_predicates(self):
        constraint = DenialConstraint([
            same_column_predicate("A", Operator.LT),
            same_column_predicate("A", Operator.LE),
        ])
        assert constraint.normalized().predicates == frozenset(
            [same_column_predicate("A", Operator.LT)]
        )

    def test_generalizes(self, fd_constraint):
        more_specific = DenialConstraint(
            list(fd_constraint.predicates) + [same_column_predicate("Name", Operator.EQ)]
        )
        assert fd_constraint.generalizes(more_specific)
        assert not more_specific.generalizes(fd_constraint)

    def test_same_constraint_modulo_redundancy(self):
        left = DenialConstraint([same_column_predicate("A", Operator.LT)])
        right = DenialConstraint([
            same_column_predicate("A", Operator.LT),
            same_column_predicate("A", Operator.LE),
        ])
        assert left.same_constraint(right)

    def test_spans_two_tuples(self):
        single = DenialConstraint([single_tuple_predicate("A", Operator.GT, "B")])
        assert not single.spans_two_tuples
        two = DenialConstraint([same_column_predicate("A", Operator.EQ)])
        assert two.spans_two_tuples


class TestCollections:
    def test_minimize_dcs_removes_supersets_and_duplicates(self, fd_constraint):
        superset = DenialConstraint(
            list(fd_constraint.predicates) + [same_column_predicate("Name", Operator.EQ)]
        )
        duplicate = DenialConstraint(fd_constraint.predicates)
        minimal = minimize_dcs([fd_constraint, superset, duplicate])
        assert minimal == [fd_constraint]

    def test_format_dc_set(self, fd_constraint):
        text = format_dc_set([fd_constraint])
        assert "t[Zip] == t'[Zip]" in text
        assert text.startswith("forall")

    def test_str_is_stable(self, fd_constraint):
        assert str(fd_constraint) == str(DenialConstraint(fd_constraint.predicates))
