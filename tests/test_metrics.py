"""Tests for the evaluation metrics and reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    compare_dc_sets,
    dataset_statistics,
    f1_score,
    g_recall,
    precision_recall_f1,
    recovered_golden,
)
from repro.analysis.reporting import format_series, format_table
from repro.core.dc import DenialConstraint
from repro.core.operators import Operator
from repro.core.predicates import same_column_predicate
from repro.data.datasets import generate_adult


def _dc(*columns_ops):
    return DenialConstraint([same_column_predicate(col, op) for col, op in columns_ops])


ZIP_STATE = _dc(("Zip", Operator.EQ), ("State", Operator.NE))
ZIP_CITY = _dc(("Zip", Operator.EQ), ("City", Operator.NE))
NAME_KEY = _dc(("Name", Operator.EQ))


class TestDCSetComparison:
    def test_identical_sets(self):
        comparison = compare_dc_sets([ZIP_STATE, ZIP_CITY], [ZIP_CITY, ZIP_STATE])
        assert comparison.precision == 1.0
        assert comparison.recall == 1.0
        assert comparison.f1 == 1.0

    def test_partial_overlap(self):
        precision, recall, f1 = precision_recall_f1([ZIP_STATE, NAME_KEY], [ZIP_STATE, ZIP_CITY])
        assert precision == 0.5
        assert recall == 0.5
        assert f1 == 0.5

    def test_empty_discovered(self):
        comparison = compare_dc_sets([], [ZIP_STATE])
        assert comparison.precision == 0.0
        assert comparison.recall == 0.0
        assert comparison.f1 == 0.0

    def test_redundant_predicates_do_not_matter(self):
        redundant = DenialConstraint([
            same_column_predicate("Zip", Operator.EQ),
            same_column_predicate("State", Operator.NE),
            same_column_predicate("Zip", Operator.GE),
        ])
        # Zip >= is implied by Zip ==, so the two constraints are the same.
        assert f1_score([redundant], [ZIP_STATE]) == 1.0


class TestGRecall:
    def test_exact_match_counts(self):
        assert g_recall([ZIP_STATE], [ZIP_STATE, ZIP_CITY]) == 0.5

    def test_more_general_discovered_dc_counts(self):
        specific_golden = DenialConstraint(
            list(ZIP_STATE.predicates) + [same_column_predicate("Name", Operator.EQ)]
        )
        assert g_recall([ZIP_STATE], [specific_golden]) == 1.0

    def test_more_specific_discovered_dc_does_not_count(self):
        specific_discovered = DenialConstraint(
            list(ZIP_STATE.predicates) + [same_column_predicate("Name", Operator.EQ)]
        )
        assert g_recall([specific_discovered], [ZIP_STATE]) == 0.0

    def test_empty_golden(self):
        assert g_recall([ZIP_STATE], []) == 0.0

    def test_recovered_golden_returns_matched_rules(self):
        matched = recovered_golden([ZIP_STATE], [ZIP_STATE, ZIP_CITY])
        assert matched == [ZIP_STATE]


class TestDatasetStatistics:
    def test_table4_row(self):
        dataset = generate_adult(n_rows=50, seed=0)
        row = dataset_statistics(dataset)
        assert row == {"dataset": "adult", "tuples": 50, "attributes": 8, "golden_dcs": 3}


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(
            [{"dataset": "tax", "seconds": 1.23456}, {"dataset": "stock", "seconds": 0.5}],
            title="runtime",
        )
        assert "runtime" in text
        assert "1.2346" in text
        assert text.index("dataset") < text.index("tax")

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_series(self):
        text = format_series(
            {"adcenum": {0.2: 1.0, 0.4: 2.0}, "searchmc": {0.2: 3.0}},
            x_label="sample",
        )
        assert "sample" in text and "adcenum" in text and "searchmc" in text
        assert "3.0000" in text
