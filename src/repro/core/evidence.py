"""The evidence set, stored as packed 64-bit predicate words.

For every ordered pair of distinct tuples ``(t, t')`` the *evidence*
``Sat(t, t')`` is the set of predicates of the predicate space satisfied by
the pair; the *evidence set* ``Evi(D)`` is the bag of all evidences
(Section 3).  As in the paper, evidences are stored once with a
multiplicity, because only the distinct evidences and their counts matter to
the enumeration algorithm.

The native representation is a packed ``(n_evidences, n_words)`` uint64
array (``EvidenceSet.words``): bit ``p`` of an evidence lives at word
``p // 64``, bit ``p % 64``.  This is the same word layout the tiled
evidence builder produces and the one :class:`~repro.core.adc_enum.ADCEnum`
operates on directly, so no representation changes hands anywhere in the
pipeline.  The set-cover queries the enumerators and approximation
functions issue (:meth:`EvidenceSet.uncovered_indices`,
:meth:`EvidenceSet.uncovered_pair_count`,
:meth:`EvidenceSet.restrict_to_predicates`) are all vectorised word-plane
operations.  A compatibility view of Python-int ``masks`` is derived
lazily for callers that still want arbitrary-precision bitmasks.

The class also stores the ``vios`` structure of Figure 2: for every distinct
evidence, the tuples participating in pairs with that evidence and how many
such pairs each tuple participates in.  This is what the tuple-based
approximation functions (f2 and the greedy replacement of f3) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.bitset import n_words_for_bits
from repro.core.predicate_space import PredicateSpace, iter_bits
from repro.core.predicates import Predicate
from repro.native import dispatch as native_dispatch

_WORD_BITS = 64
_WORD_MASK = 0xFFFFFFFFFFFFFFFF


def n_words_for(n_predicates: int) -> int:
    """Number of uint64 words needed to hold ``n_predicates`` bits.

    Alias of :func:`repro.core.bitset.n_words_for_bits`, kept under the
    historical name for the evidence-pipeline callers.
    """
    return n_words_for_bits(n_predicates)


def mask_to_words(mask: int, n_words: int) -> np.ndarray:
    """Split a Python-int predicate mask into its uint64 word vector.

    This is the single mask→word helper shared by the boundary code that
    still accepts arbitrary-precision bitmasks (set-cover queries, tests);
    the enumeration recursion itself never converts — it runs on word
    vectors end to end.  Bits beyond ``n_words * 64`` are discarded.
    """
    mask = int(mask) & ((1 << (_WORD_BITS * n_words)) - 1)
    data = mask.to_bytes(n_words * 8, "little")
    return np.frombuffer(data, dtype="<u8").astype(np.uint64)


def words_to_mask(words: np.ndarray | Sequence[int]) -> int:
    """Assemble a uint64 word vector back into a Python-int bitmask."""
    array = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    return int.from_bytes(array.astype("<u8", copy=False).tobytes(), "little")


def masks_to_words(masks: Sequence[int], n_words: int) -> np.ndarray:
    """Pack a sequence of Python-int bitmasks into an ``(n, n_words)`` array."""
    packed = np.zeros((len(masks), n_words), dtype=np.uint64)
    for row, mask in enumerate(masks):
        for word in range(n_words):
            packed[row, word] = (int(mask) >> (_WORD_BITS * word)) & _WORD_MASK
    return packed


def lexsort_word_rows(words: np.ndarray) -> np.ndarray:
    """Permutation sorting word rows lexicographically (word 0 primary).

    This is the canonical evidence order: every builder emits its distinct
    evidences in this order, which makes results reproducible and lets the
    parallel engine merge partial evidence sets in any order while still
    finalizing to a bit-identical :class:`EvidenceSet`.
    """
    if len(words) == 0:
        return np.zeros(0, dtype=np.int64)
    keys = tuple(words[:, word] for word in range(words.shape[1] - 1, -1, -1))
    return np.lexsort(keys)


def unique_word_rows(words: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct rows of a 2-D uint64 array with inverse indices and counts.

    Rows are returned in the canonical lexicographic order of
    :func:`lexsort_word_rows` (not ``np.unique``'s byte order, which would
    depend on the platform's endianness).  Dispatched to the active kernel
    backend: the compiled backends replace the sort-based ``np.unique``
    reference with a hash pass over the rows — the dominant cost of every
    evidence builder's per-tile dedup.
    """
    return native_dispatch.get_backend().kernels.unique_rows(words)


class LazyMaskView(Sequence[int]):
    """Chunk-lazy Python-int view of a packed uint64 word plane.

    Converting a word row to an arbitrary-precision int costs Python-level
    work per row, and the old eager ``EvidenceSet.masks`` list materialised
    *every* row on first touch — an accidental hot-path landmine when the
    enumerator read one mask per search node.  The hot paths now consume
    ``EvidenceSet.words`` directly; this view serves the remaining cold
    callers (display helpers, tests, the legacy reference enumerators) by
    converting rows on demand in fixed-size chunks and caching each chunk,
    so indexed access never pays for the rows it does not visit.

    The view supports the full read-only sequence protocol plus value
    equality against lists/tuples, which is what the existing callers (and
    tests) use.
    """

    _CHUNK_ROWS = 1024

    def __init__(self, words: np.ndarray) -> None:
        self._words = words
        self._chunks: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._words)

    def _chunk(self, chunk_index: int) -> list[int]:
        cached = self._chunks.get(chunk_index)
        if cached is None:
            low = chunk_index * self._CHUNK_ROWS
            block = np.ascontiguousarray(self._words[low: low + self._CHUNK_ROWS])
            raw = block.astype("<u8", copy=False).tobytes()
            stride = block.shape[1] * 8
            cached = [
                int.from_bytes(raw[row * stride: (row + 1) * stride], "little")
                for row in range(block.shape[0])
            ]
            self._chunks[chunk_index] = cached
        return cached

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("mask index out of range")
        return self._chunk(index // self._CHUNK_ROWS)[index % self._CHUNK_ROWS]

    def __iter__(self) -> Iterator[int]:
        for chunk_index in range((len(self) + self._CHUNK_ROWS - 1) // self._CHUNK_ROWS):
            yield from self._chunk(chunk_index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyMaskView):
            if other is self:
                return True
            other = list(other)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyMaskView({len(self)} masks)"


@dataclass(frozen=True)
class TupleParticipation:
    """Tuples participating in pairs carrying one evidence.

    ``tuple_ids[k]`` participates in ``pair_counts[k]`` ordered pairs whose
    evidence is the owning entry — the row of the ``vios`` table of Figure 2.
    """

    tuple_ids: np.ndarray
    pair_counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.tuple_ids) != len(self.pair_counts):
            raise ValueError("tuple_ids and pair_counts must have equal length")


class EvidenceSet:
    """The bag ``Evi(D)`` of predicate-satisfaction evidences.

    Parameters
    ----------
    space:
        The predicate space the evidence words/bitmasks index into.
    masks:
        Distinct evidence bitmasks as Python ints.  Either ``masks`` or
        ``words`` must be given; ``words`` is the native form.
    counts:
        Multiplicity of each distinct evidence (number of ordered pairs).
    n_rows:
        Number of tuples of the underlying relation.
    participation:
        Optional per-evidence tuple participation (the ``vios`` structure);
        required by the f2/f3 approximation functions.
    words:
        Packed ``(n_evidences, n_words)`` uint64 evidence words — the native
        representation produced by the tiled and dense builders.
    """

    def __init__(
        self,
        space: PredicateSpace,
        masks: Sequence[int] | None = None,
        counts: Sequence[int] = (),
        n_rows: int = 0,
        participation: Sequence[TupleParticipation] | None = None,
        *,
        words: np.ndarray | None = None,
    ) -> None:
        self.space = space
        self.n_words = n_words_for(len(space))
        if words is None:
            if masks is None:
                raise ValueError("either masks or words must be provided")
            self._masks: Sequence[int] | None = [int(mask) for mask in masks]
            self.words = masks_to_words(self._masks, self.n_words)
        else:
            words = np.ascontiguousarray(words, dtype=np.uint64)
            if words.ndim != 2 or words.shape[1] != self.n_words:
                raise ValueError(
                    f"words must have shape (n_evidences, {self.n_words}); got {words.shape}"
                )
            self.words = words
            self._masks = None
        self.counts: np.ndarray = np.asarray(counts, dtype=np.int64)
        if len(self.words) != len(self.counts):
            raise ValueError("masks/words and counts must have equal length")
        if participation is not None and len(participation) != len(self.words):
            raise ValueError("participation must align with masks")
        self.n_rows = int(n_rows)
        self._participation = list(participation) if participation is not None else None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(mask, count)`` pairs."""
        for mask, count in zip(self.masks, self.counts):
            yield mask, int(count)

    @property
    def masks(self) -> Sequence[int]:
        """Chunk-lazy Python-int view of the evidence words.

        Cold-path compatibility only: rows are converted to ints on demand
        (see :class:`LazyMaskView`), so touching one mask no longer pays for
        the whole evidence set.  Hot paths must read :attr:`words` instead —
        the enumerators do.
        """
        if self._masks is None:
            self._masks = LazyMaskView(self.words)
        return self._masks

    @property
    def total_pairs(self) -> int:
        """Number of ordered distinct tuple pairs, ``|D| * (|D| - 1)``."""
        return self.n_rows * (self.n_rows - 1)

    @property
    def recorded_pairs(self) -> int:
        """Number of pairs actually recorded (sum of multiplicities)."""
        return int(self.counts.sum())

    @property
    def has_participation(self) -> bool:
        """Whether the ``vios`` structure is available."""
        return self._participation is not None

    def participation(self, evidence_index: int) -> TupleParticipation:
        """Tuple participation of one distinct evidence."""
        if self._participation is None:
            raise RuntimeError(
                "evidence set was built without tuple participation; "
                "rebuild with include_participation=True to use f2/f3"
            )
        return self._participation[evidence_index]

    def predicates_of(self, evidence_index: int) -> tuple[Predicate, ...]:
        """Predicates satisfied by the pairs of one distinct evidence."""
        return self.space.predicates_of(self.masks[evidence_index])

    def predicate_membership(self) -> np.ndarray:
        """Boolean ``(n_predicates, n_evidences)`` membership matrix.

        ``result[p, e]`` is True when evidence ``e`` satisfies predicate
        ``p``.  Both enumerators precompute this matrix to answer "which
        uncovered evidences does this predicate hit" with one fancy index.
        """
        n_predicates = len(self.space)
        contains = np.zeros((n_predicates, len(self)), dtype=bool)
        shifts = np.arange(_WORD_BITS, dtype=np.uint64)[:, None]
        for word in range(self.n_words):
            bits = ((self.words[:, word][None, :] >> shifts) & np.uint64(1)) != 0
            low = word * _WORD_BITS
            high = min(low + _WORD_BITS, n_predicates)
            if high <= low:
                break
            contains[low:high] = bits[: high - low]
        return contains

    # ------------------------------------------------------------------
    # Queries used by the enumerators, approximation functions and tests
    # ------------------------------------------------------------------
    def hitting_words(self, hitting: "int | np.ndarray | Sequence[int]") -> np.ndarray:
        """Normalise a hitting set to its ``(n_words,)`` uint64 word vector.

        Accepts either an arbitrary-precision Python-int bitmask (the
        historical form) or an already-packed word vector, which callers on
        the serving path (:class:`~repro.incremental.serve.ViolationService`,
        the repair ranking) pass to stay off the Python-int conversion.
        """
        if isinstance(hitting, (int, np.integer)):
            return mask_to_words(int(hitting), self.n_words)
        words = np.ascontiguousarray(np.asarray(hitting, dtype=np.uint64))
        if words.shape != (self.n_words,):
            raise ValueError(
                f"hitting words must have shape ({self.n_words},); got {words.shape}"
            )
        return words

    def _unhit(self, hitting_mask: "int | np.ndarray") -> np.ndarray:
        """Boolean vector of evidences with empty intersection with the mask.

        ``hitting_mask`` is a Python-int bitmask or a packed ``(n_words,)``
        uint64 vector; the word form skips the int→word conversion entirely.
        """
        hitting_words = self.hitting_words(hitting_mask)
        return ~(self.words & hitting_words).any(axis=1)

    def uncovered_indices(self, hitting_mask: "int | np.ndarray") -> list[int]:
        """Indices of evidences with empty intersection with ``hitting_mask``.

        In DC terms these are the evidences of the pairs *violating* the DC
        whose complement-predicate set is ``hitting_mask`` (given as a
        Python-int bitmask or a packed uint64 word vector).
        """
        return np.flatnonzero(self._unhit(hitting_mask)).tolist()

    def uncovered_pair_count(self, hitting_mask: "int | np.ndarray") -> int:
        """Number of pairs whose evidence is not hit by ``hitting_mask``.

        Accepts the mask as a Python int or a packed uint64 word vector.
        """
        return int(self.counts[self._unhit(hitting_mask)].sum())

    def pair_count_of(self, evidence_indices: Iterable[int]) -> int:
        """Total number of pairs over a collection of evidence indices."""
        indices = np.asarray(
            evidence_indices if isinstance(evidence_indices, np.ndarray) else list(evidence_indices),
            dtype=np.int64,
        )
        return int(self.counts[indices].sum())

    def tuples_involved(self, evidence_indices: Iterable[int]) -> set[int]:
        """Distinct tuples participating in pairs of the given evidences."""
        involved: set[int] = set()
        for index in evidence_indices:
            involved.update(self.participation(index).tuple_ids.tolist())
        return involved

    def violation_counts_per_tuple(self, evidence_indices: Iterable[int]) -> np.ndarray:
        """Per-tuple number of violating pairs over the given evidences.

        This is the ``v(t)`` vector computed by ``SortTuples`` in Figure 2.
        """
        totals = np.zeros(self.n_rows, dtype=np.int64)
        for index in evidence_indices:
            part = self.participation(index)
            totals[part.tuple_ids] += part.pair_counts
        return totals

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def restrict_to_predicates(self, predicate_mask: int) -> "EvidenceSet":
        """Project every evidence onto a subset of the predicate space.

        Evidences that become identical after the projection are merged:
        their multiplicities are added and, when the ``vios`` structure is
        available, their tuple participations are merged as well (per-tuple
        pair counts added), so f2/f3 keep working on the projected set.
        """
        projection = mask_to_words(predicate_mask, self.n_words)
        projected = self.words & projection
        unique_words, inverse, _ = unique_word_rows(projected)
        counts = np.zeros(len(unique_words), dtype=np.int64)
        np.add.at(counts, inverse, self.counts)

        participation: list[TupleParticipation] | None = None
        if self._participation is not None:
            participation = []
            order = np.argsort(inverse, kind="stable")
            boundaries = np.searchsorted(inverse[order], np.arange(len(unique_words) + 1))
            for merged in range(len(unique_words)):
                sources = order[boundaries[merged]:boundaries[merged + 1]]
                ids = np.concatenate([self._participation[s].tuple_ids for s in sources])
                per_pair = np.concatenate([self._participation[s].pair_counts for s in sources])
                merged_ids, merged_inverse = np.unique(ids, return_inverse=True)
                merged_counts = np.zeros(len(merged_ids), dtype=np.int64)
                np.add.at(merged_counts, merged_inverse, per_pair)
                participation.append(TupleParticipation(merged_ids, merged_counts))

        return EvidenceSet(
            self.space, counts=counts, n_rows=self.n_rows,
            participation=participation, words=unique_words,
        )

    def describe(self, limit: int = 10) -> str:
        """Human readable summary of the evidence multiset."""
        lines = [
            f"evidence set: {len(self)} distinct evidences over "
            f"{self.recorded_pairs} pairs ({self.n_rows} tuples)"
        ]
        order = np.argsort(-self.counts)
        for index in order[:limit]:
            predicates = ", ".join(str(p) for p in self.predicates_of(int(index)))
            lines.append(f"  x{int(self.counts[index]):>6}  {{{predicates}}}")
        if len(self) > limit:
            lines.append(f"  ... and {len(self) - limit} more")
        return "\n".join(lines)


def evidence_from_pair_masks(
    space: PredicateSpace,
    pair_masks: Iterable[int],
    n_rows: int,
    pair_tuples: Iterable[tuple[int, int]] | None = None,
) -> EvidenceSet:
    """Build an :class:`EvidenceSet` from per-pair bitmasks.

    ``pair_tuples`` optionally provides, for every mask, the ordered pair of
    row indices it came from, enabling the tuple-participation structure.
    This constructor is used by the naive pairwise builder and by tests.
    Evidences are emitted in the canonical lexicographic word order (word 0
    primary), matching the word-plane builders bit for bit.
    """
    pair_masks = list(pair_masks)
    counts: dict[int, int] = {}
    tuple_counts: dict[int, dict[int, int]] = {}
    pairs = list(pair_tuples) if pair_tuples is not None else None
    if pairs is not None and len(pairs) != len(pair_masks):
        raise ValueError("pair_tuples must align with pair_masks")
    for position, mask in enumerate(pair_masks):
        counts[mask] = counts.get(mask, 0) + 1
        if pairs is not None:
            i, j = pairs[position]
            per_tuple = tuple_counts.setdefault(mask, {})
            per_tuple[i] = per_tuple.get(i, 0) + 1
            per_tuple[j] = per_tuple.get(j, 0) + 1
    n_words = n_words_for(len(space))
    masks = sorted(
        counts,
        key=lambda mask: tuple(
            (mask >> (_WORD_BITS * word)) & _WORD_MASK for word in range(n_words)
        ),
    )
    participation = None
    if pairs is not None:
        participation = []
        for mask in masks:
            per_tuple = tuple_counts[mask]
            ids = np.asarray(sorted(per_tuple), dtype=np.int64)
            per_pair = np.asarray([per_tuple[t] for t in ids.tolist()], dtype=np.int64)
            participation.append(TupleParticipation(ids, per_pair))
    return EvidenceSet(space, masks, [counts[m] for m in masks], n_rows, participation)


def mask_to_predicate_indices(mask: int) -> list[int]:
    """Positions of the set bits of an evidence or hitting-set mask."""
    return list(iter_bits(mask))
