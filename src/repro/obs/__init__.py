"""Unified observability layer: metrics, trace spans, structured logs.

Three pillars, all dependency-free (stdlib + numpy):

* :mod:`repro.obs.registry` / :mod:`repro.obs.metrics` — a process-wide
  metrics registry (counters, gauges, fixed-bucket histograms; per-child
  locks, ``REPRO_OBS=0`` kill-switch) with every built-in family declared
  centrally in ``metrics.py``.
* :mod:`repro.obs.spans` — lightweight trace spans propagated from
  :class:`~repro.serve.client.ServeClient` through the wire envelope's
  ``trace`` field into scheduler flushes, store folds, journal fsyncs and
  cluster submits — and, when a submission runs over a cluster, across the
  wire into per-task worker child spans stitched back into one tree.
* :mod:`repro.obs.logging` — line-oriented JSON event logs replacing
  ad-hoc stderr prints, including the span-aware slow-op log.

Exposure: the ``metrics`` wire op (JSON snapshot or text exposition), the
optional ``--metrics-port`` HTTP listener (:mod:`repro.obs.httpd`,
Prometheus text format 0.0.4 via :mod:`repro.obs.prometheus`, plus a
``/healthz`` liveness probe), and — on a cluster-backed server — the
federated view assembled by :mod:`repro.obs.federate` from per-worker
registry snapshots, each series labeled ``worker="<id>"``.
"""

from repro.obs.federate import merge_snapshots, render_federated
from repro.obs.logging import JsonLogger, get_logger, set_logger
from repro.obs.prometheus import render_text
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.spans import Span, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "Span",
    "get_logger",
    "get_registry",
    "merge_snapshots",
    "new_trace_id",
    "render_federated",
    "render_text",
    "set_logger",
    "set_registry",
]
