"""Tests for the evidence set and its two builders."""

from __future__ import annotations

import pytest

from tests.conftest import make_random_relation
from repro.core.evidence import evidence_from_pair_masks
from repro.core.evidence_builder import build_evidence_set, build_evidence_set_pairwise
from repro.core.predicate_space import build_predicate_space


class TestRunningExampleEvidence:
    def test_total_pairs(self, example_evidence):
        assert example_evidence.total_pairs == 15 * 14
        assert example_evidence.recorded_pairs == 15 * 14

    def test_masks_and_counts_align(self, example_evidence):
        assert len(example_evidence.masks) == len(example_evidence.counts)
        assert all(count > 0 for count in example_evidence.counts)

    def test_every_evidence_nonempty(self, example_evidence):
        # Every ordered pair of distinct tuples satisfies at least one
        # predicate (e.g. one of ==/!= on every attribute).
        assert all(mask != 0 for mask in example_evidence.masks)

    def test_participation_counts_sum_to_two_per_pair(self, example_evidence):
        for index in range(len(example_evidence)):
            part = example_evidence.participation(index)
            assert part.pair_counts.sum() == 2 * example_evidence.counts[index]

    def test_uncovered_pair_count_matches_indices(self, example_evidence, example_space):
        hitting = 1 << 0
        indices = example_evidence.uncovered_indices(hitting)
        assert example_evidence.uncovered_pair_count(hitting) == example_evidence.pair_count_of(indices)


class TestBuildersAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_vectorized_matches_pairwise(self, seed):
        relation = make_random_relation(n_rows=9, seed=seed)
        space = build_predicate_space(relation)
        fast = build_evidence_set(relation, space, include_participation=True)
        slow = build_evidence_set_pairwise(relation, space, include_participation=True)
        assert sorted(zip(fast.masks, fast.counts.tolist())) == sorted(
            zip(slow.masks, slow.counts.tolist())
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_participation_matches_pairwise(self, seed):
        relation = make_random_relation(n_rows=8, seed=seed)
        space = build_predicate_space(relation)
        fast = build_evidence_set(relation, space, include_participation=True)
        slow = build_evidence_set_pairwise(relation, space, include_participation=True)
        fast_by_mask = {mask: fast.participation(i) for i, mask in enumerate(fast.masks)}
        slow_by_mask = {mask: slow.participation(i) for i, mask in enumerate(slow.masks)}
        for mask, fast_part in fast_by_mask.items():
            slow_part = slow_by_mask[mask]
            assert dict(zip(fast_part.tuple_ids.tolist(), fast_part.pair_counts.tolist())) == dict(
                zip(slow_part.tuple_ids.tolist(), slow_part.pair_counts.tolist())
            )

    def test_single_row_relation_yields_empty_evidence(self):
        relation = make_random_relation(n_rows=1)
        space = build_predicate_space(relation)
        evidence = build_evidence_set(relation, space)
        assert len(evidence) == 0
        assert evidence.total_pairs == 0


class TestEvidenceOperations:
    def test_restrict_to_predicates_merges_counts(self, example_evidence):
        restricted = example_evidence.restrict_to_predicates(0b111)
        assert restricted.recorded_pairs == example_evidence.recorded_pairs
        assert len(restricted) <= len(example_evidence)

    def test_participation_requires_flag(self, example_relation, example_space):
        evidence = build_evidence_set(example_relation, example_space, include_participation=False)
        with pytest.raises(RuntimeError):
            evidence.participation(0)

    def test_evidence_from_pair_masks_counts(self, example_space):
        evidence = evidence_from_pair_masks(
            example_space, [0b1, 0b1, 0b10], n_rows=2, pair_tuples=[(0, 1), (1, 0), (0, 1)]
        )
        assert sorted(zip(evidence.masks, evidence.counts.tolist())) == [(0b1, 2), (0b10, 1)]

    def test_violation_counts_per_tuple(self, example_evidence):
        totals = example_evidence.violation_counts_per_tuple(range(len(example_evidence)))
        # Every tuple participates in 2 * (n - 1) ordered pairs.
        assert set(totals.tolist()) == {2 * 14}

    def test_describe_mentions_size(self, example_evidence):
        assert "distinct evidences" in example_evidence.describe()


class TestWordNativeQueries:
    """The hitting-set queries accept packed word vectors, not just ints."""

    def test_word_vector_matches_int_mask(self, example_evidence):
        from repro.core.evidence import mask_to_words

        for mask in (0, 0b1, 0b1010, (1 << 5) | (1 << 20)):
            words = mask_to_words(mask, example_evidence.n_words)
            assert example_evidence.uncovered_indices(words) == (
                example_evidence.uncovered_indices(mask)
            )
            assert example_evidence.uncovered_pair_count(words) == (
                example_evidence.uncovered_pair_count(mask)
            )

    def test_hitting_words_normalises_both_forms(self, example_evidence):
        import numpy as np
        from repro.core.evidence import mask_to_words

        mask = 0b1101
        from_int = example_evidence.hitting_words(mask)
        from_words = example_evidence.hitting_words(
            mask_to_words(mask, example_evidence.n_words)
        )
        assert np.array_equal(from_int, from_words)

    def test_wrong_width_word_vector_raises(self, example_evidence):
        import numpy as np

        with pytest.raises(ValueError):
            example_evidence.uncovered_indices(
                np.zeros(example_evidence.n_words + 1, dtype=np.uint64)
            )


class TestLazyMaskViewEdgeCases:
    """Slicing/indexing corners of the chunk-lazy Python-int mask view."""

    @pytest.fixture(scope="class")
    def view_and_list(self, example_evidence):
        view = example_evidence.masks
        return view, list(view)

    def test_negative_indices(self, view_and_list):
        view, reference = view_and_list
        for index in (-1, -2, -len(reference)):
            assert view[index] == reference[index]

    def test_out_of_range_raises(self, view_and_list):
        view, reference = view_and_list
        with pytest.raises(IndexError):
            view[len(reference)]
        with pytest.raises(IndexError):
            view[-len(reference) - 1]

    def test_out_of_range_slices_clamp_like_lists(self, view_and_list):
        view, reference = view_and_list
        n = len(reference)
        assert view[: n + 100] == reference[: n + 100]
        assert view[n + 1 :] == []
        assert view[-2 * n : 3] == reference[-2 * n : 3]
        assert view[5:2] == []

    def test_step_slices(self, view_and_list):
        view, reference = view_and_list
        assert view[::2] == reference[::2]
        assert view[1::3] == reference[1::3]
        assert view[::-1] == reference[::-1]
        assert view[10:2:-2] == reference[10:2:-2]

    def test_equality_against_lists_and_tuples(self, view_and_list):
        view, reference = view_and_list
        assert view == reference
        assert not (view == reference[:-1])
        assert not (view == [mask + 1 for mask in reference])
        assert view == view
        assert view == tuple(reference)
        assert view.__eq__(object()) is NotImplemented

    def test_equality_against_other_views(self, example_evidence):
        from repro.core.evidence import LazyMaskView

        first = LazyMaskView(example_evidence.words)
        second = LazyMaskView(example_evidence.words)
        assert first == second
        assert first == first

    def test_iteration_matches_indexing(self, view_and_list):
        view, reference = view_and_list
        assert [mask for mask in view] == reference
