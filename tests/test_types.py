"""Tests for the column type model."""

from __future__ import annotations

import pytest

from repro.data.types import ColumnType, coerce_values, infer_column_type, infer_value_type


class TestInferValueType:
    def test_integer(self):
        assert infer_value_type(7) is ColumnType.INTEGER

    def test_bool_is_integer(self):
        assert infer_value_type(True) is ColumnType.INTEGER

    def test_float(self):
        assert infer_value_type(3.5) is ColumnType.FLOAT

    def test_plain_string(self):
        assert infer_value_type("hello") is ColumnType.STRING

    def test_numeric_string_integer(self):
        assert infer_value_type("42") is ColumnType.INTEGER

    def test_numeric_string_float(self):
        assert infer_value_type("42.5") is ColumnType.FLOAT

    def test_empty_string(self):
        assert infer_value_type("") is ColumnType.STRING

    def test_whitespace_string(self):
        assert infer_value_type("   ") is ColumnType.STRING

    def test_nan_string_is_string(self):
        assert infer_value_type("nan") is ColumnType.STRING


class TestInferColumnType:
    def test_all_integers(self):
        assert infer_column_type([1, 2, 3]) is ColumnType.INTEGER

    def test_mixed_numeric_promotes_to_float(self):
        assert infer_column_type([1, 2.5, 3]) is ColumnType.FLOAT

    def test_mixed_numeric_and_string_is_string(self):
        assert infer_column_type([1, "abc", 3]) is ColumnType.STRING

    def test_all_strings(self):
        assert infer_column_type(["a", "b"]) is ColumnType.STRING

    def test_numeric_strings(self):
        assert infer_column_type(["1", "2"]) is ColumnType.INTEGER

    def test_empty_column_defaults_to_string(self):
        assert infer_column_type([]) is ColumnType.STRING


class TestColumnType:
    def test_integer_is_numeric(self):
        assert ColumnType.INTEGER.is_numeric

    def test_float_is_numeric(self):
        assert ColumnType.FLOAT.is_numeric

    def test_string_is_not_numeric(self):
        assert not ColumnType.STRING.is_numeric


class TestCoerceValues:
    def test_coerce_to_string(self):
        assert coerce_values([1, "a", None], ColumnType.STRING) == ["1", "a", ""]

    def test_coerce_to_integer(self):
        assert coerce_values(["3", 4], ColumnType.INTEGER) == [3, 4]

    def test_coerce_to_float(self):
        assert coerce_values(["3", 4.5], ColumnType.FLOAT) == [3.0, 4.5]

    def test_missing_integer_raises(self):
        with pytest.raises(ValueError):
            coerce_values([None], ColumnType.INTEGER)

    def test_missing_float_becomes_nan(self):
        result = coerce_values([None], ColumnType.FLOAT)
        assert result[0] != result[0]  # NaN
