"""Durability layer — WAL append overhead and recovery time vs log length.

Not a paper figure: this benchmark tracks the crash-safety layer of
``repro.durability``.  It measures the two costs durability introduces:

* **Append overhead.**  Each journaled append pays one WAL record write
  plus one fsync (policy ``commit``) inside the store's ``pre_commit``
  hook, before the in-memory fold commits.  At the default 2000 base rows
  the fold dominates, so the WAL-on p50 must stay within
  ``MAX_OVERHEAD_RATIO`` of the in-memory p50 (enforced with
  ``--require-overhead``; CI runs the smoke variant informationally).
* **Recovery time vs log length.**  Recovery replays the WAL tail behind
  the newest snapshot; the benchmark recovers journals holding k appended
  batches with and without a final snapshot, showing compaction flattening
  the replay cost.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_durability.py \
        [--json BENCH_durability.json] [--rows 2000] [--require-overhead] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import generate_dataset
from repro.data.relation import Relation
from repro.data.types import ColumnType
from repro.durability.journal import StoreJournal, plain_rows, relation_types
from repro.incremental.store import EvidenceStore

#: Rows of the base relation the appends land on.
BENCH_ROWS = 2000

#: Single-row appends measured per mode.
APPEND_REPS = 60

#: WAL-on p50 must stay within this multiple of the in-memory p50.
MAX_OVERHEAD_RATIO = 1.5

#: Appended batches per recovery scenario (the WAL length axis).
RECOVERY_LENGTHS = (8, 32, 128)


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) of ``values`` by nearest-rank."""
    ranked = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ranked)) - 1)
    return ranked[rank]


def make_rows(n_rows: int, extra: int) -> tuple[list[dict], dict[str, str]]:
    relation = generate_dataset("tax", n_rows + extra, seed=5).relation
    return plain_rows(relation), relation_types(relation)


def build_store(base: list[dict], types: dict[str, str]) -> EvidenceStore:
    column_types = {column: ColumnType(text) for column, text in types.items()}
    return EvidenceStore(Relation.from_records("bench", base, column_types))


def measure_append_overhead(
    base: list[dict], feed: list[dict], types: dict[str, str], reps: int
) -> dict[str, object]:
    """Single-row append p50/p99, in-memory vs journaled (fsync=commit)."""
    latencies: dict[str, list[float]] = {}
    for mode in ("memory", "wal"):
        store = build_store(base, types)
        journal = None
        tmp = None
        if mode == "wal":
            tmp = tempfile.mkdtemp(prefix="bench-durability-")
            journal = StoreJournal.create(
                Path(tmp) / "bench", "bench", base, types, fsync="commit"
            )
        samples: list[float] = []
        for index in range(reps):
            row = feed[index % len(feed)]
            started = time.perf_counter()
            if journal is None:
                store.append([row])
            else:
                store.append(
                    [row],
                    pre_commit=lambda n, r=row, k=index: journal.log_append(
                        [r], [[f"bench-{k}", 1]]
                    ),
                )
            samples.append(time.perf_counter() - started)
        latencies[mode] = samples
        if journal is not None:
            journal.close()
            shutil.rmtree(tmp, ignore_errors=True)
    ratio = percentile(latencies["wal"], 50) / percentile(latencies["memory"], 50)
    return {
        "reps": reps,
        "memory_p50_ms": percentile(latencies["memory"], 50) * 1e3,
        "memory_p99_ms": percentile(latencies["memory"], 99) * 1e3,
        "wal_p50_ms": percentile(latencies["wal"], 50) * 1e3,
        "wal_p99_ms": percentile(latencies["wal"], 99) * 1e3,
        "overhead_ratio_p50": ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
    }


def measure_recovery(
    base: list[dict], feed: list[dict], types: dict[str, str], lengths: tuple[int, ...]
) -> list[dict[str, object]]:
    """Recovery wall time for k-append WALs, with and without a snapshot."""
    results = []
    for k in lengths:
        for compacted in (False, True):
            tmp = tempfile.mkdtemp(prefix="bench-durability-")
            directory = Path(tmp) / "bench"
            journal = StoreJournal.create(directory, "bench", base, types)
            store = build_store(base, types)
            for index in range(k):
                row = feed[index % len(feed)]
                store.append(
                    [row],
                    pre_commit=lambda n, r=row: journal.log_append([r], [[None, 1]]),
                )
            if compacted:
                journal.snapshot(store, None)
            wal_bytes = journal.wal.size_bytes
            journal.close()

            started = time.perf_counter()
            recovered = StoreJournal.recover(directory)
            elapsed = time.perf_counter() - started
            assert recovered.store.n_rows == len(base) + k
            recovered.journal.close()
            shutil.rmtree(tmp, ignore_errors=True)
            results.append({
                "appended_batches": k,
                "snapshot": compacted,
                "wal_bytes": wal_bytes,
                "source": recovered.stats.source,
                "replayed_records": recovered.stats.replayed_records,
                "recovery_seconds": elapsed,
            })
    return results


def run_durability_benchmark(
    n_rows: int, reps: int, lengths: tuple[int, ...]
) -> dict[str, object]:
    feed_len = max(reps, max(lengths))
    rows, types = make_rows(n_rows, feed_len)
    base, feed = rows[:n_rows], rows[n_rows:]
    overhead = measure_append_overhead(base, feed, types, reps)
    print(
        f"append @{n_rows} rows: memory p50 {overhead['memory_p50_ms']:.2f} ms, "
        f"wal p50 {overhead['wal_p50_ms']:.2f} ms "
        f"(ratio {overhead['overhead_ratio_p50']:.2f}, bound {MAX_OVERHEAD_RATIO})"
    )
    recovery = measure_recovery(base, feed, types, lengths)
    for entry in recovery:
        print(
            f"recovery k={entry['appended_batches']:<4} "
            f"snapshot={str(entry['snapshot']):<5} "
            f"source={entry['source']:<12} {entry['recovery_seconds']*1e3:.1f} ms"
        )
    return {
        "benchmark": "durability",
        "rows": n_rows,
        "append_overhead": overhead,
        "recovery": recovery,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    parser.add_argument(
        "--require-overhead", action="store_true",
        help=f"fail unless WAL-on append p50 is within {MAX_OVERHEAD_RATIO}x "
             "of in-memory",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI wiring checks (no perf claims)",
    )
    args = parser.parse_args()

    n_rows = 200 if args.smoke else args.rows
    reps = 12 if args.smoke else APPEND_REPS
    lengths = (4, 16) if args.smoke else RECOVERY_LENGTHS
    results = run_durability_benchmark(n_rows, reps, lengths)

    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")

    ratio = results["append_overhead"]["overhead_ratio_p50"]
    if args.require_overhead and ratio > MAX_OVERHEAD_RATIO:
        print(
            f"FAIL: WAL append overhead {ratio:.2f}x exceeds the "
            f"{MAX_OVERHEAD_RATIO}x bound"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
