"""Predicate space generation.

The predicate space ``P_R`` is the set of predicates a denial constraint over
relation ``R`` may use.  Following Chu et al. [11] and the paper's Section
4.2 (component 1 of ADCMiner) the generator emits:

* ``t[A] op t'[A]`` for every attribute ``A``;
* ``t[A] op t[B]`` and ``t[A] op t'[B]`` for attribute pairs ``A != B`` of
  the same type that share at least 30% of their values;
* order operators only for numeric attributes, equality operators for all.

The resulting :class:`PredicateSpace` assigns every predicate a stable index
used as a bit position by the evidence set and the enumeration algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.operators import NUMERIC_OPERATORS, STRING_OPERATORS, Operator
from repro.core.predicates import Predicate, PredicateForm
from repro.data.pli import shared_value_fraction
from repro.data.relation import Relation

#: Minimum fraction of shared values for cross-attribute predicates
#: (the 30% rule of [11, 37], quoted in Section 4.2 of the paper).
DEFAULT_SHARED_VALUE_THRESHOLD = 0.3


@dataclass(frozen=True)
class PredicateSpaceConfig:
    """Tunable knobs of predicate space generation.

    Attributes
    ----------
    shared_value_threshold:
        Minimum fraction of common values two distinct attributes must share
        for cross-attribute predicates to be generated (0.3 in the paper).
    include_cross_column:
        Whether to generate cross-attribute predicates at all.
    include_single_tuple:
        Whether to generate single-tuple predicates ``t[A] op t[B]``.
    max_predicates:
        Safety cap on the size of the space; exceeded caps raise.
    """

    shared_value_threshold: float = DEFAULT_SHARED_VALUE_THRESHOLD
    include_cross_column: bool = True
    include_single_tuple: bool = True
    max_predicates: int = 4096


@dataclass(frozen=True)
class PredicateGroup:
    """All predicates over one column pair + structural form."""

    key: tuple[str, str, PredicateForm]
    indices: tuple[int, ...]
    numeric: bool


class PredicateSpace:
    """An indexed predicate space.

    The space behaves like an immutable sequence of :class:`Predicate`
    objects and provides the index arithmetic (complements, groups, bitmask
    helpers) the evidence builder and the enumerators rely on.
    """

    def __init__(self, predicates: Sequence[Predicate]) -> None:
        self._predicates: tuple[Predicate, ...] = tuple(predicates)
        self._index: dict[Predicate, int] = {}
        for position, predicate in enumerate(self._predicates):
            if predicate in self._index:
                raise ValueError(f"duplicate predicate in space: {predicate}")
            self._index[predicate] = position
        self._complements: list[int | None] = []
        for predicate in self._predicates:
            self._complements.append(self._index.get(predicate.complement))
        groups: dict[tuple[str, str, PredicateForm], list[int]] = {}
        for position, predicate in enumerate(self._predicates):
            groups.setdefault(predicate.group_key, []).append(position)
        self._groups: dict[tuple[str, str, PredicateForm], PredicateGroup] = {}
        group_mask_by_key: dict[tuple[str, str, PredicateForm], int] = {}
        for key, indices in groups.items():
            numeric = any(self._predicates[i].operator.is_order for i in indices)
            self._groups[key] = PredicateGroup(key, tuple(indices), numeric)
            mask = 0
            for member in indices:
                mask |= 1 << member
            group_mask_by_key[key] = mask
        # Per-index caches the enumerators read once per hit branch: the
        # group bitmask of every predicate and the complement index table
        # (-1 marks a predicate whose complement is outside the space).
        self._group_masks: tuple[int, ...] = tuple(
            group_mask_by_key[predicate.group_key] for predicate in self._predicates
        )
        self._complement_index_array = np.array(
            [c if c is not None else -1 for c in self._complements], dtype=np.int64
        )
        self._complement_index_array.setflags(write=False)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._predicates)

    def __getitem__(self, index: int) -> Predicate:
        return self._predicates[index]

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._index

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """All predicates in index order."""
        return self._predicates

    # ------------------------------------------------------------------
    # Index arithmetic
    # ------------------------------------------------------------------
    def index_of(self, predicate: Predicate) -> int:
        """Index of ``predicate`` in the space."""
        try:
            return self._index[predicate]
        except KeyError:
            raise KeyError(f"predicate not in space: {predicate}") from None

    def complement_index(self, index: int) -> int:
        """Index of the complement of the predicate at ``index``."""
        complement = self._complements[index]
        if complement is None:
            raise KeyError(
                f"complement of {self._predicates[index]} is not in the space"
            )
        return complement

    def complement_mask(self, mask: int) -> int:
        """Bitmask of the complements of all predicates in ``mask``."""
        result = 0
        for index in iter_bits(mask):
            result |= 1 << self.complement_index(index)
        return result

    def group_of(self, index: int) -> PredicateGroup:
        """The predicate group (same column pair + form) containing ``index``."""
        return self._groups[self._predicates[index].group_key]

    def group_mask(self, index: int) -> int:
        """Bitmask of all predicates sharing the group of ``index`` (cached)."""
        return self._group_masks[index]

    @property
    def group_masks(self) -> tuple[int, ...]:
        """Per-index group bitmasks, precomputed at construction."""
        return self._group_masks

    @property
    def complement_indices(self) -> np.ndarray:
        """Read-only int64 array mapping each index to its complement's index.

        Entries are ``-1`` for predicates whose complement is not in the
        space (:meth:`complement_index` raises for those).
        """
        return self._complement_index_array

    @property
    def groups(self) -> tuple[PredicateGroup, ...]:
        """All predicate groups."""
        return tuple(self._groups.values())

    # ------------------------------------------------------------------
    # Bitmask helpers
    # ------------------------------------------------------------------
    def mask_of(self, predicates: Iterable[Predicate]) -> int:
        """Bitmask of a collection of predicates."""
        mask = 0
        for predicate in predicates:
            mask |= 1 << self.index_of(predicate)
        return mask

    def predicates_of(self, mask: int) -> tuple[Predicate, ...]:
        """Predicates whose bits are set in ``mask``."""
        return tuple(self._predicates[index] for index in iter_bits(mask))

    def describe(self) -> str:
        """Human readable rendering of the whole space."""
        lines = [f"predicate space: {len(self)} predicates, {len(self._groups)} groups"]
        for position, predicate in enumerate(self._predicates):
            lines.append(f"  [{position:>3}] {predicate}")
        return "\n".join(lines)


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the positions of the set bits of a Python int."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def build_predicate_space(
    relation: Relation,
    config: PredicateSpaceConfig | None = None,
) -> PredicateSpace:
    """Generate the predicate space of a relation.

    This is the ``GeneratePSpace`` component of ADCMiner (Figure 1, line 1).
    """
    config = config or PredicateSpaceConfig()
    predicates: list[Predicate] = []

    columns = relation.columns
    for column in columns:
        operators = NUMERIC_OPERATORS if column.type.is_numeric else STRING_OPERATORS
        for op in operators:
            predicates.append(
                Predicate(column.name, op, column.name, PredicateForm.TWO_TUPLE_SAME_COLUMN)
            )

    if config.include_cross_column or config.include_single_tuple:
        for left_position, left in enumerate(columns):
            for right in columns[left_position + 1:]:
                if not _comparable(relation, left.name, right.name, config):
                    continue
                numeric = left.type.is_numeric and right.type.is_numeric
                operators = NUMERIC_OPERATORS if numeric else STRING_OPERATORS
                if config.include_single_tuple:
                    for op in operators:
                        predicates.append(
                            Predicate(left.name, op, right.name, PredicateForm.SINGLE_TUPLE)
                        )
                if config.include_cross_column:
                    for op in operators:
                        predicates.append(
                            Predicate(left.name, op, right.name, PredicateForm.TWO_TUPLE_CROSS_COLUMN)
                        )

    if len(predicates) > config.max_predicates:
        raise ValueError(
            f"predicate space of size {len(predicates)} exceeds the configured cap "
            f"of {config.max_predicates}"
        )
    return PredicateSpace(predicates)


def _comparable(
    relation: Relation,
    left: str,
    right: str,
    config: PredicateSpaceConfig,
) -> bool:
    """Whether cross-attribute predicates should be generated for a pair.

    Attributes must have compatible types (both numeric or both string) and
    share at least ``shared_value_threshold`` of their values — the 30% rule.
    """
    left_type = relation.column_type(left)
    right_type = relation.column_type(right)
    if left_type.is_numeric != right_type.is_numeric:
        return False
    return shared_value_fraction(relation, left, right) >= config.shared_value_threshold
