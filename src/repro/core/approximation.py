"""Approximation functions for approximate denial constraints.

Section 5 of the paper studies a *family* of approximation functions
``f : (D, S_phi) -> [0, 1]`` characterised by two axioms — monotonicity and
indifference to redundancy — and instantiates three members generalising the
measures of Kivinen and Mannila:

* ``f1`` — fraction of tuple pairs *satisfying* the DC (pair-based);
* ``f2`` — fraction of tuples not involved in any violation (tuple-based);
* ``f3`` — relative size of a maximum satisfying sub-instance (cardinality
  repair).  Computing ``f3`` exactly is NP-hard for DCs, so the paper runs
  the greedy algorithm of Figure 2 instead; :class:`F3Greedy` implements it.

All functions are evaluated against an :class:`~repro.core.evidence.EvidenceSet`
and the set of *uncovered* evidences (the evidences of the violating pairs of
the candidate DC), which is exactly the information the enumeration algorithm
maintains.  For convenience they report the **violation score**
``1 - f(D, S_phi)`` — the quantity compared against the threshold epsilon.
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Collection, Iterable, Sequence

import numpy as np

from repro.core.evidence import EvidenceSet


class ApproximationFunction(abc.ABC):
    """A valid approximation function in the sense of Definition 4.3.

    Concrete subclasses must be monotonic and indifferent to redundancy; the
    empirical checkers :func:`check_monotonicity` and
    :func:`check_indifference_to_redundancy` validate this on concrete
    evidence sets in the test suite.
    """

    #: Short identifier used in reports ("f1", "f2", "f3", ...).
    name: str = "f"

    #: Factor ``c`` such that ``1 - f1 <= c * (1 - f)`` (Proposition 5.3
    #: gives c = 2 for f2 and f3).  The enumerator uses it to skip the more
    #: expensive functions when the cheap pair-based bound already exceeds
    #: ``c * epsilon``.  ``None`` disables the optimisation.
    pair_bound_factor: float | None = None

    #: Whether the function needs the per-evidence tuple participation
    #: structure (the ``vios`` table of Figure 2).
    requires_participation: bool = False

    #: Whether the score is *fully* determined by the violating-pair
    #: fraction, i.e. :meth:`violation_score_from_pair_fraction` returns a
    #: value for **every** input.  The enumerator uses this declaration to
    #: collapse its threshold tests to scalar arithmetic and compact away
    #: per-evidence state; a partial shortcut (non-None for some fractions
    #: only) must leave this False.
    pair_determined: bool = False

    @abc.abstractmethod
    def violation_score(
        self, evidence: EvidenceSet, uncovered_indices: Collection[int]
    ) -> float:
        """Return ``1 - f(D, S_phi)`` for a candidate DC.

        Parameters
        ----------
        evidence:
            The evidence set of the database (or sample).
        uncovered_indices:
            Indices of the distinct evidences whose pairs violate the DC,
            i.e. the evidences with empty intersection with the hitting set.
            Any collection works, including the numpy index arrays the
            enumerator maintains over the packed evidence words.
        """

    def violation_score_from_pair_fraction(
        self, pair_fraction: float, total_pairs: int
    ) -> float | None:
        """Violation score computable from the pair fraction alone, if any.

        Pair-based functions (f1 and the adjusted f1') depend only on the
        fraction of violating pairs, which the enumerator maintains
        incrementally; they override this hook so the enumerator can avoid
        materialising the uncovered-evidence list.  Returns ``None`` for
        functions that need more information.
        """
        del pair_fraction, total_pairs
        return None

    def score(self, evidence: EvidenceSet, uncovered_indices: Collection[int]) -> float:
        """Return ``f(D, S_phi)`` (the satisfaction score)."""
        return 1.0 - self.violation_score(evidence, uncovered_indices)

    def is_approximate(
        self,
        evidence: EvidenceSet,
        uncovered_indices: Collection[int],
        epsilon: float,
    ) -> bool:
        """Whether the candidate passes the ADC test ``1 - f <= epsilon``."""
        return self.violation_score(evidence, uncovered_indices) <= epsilon

    def violation_score_of_dc(self, evidence: EvidenceSet, hitting_mask: int) -> float:
        """Violation score of the DC whose complement-predicate set is ``hitting_mask``."""
        return self.violation_score(evidence, evidence.uncovered_indices(hitting_mask))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class F1(ApproximationFunction):
    """Pair-based approximation function (the measure of [11, 36, 37]).

    ``f1(D, S_phi)`` is the fraction of ordered distinct tuple pairs
    satisfying the DC, so the violation score is the fraction of violating
    pairs.
    """

    name = "f1"
    pair_bound_factor = 1.0
    pair_determined = True

    def violation_score(
        self, evidence: EvidenceSet, uncovered_indices: Collection[int]
    ) -> float:
        total = evidence.total_pairs
        if total == 0:
            return 0.0
        return evidence.pair_count_of(uncovered_indices) / total

    def violation_score_from_pair_fraction(
        self, pair_fraction: float, total_pairs: int
    ) -> float | None:
        del total_pairs
        return pair_fraction


class F2(ApproximationFunction):
    """Tuple-based approximation function (the g2 measure of Kivinen et al.).

    The violation score is the fraction of tuples participating in at least
    one violating pair.
    """

    name = "f2"
    pair_bound_factor = 2.0
    requires_participation = True

    def violation_score(
        self, evidence: EvidenceSet, uncovered_indices: Collection[int]
    ) -> float:
        if evidence.n_rows == 0:
            return 0.0
        involved = evidence.tuples_involved(uncovered_indices)
        return len(involved) / evidence.n_rows


class F3Greedy(ApproximationFunction):
    """Greedy cardinality-repair approximation (Figure 2 of the paper).

    Exact ``f3`` requires a minimum vertex cover of the conflict graph,
    which is NP-hard for DCs, so the paper replaces it by a greedy cover:
    tuples are sorted by the number of violations they participate in and
    selected until the selected tuples cover (at least) all violating pairs.
    The violation score is the fraction of tuples selected.
    """

    name = "f3"
    pair_bound_factor = 2.0
    requires_participation = True

    def violation_score(
        self, evidence: EvidenceSet, uncovered_indices: Collection[int]
    ) -> float:
        if evidence.n_rows == 0:
            return 0.0
        uncovered = np.asarray(
            uncovered_indices
            if isinstance(uncovered_indices, np.ndarray)
            else list(uncovered_indices),
            dtype=np.int64,
        )
        total_violations = evidence.pair_count_of(uncovered)
        if total_violations == 0:
            return 0.0
        per_tuple = evidence.violation_counts_per_tuple(uncovered)
        order = np.argsort(-per_tuple, kind="stable")
        covered = 0
        selected = 0
        for tuple_id in order:
            if covered >= total_violations:
                break
            weight = int(per_tuple[tuple_id])
            if weight == 0:
                break
            covered += weight
            selected += 1
        return selected / evidence.n_rows


class F1Adjusted(ApproximationFunction):
    """The sample-adjusted pair-based function ``f1'`` of Section 7.2.

    When mining from a sample ``J`` with a desired database-level threshold
    ``epsilon`` and error probability ``alpha``, accepting a DC on the sample
    iff ``1 - f1'(J, S_phi) <= epsilon`` guarantees (under the normal
    approximation) that the DC is an ADC of the full database w.r.t.
    ``epsilon`` with probability at least ``1 - alpha``.
    """

    name = "f1'"
    pair_bound_factor = None
    pair_determined = True

    def __init__(self, confidence_z: float) -> None:
        if confidence_z < 0:
            raise ValueError("the confidence multiplier must be non-negative")
        self.confidence_z = float(confidence_z)

    def violation_score(
        self, evidence: EvidenceSet, uncovered_indices: Collection[int]
    ) -> float:
        total = evidence.total_pairs
        if total == 0:
            return 0.0
        p_hat = evidence.pair_count_of(uncovered_indices) / total
        return self._score_from_fraction(p_hat, total)

    def violation_score_from_pair_fraction(
        self, pair_fraction: float, total_pairs: int
    ) -> float | None:
        if total_pairs == 0:
            return 0.0
        return self._score_from_fraction(pair_fraction, total_pairs)

    def _score_from_fraction(self, p_hat: float, total_pairs: int) -> float:
        margin = self.confidence_z * np.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / total_pairs)
        return float(p_hat + margin)


#: The three named functions of the paper, keyed by their report name.
STANDARD_FUNCTIONS: dict[str, ApproximationFunction] = {
    "f1": F1(),
    "f2": F2(),
    "f3": F3Greedy(),
}


def get_approximation_function(name: str) -> ApproximationFunction:
    """Look up one of the standard approximation functions by name."""
    try:
        return STANDARD_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown approximation function {name!r}; expected one of "
            f"{sorted(STANDARD_FUNCTIONS)}"
        ) from None


# ----------------------------------------------------------------------
# Empirical axiom checkers (Definitions 4.1 and 4.2)
# ----------------------------------------------------------------------
def _score_of_predicate_set(
    function: ApproximationFunction, evidence: EvidenceSet, dc_mask: int
) -> float:
    """``f(D, S_phi)`` for the DC whose predicate bitmask is ``dc_mask``."""
    hitting_mask = evidence.space.complement_mask(dc_mask)
    return function.score(evidence, evidence.uncovered_indices(hitting_mask))


def check_monotonicity(
    function: ApproximationFunction,
    evidence: EvidenceSet,
    trials: int = 50,
    max_predicates: int = 4,
    seed: int = 0,
) -> bool:
    """Empirically verify monotonicity (Definition 4.1) on random DC chains.

    Random predicate sets ``S subset S'`` are drawn and the scores compared;
    the check fails on the first witnessed decrease.  The greedy f3 function
    is only *approximately* monotonic, mirroring the paper's caveat that it
    carries no theoretical guarantee; it is therefore excluded from the
    strict test suite assertion and only sanity-checked.
    """
    rng = random.Random(seed)
    indices = list(range(len(evidence.space)))
    if not indices:
        return True
    for _ in range(trials):
        size = rng.randint(1, min(max_predicates, len(indices)))
        base = rng.sample(indices, size)
        extra_candidates = [i for i in indices if i not in base]
        if not extra_candidates:
            continue
        extra = rng.choice(extra_candidates)
        base_mask = sum(1 << i for i in base)
        super_mask = base_mask | (1 << extra)
        if _score_of_predicate_set(function, evidence, base_mask) > _score_of_predicate_set(
            function, evidence, super_mask
        ) + 1e-12:
            return False
    return True


def check_indifference_to_redundancy(
    function: ApproximationFunction,
    evidence: EvidenceSet,
    trials: int = 50,
    max_predicates: int = 4,
    seed: int = 0,
) -> bool:
    """Empirically verify indifference to redundancy (Definition 4.2).

    For random predicate sets, a redundant predicate (one implied by a
    predicate already in the set, hence not changing the satisfying pairs)
    is added and the scores compared for equality.
    """
    rng = random.Random(seed)
    space = evidence.space
    implications: list[tuple[int, int]] = []
    for strong, weak in itertools.permutations(range(len(space)), 2):
        if space[strong].implies(space[weak]) and strong != weak:
            implications.append((strong, weak))
    if not implications:
        return True
    indices = list(range(len(space)))
    for _ in range(trials):
        strong, weak = rng.choice(implications)
        size = rng.randint(0, min(max_predicates, len(indices) - 2))
        others = rng.sample([i for i in indices if i not in (strong, weak)], size)
        base_mask = (1 << strong) | sum(1 << i for i in others)
        redundant_mask = base_mask | (1 << weak)
        base_score = _score_of_predicate_set(function, evidence, base_mask)
        redundant_score = _score_of_predicate_set(function, evidence, redundant_mask)
        if abs(base_score - redundant_score) > 1e-12:
            return False
    return True


def pair_violation_fraction(evidence: EvidenceSet, uncovered_indices: Iterable[int]) -> float:
    """The cheap pair-based violation fraction (``1 - f1``).

    Used as the Proposition 5.3 pre-filter: if this exceeds ``2 * epsilon``
    then neither f2 nor f3 can pass the threshold ``epsilon``.
    """
    total = evidence.total_pairs
    if total == 0:
        return 0.0
    return evidence.pair_count_of(uncovered_indices) / total


def verify_proposition_5_3(
    evidence: EvidenceSet,
    dc_masks: Sequence[int],
    epsilon: float,
) -> bool:
    """Check Proposition 5.3 on concrete DCs: ``1-f_i <= eps`` implies ``1-f1 <= 2 eps``."""
    f1, f2, f3 = F1(), F2(), F3Greedy()
    for dc_mask in dc_masks:
        hitting = evidence.space.complement_mask(dc_mask)
        uncovered = evidence.uncovered_indices(hitting)
        pair_score = f1.violation_score(evidence, uncovered)
        for function in (f2, f3):
            if function.violation_score(evidence, uncovered) <= epsilon and pair_score > 2 * epsilon + 1e-12:
                return False
    return True
