"""Tests of the violation-serving layer against the semantic DC oracles.

Every query of :class:`~repro.incremental.serve.ViolationService` has a
slow, trivially-correct counterpart on :class:`DenialConstraint` (per-pair
re-evaluation): violation counts, violating pairs, per-tuple scores, and
the per-row admission rates of ``check_batch`` are all cross-checked
against it on the running example and random relations.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_random_relation
from repro.core.dc import DenialConstraint
from repro.core.predicate_space import build_predicate_space
from repro.core.repair import build_conflict_graph, vertex_cover_greedy
from repro.incremental import EvidenceStore, ViolationService


@pytest.fixture(scope="module")
def served():
    """Store + service over the running example with its mined ADCs."""
    from repro.data.relation import running_example

    relation = running_example()
    store = EvidenceStore(relation)
    adcs = store.remine(0.05)
    service = ViolationService(store, adcs[:6], epsilon=0.05)
    return relation, store, adcs[:6], service


class TestViolationCounts:
    def test_counts_match_the_pairwise_oracle(self, served):
        relation, _, adcs, service = served
        for index, adc in enumerate(adcs):
            report = service.violations(index)
            assert report.count == adc.constraint.violation_count(relation)
            assert report.total_pairs == relation.n_rows * (relation.n_rows - 1)

    def test_rate_is_count_over_total(self, served):
        _, _, _, service = served
        report = service.violations(0)
        assert report.rate == report.count / report.total_pairs
        assert report.exceeds(report.rate - 1e-12) or report.count == 0
        assert not report.exceeds(1.0)

    def test_resolution_by_constraint_object(self, served):
        relation, _, adcs, service = served
        by_index = service.violations(0)
        by_adc = service.violations(adcs[0])
        by_dc = service.violations(adcs[0].constraint)
        assert by_index.count == by_adc.count == by_dc.count

    def test_unknown_constraint_raises(self, served):
        _, _, _, service = served
        with pytest.raises(KeyError):
            service.violations(DenialConstraint([]))
        with pytest.raises(IndexError):
            service.violations(99)

    def test_report_and_exceeded(self, served):
        _, _, adcs, service = served
        report = service.report()
        assert len(report) == len(adcs)
        # ADCs were mined at epsilon=0.05, so none of them exceeds it.
        assert service.exceeded() == []


class TestPairReplay:
    def test_replayed_pairs_match_the_oracle(self, served):
        relation, _, adcs, service = served
        for index, adc in enumerate(adcs):
            replayed = sorted(service.violating_pairs(index))
            assert replayed == sorted(adc.constraint.violating_pairs(relation))

    def test_replay_count_consistent_with_violations(self, served):
        _, _, adcs, service = served
        for index in range(len(adcs)):
            pairs = list(service.violating_pairs(index))
            assert len(pairs) == service.violations(index).count

    def test_conflict_graph_matches_built_graph(self, served):
        relation, _, adcs, service = served
        graph = service.conflict_graph(0)
        oracle = build_conflict_graph(relation, adcs[0].constraint)
        assert graph.n_tuples == oracle.n_tuples
        assert graph.edges == oracle.edges
        # The replayed graph plugs into the existing repair machinery.
        assert vertex_cover_greedy(graph) == vertex_cover_greedy(oracle)

    def test_replay_tracks_appends(self, served):
        """Queries run against the store's current state, not a snapshot."""
        relation, _, adcs, _ = served
        initial = relation.take(range(12))
        store = EvidenceStore(initial, space=build_predicate_space(relation))
        service = ViolationService(store, adcs)
        before = service.violations(0).count
        assert before == adcs[0].constraint.violation_count(initial)
        store.append(relation.take(range(12, 15)))
        assert service.violations(0).count == adcs[0].constraint.violation_count(relation)


class TestTupleScores:
    def test_scores_match_per_tuple_pair_counts(self, served):
        relation, _, adcs, service = served
        for index, adc in enumerate(adcs):
            scores = service.tuple_scores(index)
            expected = np.zeros(relation.n_rows, dtype=np.int64)
            for left, right in adc.constraint.violating_pairs(relation):
                expected[left] += 1
                expected[right] += 1
            assert np.array_equal(scores, expected)

    def test_repair_ranking_is_sorted_by_score(self, served):
        _, _, adcs, service = served
        for index in range(len(adcs)):
            scores = service.tuple_scores(index)
            ranking = service.repair_ranking(index)
            assert set(ranking) == set(np.flatnonzero(scores > 0).tolist())
            ranked_scores = [int(scores[t]) for t in ranking]
            assert ranked_scores == sorted(ranked_scores, reverse=True)


class TestBatchAdmission:
    def _oracle_rate(self, relation, constraint, row):
        """Violation rate after hypothetically appending exactly ``row``."""
        probe = relation.copy()
        probe.append_rows([row])
        count = constraint.violation_count(probe)
        total = probe.n_rows * (probe.n_rows - 1)
        return count / total

    def test_rates_match_the_single_row_oracle(self, served):
        relation, _, adcs, service = served
        batch = [relation.row(0), relation.row(7), relation.row(14)]
        admissions = service.check_batch(batch)
        assert [entry.row_index for entry in admissions] == [0, 1, 2]
        for entry, row in zip(admissions, batch):
            for dc_index, adc in enumerate(adcs):
                expected = self._oracle_rate(relation, adc.constraint, row)
                assert entry.rates[dc_index] == pytest.approx(expected)

    def test_admissible_iff_every_rate_within_epsilon(self, served):
        relation, _, _, service = served
        admissions = service.check_batch([relation.row(i) for i in range(4)])
        for entry in admissions:
            assert entry.admissible == all(
                rate <= service.epsilon for rate in entry.rates
            )
            assert entry.worst_rate == max(entry.rates)

    def test_batch_verdicts_are_order_independent(self, served):
        relation, _, _, service = served
        batch = [relation.row(3), relation.row(9)]
        forward = service.check_batch(batch)
        backward = service.check_batch(list(reversed(batch)))
        assert forward[0].rates == backward[1].rates
        assert forward[1].rates == backward[0].rates

    def test_empty_batch(self, served):
        _, _, _, service = served
        assert service.check_batch([]) == []

    def test_check_batch_leaves_the_store_untouched(self, served):
        relation, store, _, service = served
        rows_before = store.n_rows
        generation = store.generation
        service.check_batch([relation.row(0)])
        assert store.n_rows == rows_before
        assert store.generation == generation


class TestRandomRelations:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_service_against_oracles_on_random_data(self, seed):
        relation = make_random_relation(n_rows=9, seed=seed)
        store = EvidenceStore(relation)
        adcs = store.remine(0.1)[:4]
        if not adcs:
            pytest.skip("no ADCs mined at this epsilon")
        service = ViolationService(store, adcs, epsilon=0.1)
        for index, adc in enumerate(adcs):
            assert service.violations(index).count == adc.constraint.violation_count(relation)
            assert sorted(service.violating_pairs(index)) == sorted(
                adc.constraint.violating_pairs(relation)
            )
