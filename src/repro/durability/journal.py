"""Durable journals: per-tenant store journals and coordinator submissions.

This module composes the :mod:`~repro.durability.wal` and
:mod:`~repro.durability.snapshot` primitives into the two recovery units
the system needs:

* :class:`StoreJournal` — one directory per tenant store holding a WAL of
  JSON records (``store_created`` / ``rows_appended`` / ``dcs_declared`` /
  ``epsilon``) plus versioned snapshots.  The serving layer writes the
  append record inside :meth:`EvidenceStore.append`'s ``pre_commit`` hook
  — journal first, memory second — so acknowledged state is always on
  disk.  :meth:`StoreJournal.recover` = newest valid snapshot + WAL-tail
  replay, and is **bit-identical** to a fresh build on the surviving rows:
  same finalized :class:`~repro.core.evidence.EvidenceSet` bytes, same DC
  list, same counter values (property-tested over random crash points in
  ``tests/test_durability.py``).
* :class:`SubmissionJournal` — a single WAL of pickled records a
  :class:`~repro.cluster.coordinator.ClusterCoordinator` uses to persist
  an in-flight ``submit``: which task indices have results and what they
  were.  A restarted coordinator re-submits with the same journal and
  resumes from the completed set instead of redoing the fold.  (Pickle is
  acceptable here — the journal lives on the coordinator's own disk, the
  same trust domain as the cluster transport.)

Every record carries a monotone sequence number; a snapshot stores the
watermark of the last record it reflects, so replay after a crash *between*
snapshot rename and WAL truncation simply skips the already-compacted
prefix — the rename is the only ordering that matters.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.data.relation import Relation
from repro.data.types import ColumnType
from repro.durability.snapshot import (
    SnapshotError,
    load_snapshot,
    snapshot_path,
    snapshot_versions,
    write_snapshot,
)
from repro.durability.wal import WriteAheadLog
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans

if TYPE_CHECKING:
    from repro.durability.faults import FaultSchedule
    from repro.incremental.store import EvidenceStore

WAL_NAME = "wal.log"
DEFAULT_SNAPSHOT_BYTES = 4 * 1024 * 1024
DEFAULT_DEDUP_WINDOW = 1024

Row = Mapping[str, object]


class DurabilityError(RuntimeError):
    """A journal invariant is broken (not a recoverable torn tail)."""


class RecoveryError(DurabilityError):
    """The journal directory cannot be recovered into a store."""


def plain_rows(relation: "Relation") -> list[dict[str, object]]:
    """The relation's rows as JSON-clean dicts (numpy scalars unwrapped)."""
    rows = []
    for row in relation.rows():
        rows.append({
            key: value.item() if isinstance(value, np.generic) else value
            for key, value in row.items()
        })
    return rows


def relation_types(relation: "Relation") -> dict[str, str]:
    """The relation's column types as a JSON-clean mapping."""
    return {column.name: column.type.value for column in relation.columns}


class DedupWindow:
    """A bounded, journaled map of append request keys to their results.

    The exactly-once contract of client retries: an append acknowledged
    under request key ``k`` and retried (lost ack, server restart) returns
    the *original* result instead of committing twice.  The window is
    bounded — retries are near-in-time, so a few thousand entries cover
    any sane retry horizon — and rides along in every append WAL record
    and snapshot, so it survives restarts with the data it guards.
    """

    def __init__(self, capacity: int = DEFAULT_DEDUP_WINDOW) -> None:
        self.capacity = max(1, int(capacity))
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0

    def get(self, key: str) -> dict | None:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self.hits += 1
            return result

    def record(self, key: str, result: dict) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def entries(self) -> list[list[object]]:
        """Snapshot-serializable ``[key, result]`` pairs, oldest first."""
        with self._lock:
            return [[key, dict(result)] for key, result in self._entries.items()]

    def load(self, entries: Sequence[Sequence[object]]) -> None:
        with self._lock:
            for key, result in entries:
                self._entries[str(key)] = dict(result)
                self._entries.move_to_end(str(key))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class RecoveryStats:
    """What recovery found and did, for the server's ``stats`` op."""

    source: str  # "wal" | "snapshot" | "snapshot+wal"
    snapshot_version: int | None
    replayed_records: int
    wal_records: int
    truncated_bytes: int
    skipped_snapshots: list[int] = field(default_factory=list)

    def jsonable(self) -> dict[str, object]:
        return {
            "source": self.source,
            "snapshot_version": self.snapshot_version,
            "replayed_records": self.replayed_records,
            "wal_records": self.wal_records,
            "truncated_bytes": self.truncated_bytes,
            "skipped_snapshots": list(self.skipped_snapshots),
        }


@dataclass
class RecoveredStore:
    """The result of :meth:`StoreJournal.recover`."""

    journal: "StoreJournal"
    store: "EvidenceStore"
    name: str
    constraint_specs: list[list[dict]] | None
    epsilon: float | None
    constraint_source: str | None
    dedup_entries: list[list[object]]
    stats: RecoveryStats


class StoreJournal:
    """WAL + snapshots for one tenant store's directory.

    Use :meth:`create` for a brand-new store and :meth:`recover` after a
    restart; the constructor wires an already-positioned WAL.  Writers are
    serialized by the serving layer (one flush loop / one store lock per
    tenant), so the journal itself takes no locks.
    """

    def __init__(
        self,
        directory: str | Path,
        wal: WriteAheadLog,
        *,
        snapshot_every_bytes: int = DEFAULT_SNAPSHOT_BYTES,
        faults: "FaultSchedule | None" = None,
        next_seq: int = 0,
        snapshot_version: int = 0,
        name: str = "",
        types: dict[str, str] | None = None,
        n_seed_rows: int = 0,
    ) -> None:
        self.directory = Path(directory)
        self.wal = wal
        self.snapshot_every_bytes = int(snapshot_every_bytes)
        self.faults = faults
        self._next_seq = int(next_seq)
        self.snapshot_version = int(snapshot_version)
        self.name = name
        self.types = dict(types or {})
        self.n_seed_rows = int(n_seed_rows)
        self.constraint_specs: list[list[dict]] | None = None
        self.epsilon: float | None = None
        self.constraint_source: str | None = None
        self.records_logged = 0
        self.snapshots_written = 0

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        name: str,
        rows: Sequence[Row],
        types: Mapping[str, str] | None = None,
        *,
        fsync: str = "commit",
        snapshot_every_bytes: int = DEFAULT_SNAPSHOT_BYTES,
        faults: "FaultSchedule | None" = None,
    ) -> "StoreJournal":
        """Start a journal for a new store; the creation record is fsynced
        before returning, so an acknowledged ``create_store`` survives."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        wal_path = directory / WAL_NAME
        if wal_path.exists() or snapshot_versions(directory):
            raise DurabilityError(
                f"{directory} already holds a journal; recover it or remove it"
            )
        wal = WriteAheadLog(wal_path, fsync=fsync, faults=faults)
        journal = cls(
            directory, wal,
            snapshot_every_bytes=snapshot_every_bytes, faults=faults,
            name=name, types=dict(types or {}), n_seed_rows=len(rows),
        )
        journal._log({
            "kind": "store_created",
            "name": name,
            "types": dict(types or {}),
            "rows": [dict(row) for row in rows],
        })
        journal.sync()
        return journal

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def _log(self, record: dict) -> None:
        record["seq"] = self._next_seq
        self.wal.append(json.dumps(record, separators=(",", ":")).encode("utf-8"))
        self._next_seq += 1
        self.records_logged += 1

    def sync(self) -> None:
        """The commit point: fsync everything logged so far."""
        self.wal.sync()

    def log_append(
        self, rows: Sequence[Row], requests: Sequence[Sequence[object]]
    ) -> None:
        """Journal one committed append *before* it is applied in memory.

        ``requests`` is ``[[request_key_or_None, n_rows], ...]`` — the
        per-request split of the batch, which replay uses to rebuild the
        dedup window with each request's original result.  Synced before
        returning: this runs in the store's ``pre_commit`` hook, and once
        it returns the append is allowed to become visible (and be
        acknowledged), so it must already be durable.
        """
        journal_start = time.perf_counter()
        self._log({
            "kind": "rows_appended",
            "rows": [dict(row) for row in rows],
            "requests": [[key, int(n)] for key, n in requests],
        })
        self.sync()
        span = obs_spans.current()
        if span is not None:
            span.add_segment(
                "journal_fsync", time.perf_counter() - journal_start
            )

    def log_constraints(
        self, specs: Sequence[Sequence[Mapping[str, object]]],
        epsilon: float, source: str,
    ) -> None:
        """Journal an installed constraint set (mined or declared)."""
        specs = [[dict(p) for p in spec] for spec in specs]
        self._log({
            "kind": "dcs_declared",
            "specs": specs,
            "epsilon": float(epsilon),
            "source": source,
        })
        self.sync()
        self.constraint_specs = specs
        self.epsilon = float(epsilon)
        self.constraint_source = source

    def log_epsilon(self, epsilon: float) -> None:
        """Journal a served-epsilon change."""
        self._log({"kind": "epsilon", "epsilon": float(epsilon)})
        self.sync()
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def maybe_snapshot(self, store: "EvidenceStore", dedup: DedupWindow | None) -> bool:
        """Compact when the WAL has outgrown ``snapshot_every_bytes``."""
        if self.wal.size_bytes < self.snapshot_every_bytes:
            return False
        self.snapshot(store, dedup)
        return True

    def snapshot(self, store: "EvidenceStore", dedup: DedupWindow | None) -> int:
        """Write a snapshot of ``store`` and truncate the log; returns the
        new version.

        Crash ordering: the tmp write and rename are atomic per
        :func:`~repro.durability.snapshot.write_snapshot`; a crash after
        the rename but before the WAL reset leaves both, and the stored
        ``last_seq`` watermark makes the stale WAL prefix a no-op on
        replay.  Old snapshot versions are deleted last — recovery always
        prefers the newest loadable version anyway.
        """
        snapshot_start = time.perf_counter()
        words, totals, part_keys, part_counts = store.partial.state_arrays()
        version = self.snapshot_version + 1
        meta = {
            "version": version,
            "name": self.name,
            "types": self.types,
            "rows": plain_rows(store.relation),
            "n_seed_rows": self.n_seed_rows,
            "generation": store.generation,
            "n_words": store.partial.n_words,
            "include_participation": store.include_participation,
            "last_seq": self._next_seq - 1,
            "constraints": {
                "specs": self.constraint_specs,
                "epsilon": self.epsilon,
                "source": self.constraint_source,
            },
            "dedup": dedup.entries() if dedup is not None else [],
        }
        arrays = {
            "words": words, "totals": totals,
            "part_keys": part_keys, "part_counts": part_counts,
        }
        write_snapshot(snapshot_path(self.directory, version), meta, arrays,
                       faults=self.faults)
        self.snapshot_version = version
        self.snapshots_written += 1
        if self.faults is not None and self.faults.at("snapshot_reset").crash:
            from repro.durability.faults import SimulatedCrash

            raise SimulatedCrash(f"crash before resetting {self.wal.path.name}")
        self.wal.reset()
        for old in snapshot_versions(self.directory):
            if old < version:
                snapshot_path(self.directory, old).unlink(missing_ok=True)
        obs_metrics.SNAPSHOT_WRITES.inc()
        obs_metrics.SNAPSHOT_SECONDS.observe(time.perf_counter() - snapshot_start)
        return version

    @property
    def closed(self) -> bool:
        return self.wal.closed

    def close(self) -> None:
        self.wal.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        fsync: str = "commit",
        snapshot_every_bytes: int = DEFAULT_SNAPSHOT_BYTES,
        faults: "FaultSchedule | None" = None,
        store_workers: int = 1,
        cluster: object | None = None,
    ) -> RecoveredStore:
        """Rebuild the store this directory journals.

        Loads the newest valid snapshot (corrupt versions are skipped,
        recorded in the stats), replays every WAL record past its
        watermark, and returns the reassembled store plus everything the
        serving layer needs to resume: constraint specs to reinstall,
        epsilon, and the dedup window.  Raises :class:`RecoveryError` when
        the directory holds no recoverable store (no WAL, or an empty WAL
        with no snapshot).
        """
        from repro.core.predicate_space import build_predicate_space
        from repro.engine.partial import PartialEvidenceSet
        from repro.incremental.store import EvidenceStore

        recovery_start = time.perf_counter()
        directory = Path(directory)
        wal_path = directory / WAL_NAME
        if not wal_path.exists():
            raise RecoveryError(f"{directory} has no write-ahead log")
        wal = WriteAheadLog(wal_path, fsync=fsync, faults=faults)

        try:
            records = []
            for payload in wal.replay():
                try:
                    records.append(json.loads(payload.decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise RecoveryError(
                        f"{wal_path}: undecodable record {len(records)}: {error}"
                    ) from error

            store: "EvidenceStore | None" = None
            name = ""
            types: dict[str, str] = {}
            n_seed_rows = 0
            last_seq = -1
            snapshot_version: int | None = None
            skipped: list[int] = []
            constraint_specs: list[list[dict]] | None = None
            epsilon: float | None = None
            constraint_source: str | None = None
            dedup_entries: list[list[object]] = []

            for version in reversed(snapshot_versions(directory)):
                try:
                    meta, arrays = load_snapshot(snapshot_path(directory, version))
                except SnapshotError:
                    skipped.append(version)
                    continue
                name = str(meta["name"])
                types = dict(meta["types"])
                n_seed_rows = int(meta["n_seed_rows"])
                column_types = {
                    column: ColumnType(text) for column, text in types.items()
                }
                relation = Relation.from_records(name, meta["rows"], column_types)
                seed = Relation.from_records(
                    name, meta["rows"][:n_seed_rows], column_types
                )
                space = build_predicate_space(seed)
                partial = PartialEvidenceSet.from_state_arrays(
                    relation.n_rows,
                    int(meta["n_words"]),
                    bool(meta["include_participation"]),
                    arrays["words"], arrays["totals"],
                    arrays["part_keys"], arrays["part_counts"],
                )
                store = EvidenceStore.from_state(
                    relation, space, partial,
                    generation=int(meta["generation"]),
                    n_workers=store_workers, cluster=cluster,
                )
                last_seq = int(meta["last_seq"])
                snapshot_version = version
                constraints_meta = meta.get("constraints") or {}
                constraint_specs = constraints_meta.get("specs")
                epsilon = constraints_meta.get("epsilon")
                constraint_source = constraints_meta.get("source")
                dedup_entries = list(meta.get("dedup", []))
                break

            replayed = 0
            max_seq = last_seq
            for record in records:
                seq = int(record.get("seq", -1))
                max_seq = max(max_seq, seq)
                if seq <= last_seq:
                    continue  # already reflected in the snapshot
                kind = record.get("kind")
                replayed += 1
                if kind == "store_created":
                    if store is not None:
                        raise RecoveryError(
                            f"{wal_path}: duplicate store_created at seq {seq}"
                        )
                    name = str(record["name"])
                    types = dict(record["types"])
                    n_seed_rows = len(record["rows"])
                    column_types = {
                        column: ColumnType(text) for column, text in types.items()
                    } or None
                    store = EvidenceStore(
                        Relation.from_records(name, record["rows"], column_types),
                        n_workers=store_workers, cluster=cluster,
                    )
                elif kind == "rows_appended":
                    if store is None:
                        raise RecoveryError(
                            f"{wal_path}: rows_appended at seq {seq} precedes "
                            "any store_created record or snapshot"
                        )
                    store.append(record["rows"])
                    requests = record.get("requests") or []
                    for key, n_rows in requests:
                        if key is None:
                            continue
                        dedup_entries.append([key, {
                            "appended": int(n_rows),
                            "n_rows": store.n_rows,
                            "generation": store.generation,
                            "coalesced": len(requests),
                        }])
                elif kind == "dcs_declared":
                    constraint_specs = record["specs"]
                    epsilon = float(record["epsilon"])
                    constraint_source = record.get("source")
                elif kind == "epsilon":
                    epsilon = float(record["epsilon"])
                else:
                    raise RecoveryError(
                        f"{wal_path}: unknown record kind {kind!r} at seq {seq}"
                    )

            if store is None:
                raise RecoveryError(
                    f"{directory} holds no store: empty write-ahead log and "
                    "no loadable snapshot"
                )
        except BaseException:
            wal.close()
            raise

        journal = cls(
            directory, wal,
            snapshot_every_bytes=snapshot_every_bytes, faults=faults,
            next_seq=max_seq + 1,
            snapshot_version=snapshot_version or 0,
            name=name, types=types, n_seed_rows=n_seed_rows,
        )
        journal.constraint_specs = constraint_specs
        journal.epsilon = epsilon
        journal.constraint_source = constraint_source
        stats = RecoveryStats(
            source=(
                "snapshot+wal" if snapshot_version is not None and replayed
                else "snapshot" if snapshot_version is not None
                else "wal"
            ),
            snapshot_version=snapshot_version,
            replayed_records=replayed,
            wal_records=wal.n_records,
            truncated_bytes=wal.truncated_bytes,
            skipped_snapshots=skipped,
        )
        obs_metrics.RECOVERY_SECONDS.observe(time.perf_counter() - recovery_start)
        obs_metrics.RECOVERY_REPLAYED.inc(replayed)
        return RecoveredStore(
            journal=journal, store=store, name=name,
            constraint_specs=constraint_specs, epsilon=epsilon,
            constraint_source=constraint_source,
            dedup_entries=dedup_entries, stats=stats,
        )


class SubmissionJournal:
    """Durable progress of one coordinator ``submit`` call.

    Records (pickled tuples): ``("begin", n_tasks, fingerprint)`` once,
    ``("result", index, payload)`` per landed task, ``("finished",)`` at
    the end.  :meth:`begin` on a journal that already holds records
    *resumes*: it verifies the submission shape matches and hands back the
    completed ``{index: payload}`` map so the coordinator only runs what
    is missing.  Defaults to ``fsync="always"`` — each landed result is
    durable the moment it is recorded.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "always",
        faults: "FaultSchedule | None" = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.path, fsync=fsync, faults=faults)
        self._begin: tuple[int, object] | None = None
        self.finished = False
        self.completed: dict[int, object] = {}
        for payload in self.wal.replay():
            record = pickle.loads(payload)
            kind = record[0]
            if kind == "begin":
                self._begin = (int(record[1]), record[2])
            elif kind == "result":
                self.completed[int(record[1])] = record[2]
            elif kind == "finished":
                self.finished = True
            else:  # pragma: no cover - future format drift
                raise DurabilityError(f"{path}: unknown record kind {kind!r}")

    def begin(self, n_tasks: int, fingerprint: object = None) -> dict[int, object]:
        """Start or resume a submission; returns already-completed results."""
        if self._begin is None:
            self._begin = (int(n_tasks), fingerprint)
            self.wal.append(pickle.dumps(("begin", int(n_tasks), fingerprint)))
            self.wal.sync()
            return {}
        if self._begin != (int(n_tasks), fingerprint):
            raise DurabilityError(
                f"{self.path} journals a different submission "
                f"({self._begin} != {(int(n_tasks), fingerprint)}); "
                "use a fresh journal path per submission"
            )
        return dict(self.completed)

    def record_result(self, index: int, payload: object) -> None:
        """Persist one landed task result."""
        self.wal.append(pickle.dumps(("result", int(index), payload)))
        self.completed[int(index)] = payload

    def finish(self) -> None:
        """Mark the submission complete (idempotent)."""
        if not self.finished:
            self.wal.append(pickle.dumps(("finished",)))
            self.wal.sync()
            self.finished = True

    @property
    def closed(self) -> bool:
        return self.wal.closed

    def close(self) -> None:
        self.wal.close()
