"""Pure-numpy reference implementation of the native kernel contract.

This backend is the semantic ground truth of :mod:`repro.native`: every
compiled backend (C extension, numba) must be bit-identical to the functions
here, and the dispatch layer enforces that with a probe run before trusting
a compiled library.  It is also the operative backend under
``REPRO_NATIVE=0`` and on hosts with no C compiler, so it is written with
the same per-node numpy discipline the pre-native enumeration core used —
fused word loops over transposed planes, no Python-int bitmask churn.

Two layers share this module:

* **Flat kernels** (:class:`NumpyKernels`) — stateless array-in/array-out
  functions mirroring the C entry points one to one (popcount,
  intersection counts, criticality apply/undo, the tile pass).  These are
  what the hypothesis identity tests and the dispatch probe exercise.
* **Search workspace** (:class:`NumpySearchWorkspace`) — the arena the
  explicit-stack ``ADCEnum._search`` drives.  One workspace owns per-depth
  slots of reusable buffers (evidence plane, overlap counters, candidate
  planes, criticality rows) so a search node allocates nothing; the
  compiled workspaces implement the same interface with the buffers handed
  to C.
"""

from __future__ import annotations

import numpy as np

NAME = "numpy"

#: ``try_hit`` outcomes (shared by every backend).
PRUNED = 0
REPLAYED = 1
DESCENDED = 2

#: Selection-rule codes of ``expand`` (shared by every backend).
SELECT_MAX = 0
SELECT_MIN = 1
SELECT_RANDOM = 2

_SELECTION_CODES = {"max": SELECT_MAX, "min": SELECT_MIN, "random": SELECT_RANDOM}


def selection_code(selection: str) -> int:
    """Map an ADCEnum selection-strategy name to its kernel code."""
    return _SELECTION_CODES[selection]


# ---------------------------------------------------------------------------
# Flat kernels
# ---------------------------------------------------------------------------
class NumpyKernels:
    """Stateless reference kernels (see the C source for the contracts)."""

    name = NAME

    @staticmethod
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (uint8 result)."""
        return np.bitwise_count(words)

    @staticmethod
    def intersection_counts(ev_planes: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
        """Per-column ``|evidence ∩ mask|`` over a transposed word plane.

        ``ev_planes`` is ``(n_words, E)`` uint64, ``mask_words`` ``(n_words,)``;
        returns uint32 counts of length ``E``.  Unrolled over the (short)
        word axis so each pass is one contiguous 1-D popcount.
        """
        n_words = ev_planes.shape[0]
        counts = np.bitwise_count(ev_planes[0] & mask_words[0]).astype(np.uint32)
        for word in range(1, n_words):
            counts += np.bitwise_count(ev_planes[word] & mask_words[word])
        return counts

    @staticmethod
    def crit_apply(
        rows: np.ndarray, depth: int, new_row: np.ndarray, covers: np.ndarray
    ) -> tuple[bool, np.ndarray]:
        """Criticality push: strip ``covers`` from ``rows[:depth]``, install
        ``new_row`` at ``depth``; returns ``(viable, removed)`` where
        ``removed`` restores the stripped bits via :meth:`crit_undo`."""
        members = rows[:depth]
        removed = members & covers
        members ^= removed
        viable = bool(members.any(axis=1).all()) if depth else True
        rows[depth] = new_row
        return viable, removed

    @staticmethod
    def crit_undo(rows: np.ndarray, depth: int, removed: np.ndarray) -> None:
        """Criticality pop: restore the bits ``crit_apply`` stripped."""
        rows[:depth] |= removed

    @staticmethod
    def tile_plane(
        kinds: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        lookup: np.ndarray,
        i0: int,
        i1: int,
        j0: int,
        j1: int,
        n_words: int,
    ) -> np.ndarray:
        """Evidence-word plane of one ordered-pair tile.

        ``kinds[g]`` selects group ``g``'s category rule (0 single-tuple,
        1 numeric pair, 2 string pair) over the per-row float64 vectors
        ``a[g]``/``b[g]``; ``lookup`` is ``(G, 3, n_words)``.  Returns the
        ``(tile_area, n_words)`` uint64 plane in pair-major order.
        """
        height, width = i1 - i0, j1 - j0
        plane = np.zeros((height, width, n_words), dtype=np.uint64)
        for g in range(len(kinds)):
            kind = int(kinds[g])
            if kind == 0:
                categories = np.broadcast_to(
                    a[g, i0:i1].astype(np.int64)[:, None], (height, width)
                )
            elif kind == 1:
                sign = np.sign(a[g, i0:i1, None] - b[g, None, j0:j1])
                categories = (sign + 1).astype(np.int64)
            else:
                equal = a[g, i0:i1, None] == b[g, None, j0:j1]
                categories = equal.astype(np.int64)
            plane |= lookup[g][categories]
        return plane.reshape(-1, n_words)

    @staticmethod
    def unique_rows(words: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distinct rows of a 2-D uint64 array: ``(rows, inverse, counts)``.

        Rows come back in the canonical lexicographic order (word 0
        primary), explicitly — not ``np.unique``'s byte order, which would
        depend on the platform's endianness.  This is the dedup step of
        every evidence builder (:func:`repro.core.evidence.unique_word_rows`
        dispatches here), dominated by the sort; the compiled backend
        replaces it with a hash pass over the rows.
        """
        contiguous = np.ascontiguousarray(words, dtype=np.uint64)
        n, n_words = contiguous.shape
        if n == 0:
            return contiguous, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        void_view = contiguous.view([("", contiguous.dtype)] * n_words).ravel()
        _, first_index, inverse, counts = np.unique(
            void_view, return_index=True, return_inverse=True, return_counts=True
        )
        rows = contiguous[first_index]
        keys = tuple(rows[:, word] for word in range(n_words - 1, -1, -1))
        order = np.lexsort(keys)
        rank = np.empty(len(rows), dtype=np.int64)
        rank[order] = np.arange(len(rows), dtype=np.int64)
        return rows[order], rank[inverse.ravel()], counts[order]


# ---------------------------------------------------------------------------
# Search workspace
# ---------------------------------------------------------------------------
class _Slot:
    """Reusable buffers of one search depth, grown on demand.

    ``ev`` is the depth's transposed evidence plane stored in a
    ``(n_words, capacity)`` arena; the live view is ``ev[:, :E]`` with the
    arena width as row stride, which is exactly the layout the C kernels
    consume (stride in elements, rows contiguous).
    """

    __slots__ = (
        "capacity", "ev", "cin", "red", "pairs", "uncov",
        "cand_in", "to_try", "cand_loop", "uncov_bits",
        "block_capacity", "elements", "covers_block", "crit_block", "child_bits_block",
        "addr",  # compiled backends cache buffer addresses here (None = stale)
    )

    def __init__(self, n_words: int, n_ev_words: int, capacity: int, track_uncov: bool) -> None:
        self.capacity = capacity
        self.ev = np.zeros((n_words, capacity), dtype=np.uint64)
        self.cin = np.zeros(capacity, dtype=np.uint32)
        self.red = np.zeros(capacity, dtype=np.uint32)
        self.pairs = np.zeros(capacity, dtype=np.int64)
        self.uncov = np.zeros(capacity, dtype=np.int64) if track_uncov else None
        self.cand_in = np.zeros(n_words, dtype=np.uint64)
        self.to_try = np.zeros(n_words, dtype=np.uint64)
        self.cand_loop = np.zeros(n_words, dtype=np.uint64)
        self.uncov_bits = np.zeros(n_ev_words, dtype=np.uint64)
        self.block_capacity = 0
        self.elements = None
        self.covers_block = None
        self.crit_block = None
        self.child_bits_block = None
        self.addr = None

    def grow(self, n_words: int, capacity: int) -> None:
        self.capacity = capacity
        self.ev = np.zeros((n_words, capacity), dtype=np.uint64)
        self.cin = np.zeros(capacity, dtype=np.uint32)
        self.red = np.zeros(capacity, dtype=np.uint32)
        self.pairs = np.zeros(capacity, dtype=np.int64)
        if self.uncov is not None:
            self.uncov = np.zeros(capacity, dtype=np.int64)
        self.addr = None

    def grow_blocks(self, n_ev_words: int, capacity: int) -> None:
        self.block_capacity = capacity
        self.elements = np.zeros(capacity, dtype=np.int32)
        self.covers_block = np.zeros((capacity, n_ev_words), dtype=np.uint64)
        self.crit_block = np.zeros((capacity, n_ev_words), dtype=np.uint64)
        self.child_bits_block = np.zeros((capacity, n_ev_words), dtype=np.uint64)
        self.addr = None


class NumpySearchWorkspace:
    """Arena-backed search state driven by the explicit-stack ``_search``.

    The workspace owns one :class:`_Slot` per search depth plus the shared
    criticality plane; the driver threads only scalars (depth, evidence
    count, pair totals) through its stack frames.  Slot ``d + 1`` is always
    written by an operation on slot ``d`` (``skip_child`` / ``try_hit``), so
    aliasing between a node and its descendants is impossible by
    construction.

    Contracts (identical across backends; statuses/codes are the module
    constants):

    * ``expand(d, E, selection, call_index)`` → ``(chosen, n_selectable,
      lost_pairs, n_to_try)``: picks the evidence, fills the slot's
      ``to_try``/``cand_loop`` planes and reduced overlap counts.
    * ``skip_child(d, E, compact)`` → child evidence count; writes slot
      ``d + 1`` (candidate plane = parent's ``cand_loop``).
    * ``hit_prepare(d, E, k)``: extracts the ``k`` hit-loop elements with
      their coverage/criticality/child-uncovered rows.
    * ``try_hit(d, E, position, descend)`` → ``(status, element, E_child,
      child_pairs)``: one hit-loop step — criticality push, candidate
      re-add, and (when descending) the full child build in slot ``d + 1``.
      ``DESCENDED`` leaves the criticality planes applied; the driver calls
      ``crit_pop`` when the subtree returns.
    """

    def __init__(
        self,
        ev_planes: np.ndarray,
        counts: np.ndarray,
        contains_ev_words: np.ndarray,
        group_words_inv: np.ndarray,
        full_cand_words: np.ndarray,
        n_evidences: int,
        n_predicates: int,
        track_uncov: bool,
    ) -> None:
        self._ev_root = np.ascontiguousarray(ev_planes, dtype=np.uint64)
        self._counts_root = np.ascontiguousarray(counts, dtype=np.int64)
        self._contains = np.ascontiguousarray(contains_ev_words, dtype=np.uint64)
        self._group_inv = np.ascontiguousarray(group_words_inv, dtype=np.uint64)
        self._full_cand = np.ascontiguousarray(full_cand_words, dtype=np.uint64)
        self.n_evidences = int(n_evidences)
        self.n_predicates = int(n_predicates)
        self.n_words = self._ev_root.shape[0] if self._ev_root.ndim == 2 else 1
        self.n_ev_words = self._contains.shape[1]
        self._track_uncov = bool(track_uncov)
        self._slots: list[_Slot | None] = []
        # Criticality planes over evidence bits, one row per hitting-set
        # member; removed-token stacks are allocated per depth on first use.
        self._crit_rows = np.zeros((n_predicates + 1, self.n_ev_words), dtype=np.uint64)
        self._crit_depth = 0
        self._crit_removed: list[np.ndarray | None] = [None] * (n_predicates + 1)

    # -- slot management ----------------------------------------------------
    def _slot(self, depth: int, min_capacity: int) -> _Slot:
        while len(self._slots) <= depth:
            self._slots.append(None)
        slot = self._slots[depth]
        if slot is None:
            slot = _Slot(
                self.n_words, self.n_ev_words, max(min_capacity, 1), self._track_uncov
            )
            self._slots[depth] = slot
        elif slot.capacity < min_capacity:
            slot.grow(self.n_words, min_capacity)
        return slot

    def init_root(self) -> int:
        """Load the root node into slot 0; returns its evidence count."""
        n = self.n_evidences
        slot = self._slot(0, n)
        slot.ev[:, :n] = self._ev_root
        slot.pairs[:n] = self._counts_root
        slot.cin[:n] = NumpyKernels.intersection_counts(self._ev_root, self._full_cand)
        slot.cand_in[:] = self._full_cand
        slot.uncov_bits[:] = 0
        full_words, remainder = divmod(n, 64)
        slot.uncov_bits[:full_words] = np.uint64(0xFFFFFFFFFFFFFFFF)
        if remainder:
            slot.uncov_bits[full_words] = np.uint64((1 << remainder) - 1)
        if slot.uncov is not None:
            slot.uncov[:n] = np.arange(n, dtype=np.int64)
        self._crit_depth = 0
        return n

    # -- views (read-only use by the driver's cold paths) -------------------
    def cin_view(self, depth: int, n: int) -> np.ndarray:
        return self._slots[depth].cin[:n]

    def red_view(self, depth: int, n: int) -> np.ndarray:
        return self._slots[depth].red[:n]

    def pairs_view(self, depth: int, n: int) -> np.ndarray:
        return self._slots[depth].pairs[:n]

    def uncov_view(self, depth: int, n: int) -> np.ndarray:
        return self._slots[depth].uncov[:n]

    def uncov_bits_view(self, depth: int) -> np.ndarray:
        return self._slots[depth].uncov_bits

    def elements_list(self, depth: int, k: int) -> list[int]:
        return self._slots[depth].elements[:k].tolist()

    def crit_active_rows(self) -> np.ndarray:
        return self._crit_rows[: self._crit_depth]

    @property
    def crit_depth(self) -> int:
        return self._crit_depth

    # -- node kernels -------------------------------------------------------
    def expand(
        self, depth: int, n: int, selection: int, call_index: int
    ) -> tuple[int, int, int, int]:
        slot = self._slots[depth]
        cin = slot.cin[:n]
        selectable = (cin > 0).nonzero()[0]
        n_sel = int(selectable.size)
        if n_sel == 0:
            return -1, 0, 0, 0
        if selection == SELECT_RANDOM:
            chosen = int(selectable[call_index % n_sel])
        elif selection == SELECT_MAX:
            chosen = int(selectable[int(cin[selectable].argmax())])
        else:
            chosen = int(selectable[int(cin[selectable].argmin())])
        chosen_words = slot.ev[:, chosen]
        np.bitwise_and(slot.cand_in, chosen_words, out=slot.to_try)
        np.bitwise_and(slot.cand_in, ~chosen_words, out=slot.cand_loop)
        red = slot.red[:n]
        red[:] = cin
        ev = slot.ev[:, :n]
        for word in range(self.n_words):
            mask = slot.to_try[word]
            if mask:
                red -= np.bitwise_count(ev[word] & mask)
        lost = int(slot.pairs[:n][red == 0].sum())
        n_to_try = int(np.bitwise_count(slot.to_try).sum())
        return chosen, n_sel, lost, n_to_try

    def skip_child(self, depth: int, n: int, compact: bool) -> int:
        slot = self._slots[depth]
        red = slot.red[:n]
        if compact:
            alive = (red > 0).nonzero()[0]
            m = int(alive.size)
            child = self._slot(depth + 1, m)
            child.ev[:, :m] = slot.ev[:, :n].take(alive, axis=1)
            child.cin[:m] = red.take(alive)
            child.pairs[:m] = slot.pairs[:n].take(alive)
            if child.uncov is not None:
                child.uncov[:m] = slot.uncov[:n].take(alive)
        else:
            m = n
            child = self._slot(depth + 1, m)
            child.ev[:, :m] = slot.ev[:, :n]
            child.cin[:m] = red
            child.pairs[:m] = slot.pairs[:n]
            if child.uncov is not None:
                child.uncov[:m] = slot.uncov[:n]
        child.cand_in[:] = slot.cand_loop
        child.uncov_bits[:] = slot.uncov_bits
        return m

    def hit_prepare(self, depth: int, n: int, k: int) -> int:
        slot = self._slots[depth]
        if slot.block_capacity < k:
            slot.grow_blocks(self.n_ev_words, max(k, 1))
        # Ascending set-bit positions of to_try, via the same bit-twiddling
        # walk the compiled kernels use.
        position = 0
        base = 0
        for word in slot.to_try.tolist():
            while word:
                low = word & -word
                slot.elements[position] = base + low.bit_length() - 1
                position += 1
                word ^= low
            base += 64
        elements = slot.elements[:position]
        covers = self._contains[elements]
        slot.covers_block[:position] = covers
        np.bitwise_and(covers, slot.uncov_bits, out=slot.crit_block[:position])
        np.bitwise_and(slot.uncov_bits, ~covers, out=slot.child_bits_block[:position])
        return position

    def try_hit(
        self, depth: int, n: int, position: int, descend: bool
    ) -> tuple[int, int, int, int]:
        slot = self._slots[depth]
        element = int(slot.elements[position])
        covers = slot.covers_block[position]
        crit_depth = self._crit_depth
        # Criticality push.  The removed token lands in the per-depth stack
        # slot: deeper applies use deeper slots, so the token survives the
        # whole descended subtree untouched until crit_pop consumes it.
        removed = self._removed_buffer(crit_depth)
        members = self._crit_rows[:crit_depth]
        np.bitwise_and(members, covers, out=removed)
        members ^= removed
        viable = bool(members.any(axis=1).all()) if crit_depth else True
        self._crit_rows[crit_depth] = slot.crit_block[position]
        if not viable:
            members |= removed
            return PRUNED, element, 0, 0
        slot.cand_loop[element >> 6] |= np.uint64(1) << np.uint64(element & 63)
        if not descend:
            members |= removed
            return REPLAYED, element, 0, 0
        self._crit_depth = crit_depth + 1

        bit = np.uint64(1) << np.uint64(element & 63)
        keep = ((slot.ev[element >> 6, :n] & bit) == 0).nonzero()[0]
        m = int(keep.size)
        child = self._slot(depth + 1, m)
        child.ev[:, :m] = slot.ev[:, :n].take(keep, axis=1)
        child.pairs[:m] = slot.pairs[:n].take(keep)
        if child.uncov is not None:
            child.uncov[:m] = slot.uncov[:n].take(keep)
        child_pairs = int(child.pairs[:m].sum())
        np.bitwise_and(slot.cand_loop, self._group_inv[element], out=child.cand_in)
        child.cin[:m] = NumpyKernels.intersection_counts(child.ev[:, :m], child.cand_in)
        child.uncov_bits[:] = slot.child_bits_block[position]
        return DESCENDED, element, m, child_pairs

    def crit_pop(self) -> None:
        """Undo the criticality push of the most recent ``DESCENDED`` hit."""
        self._crit_depth -= 1
        depth = self._crit_depth
        self._crit_rows[:depth] |= self._removed_buffer(depth)

    def _removed_buffer(self, crit_depth: int) -> np.ndarray:
        buffer = self._crit_removed[crit_depth]
        if buffer is None:
            buffer = np.zeros((crit_depth, self.n_ev_words), dtype=np.uint64)
            self._crit_removed[crit_depth] = buffer
        return buffer
