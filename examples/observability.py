"""Observability walkthrough: metrics, trace spans, and Prometheus.

The obs layer (``repro.obs``) gives the serving stack three read-out
surfaces, and this walkthrough exercises all of them against a real
server on a loopback port:

1. **Trace spans** — any request carrying ``trace=True`` comes back with
   a per-segment latency breakdown (``queue`` / ``fold`` /
   ``journal_fsync`` / ``commit`` / ``ack`` for a durable append), so one
   slow request explains itself without log archaeology;
2. **The ``metrics`` wire op** — a JSON snapshot of the process metrics
   registry over the same TCP connection the data plane uses;
3. **The Prometheus endpoint** — ``--metrics-port`` (or
   ``metrics_port=`` on :class:`~repro.serve.server.ServerThread`)
   serves the standard text exposition for scraping, plus a
   ``/healthz`` liveness probe;
4. **Cluster federation** — behind a
   :class:`~repro.cluster.local.LocalCluster`, traced appends come back
   with per-task *worker child spans* stitched into the trace, and the
   exposition federates every worker's ``repro_worker_*`` series under
   a ``worker="<id>"`` label.

Metrics are on by default; export ``REPRO_OBS=0`` to disable every
counter at the source.  Run with::

    PYTHONPATH=src python examples/observability.py
"""

from __future__ import annotations

import urllib.request

from repro import running_example
from repro.cluster import LocalCluster
from repro.serve import ServeClient, ServerThread

EPSILON = 0.05


def main() -> None:
    relation = running_example()
    rows = [relation.row(i) for i in range(relation.n_rows)]

    # metrics_port=0 picks a free port, same as the main listener.
    with ServerThread(metrics_port=0) as (host, port):
        print(f"server on {host}:{port}")
        with ServeClient(host, port) as client:
            client.create_store("tax", rows[:10])
            client.remine("tax", epsilon=EPSILON, limit=4)

            # 1. A traced append: the response carries the span.
            result = client.append("tax", rows[10:13], trace=True)
            trace = result["trace"]
            print(f"traced append {trace['trace_id']}: "
                  f"{trace['seconds'] * 1e3:.2f} ms total")
            for name, seconds in sorted(
                trace["segments"].items(), key=lambda kv: -kv[1]
            ):
                print(f"  {name:<14} {seconds * 1e6:9.1f} us")

            # Remine responses also report enumeration statistics.
            mined = client.remine("tax", epsilon=EPSILON, trace=True)
            stats = mined["enumeration"]
            print(f"remine visited {stats['recursive_calls']} nodes "
                  f"({stats['nodes_per_second']:.0f}/s), "
                  f"mined {mined['mined']} ADCs")

            # 2. The metrics wire op: JSON snapshot of the registry.
            families = client.metrics()["metrics"]
            appended = families["repro_store_appended_rows_total"]
            for sample in appended["samples"]:
                print(f"appended rows {sample['labels']}: "
                      f"{sample['value']:.0f}")
            latency = families["repro_serve_request_seconds"]
            for sample in latency["samples"]:
                if sample["labels"]["op"] == "append":
                    mean_ms = sample["sum"] / sample["count"] * 1e3
                    print(f"append requests: {sample['count']} "
                          f"(mean {mean_ms:.2f} ms)")

        print("client disconnected")

    # 3. The Prometheus endpoint, on a fresh server with traffic.
    thread = ServerThread(metrics_port=0)
    try:
        host, port = thread.address
        with ServeClient(host, port) as client:
            client.create_store("tax", rows[:10])
            client.append("tax", rows[10:12])
        metrics_host, metrics_port = thread.metrics_address
        url = f"http://{metrics_host}:{metrics_port}/metrics"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            text = response.read().decode("utf-8")
        print(f"prometheus exposition from {url}: {len(text)} bytes")
        for line in text.splitlines():
            if line.startswith("repro_serve_requests_total{"):
                print(f"  {line}")
    finally:
        thread.stop()

    # 4. The same server backed by a cluster: the traced append's fold
    # runs on in-process workers, each task comes back as a stitched
    # child span, and the exposition federates worker registries.
    with LocalCluster(2, transport="local") as cluster:
        thread = ServerThread(cluster=cluster, metrics_port=0)
        try:
            host, port = thread.address
            with ServeClient(host, port) as client:
                client.create_store("tax", rows[:10])
                result = client.append("tax", rows[10:14], trace=True)
                trace = result["trace"]
                print(f"cluster-traced append: "
                      f"{len(trace['children'])} worker task spans")
                for child in trace["children"]:
                    compute = child["segments"]["compute"]
                    print(f"  worker {child['worker']} task {child['task']}: "
                          f"{child['wall_seconds'] * 1e3:.2f} ms wall "
                          f"({compute * 1e6:.0f} us compute, "
                          f"{child['tiles']} tiles, "
                          f"{child['queue_network_seconds'] * 1e6:.0f} us "
                          f"queue+network)")
            metrics_host, metrics_port = thread.metrics_address
            url = f"http://{metrics_host}:{metrics_port}/metrics"
            with urllib.request.urlopen(url, timeout=10.0) as response:
                federated = response.read().decode("utf-8")
            workers = sorted({
                line.split('worker="')[1].split('"')[0]
                for line in federated.splitlines()
                if line.startswith("repro_worker_tasks_total{")
                and 'worker="' in line
            })
            print(f"federated exposition: worker series from {workers}")
        finally:
            thread.stop()


if __name__ == "__main__":
    main()
