"""Incremental store — delta append vs full evidence rebuild.

Not a paper figure: this benchmark tracks the incremental evidence store of
``repro.incremental``.  Starting from an ``n``-row seed build, it appends a
batch of ``m`` rows through :meth:`EvidenceStore.append` (delta tiles +
partial rebase/merge + finalize) and compares against rebuilding the
evidence set of the concatenated ``n + m`` rows from scratch with the tiled
builder.  The delta path evaluates ``2·n·m + m·(m-1)`` ordered pairs
instead of ``(n+m)·(n+m-1)``, so its advantage grows as ``m`` shrinks
relative to ``n`` — the continuous-arrival regime the store exists for.

Expectation: for batches up to ``n/10`` the delta append is at least
``EXPECTED_SPEEDUP`` times faster than the full rebuild (enforced with
``--require-speedup``; CI runs the benchmark informationally and archives
the JSON artifact).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        [--json BENCH_incremental.json] [--rows 2000] [--require-speedup]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.evidence_builder import build_evidence_set_tiled
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.incremental import EvidenceStore

#: Rows of the seed relation the store is built on.
BENCH_ROWS = 2000

#: Appended batch sizes swept by the benchmark.
BATCH_SIZES = (1, 10, 100, 1000)

#: Minimum append-vs-rebuild speedup required for batches up to ROWS / 10.
EXPECTED_SPEEDUP = 5.0


def _assert_identical(left, right) -> None:
    """Bit-identity guard: the benchmark must compare equal outputs."""
    if not (
        np.array_equal(left.words, right.words)
        and np.array_equal(left.counts, right.counts)
        and left.n_rows == right.n_rows
    ):
        raise AssertionError("delta append and full rebuild disagree")


def run_incremental_comparison(
    n_rows: int = BENCH_ROWS,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
) -> list[dict[str, object]]:
    """One row per batch size: append seconds, rebuild seconds, speedup."""
    pool = generate_dataset("tax", n_rows=n_rows + max(batch_sizes), seed=7).relation
    base = pool.take(range(n_rows))
    space = build_predicate_space(base)
    # Participation off: the serving counters run off words/counts alone,
    # and both sides of the comparison skip the same histogram work.
    store = EvidenceStore(base, space=space, include_participation=False)
    store.evidence()  # warm the seed finalize outside the timed region

    rows: list[dict[str, object]] = []
    for m in batch_sizes:
        batch = pool.take(range(n_rows, n_rows + m))

        trial = store.clone()
        started = time.perf_counter()
        trial.append(batch)
        append_seconds = time.perf_counter() - started
        incremental = trial.evidence()
        append_with_finalize = time.perf_counter() - started

        concatenated = base.copy()
        concatenated.append_rows(batch)
        started = time.perf_counter()
        rebuilt = build_evidence_set_tiled(
            concatenated, space, include_participation=False
        )
        rebuild_seconds = time.perf_counter() - started

        _assert_identical(incremental, rebuilt)
        rows.append({
            "batch_rows": m,
            "append_seconds": append_seconds,
            "append_finalize_seconds": append_with_finalize,
            "rebuild_seconds": rebuild_seconds,
            "speedup": rebuild_seconds / append_with_finalize,
            "delta_pairs": 2 * n_rows * m + m * (m - 1),
            "total_pairs": (n_rows + m) * (n_rows + m - 1),
            "evidences": len(rebuilt),
        })
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-speedup", action="store_true",
                        help=f"fail unless every batch <= rows/10 appends "
                             f">= {EXPECTED_SPEEDUP}x faster than a rebuild")
    args = parser.parse_args()

    batch_sizes = tuple(m for m in BATCH_SIZES if m <= args.rows)
    rows = run_incremental_comparison(args.rows, batch_sizes)

    header = (
        f"{'batch':>6} {'append s':>9} {'+final s':>9} {'rebuild s':>10} "
        f"{'speedup':>8} {'delta pairs':>12} {'evidences':>10}"
    )
    print(f"Incremental store on {args.rows} seed rows:")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['batch_rows']:>6} {row['append_seconds']:>9.3f} "
            f"{row['append_finalize_seconds']:>9.3f} {row['rebuild_seconds']:>10.3f} "
            f"{row['speedup']:>7.1f}x {row['delta_pairs']:>12} {row['evidences']:>10}"
        )

    gated = [row for row in rows if row["batch_rows"] * 10 <= args.rows]
    worst = min((float(row["speedup"]) for row in gated), default=float("inf"))
    if gated and worst < EXPECTED_SPEEDUP:
        message = (
            f"delta append reached only {worst:.1f}x over full rebuild for "
            f"batches <= rows/10 (expected >= {EXPECTED_SPEEDUP}x)"
        )
        if args.require_speedup:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)

    if args.json:
        payload = {
            "benchmark": "incremental",
            "n_rows": args.rows,
            "expected_speedup_small_batches": EXPECTED_SPEEDUP,
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
