"""Table 4 — dataset statistics (#tuples, #attributes, #golden DCs)."""

from conftest import report

from repro.experiments import table4_statistics


def test_table4_dataset_statistics(benchmark, config):
    rows = benchmark(table4_statistics, config)
    report("Table 4: datasets (scaled-down synthetic stand-ins)", rows)
    assert len(rows) == len(config.datasets)
    assert all(row["golden_dcs"] > 0 for row in rows)
