"""The cluster worker: a receive-execute-reply loop over one transport.

A worker is deliberately dumb and generic.  It receives a *context* object
once (the expensive payload — a prepared tile kernel and its schedule, or a
pickled evidence set for enumeration units), then answers ``task`` messages
by calling ``context.run(payload)`` and streaming each result straight
back.  Between tasks it answers heartbeat pings; a task failure is reported
as an ``error`` frame rather than killing the loop, so one poisoned shard
does not take the worker down with it.

Remote deployment is one command per machine::

    python -m repro.cluster.worker --connect host:port [--shm] [--worker-id ID]

``--shm`` parks :class:`~repro.engine.partial.PartialEvidenceSet` results
in shared memory and returns only the handle (:mod:`repro.cluster.shm`) —
valid when the worker shares a machine with its coordinator.

Wire protocol (all frames are tuples, first element the kind):

======================  =============================  =======================
coordinator sends       worker replies                 meaning
======================  =============================  =======================
``("context", c)``      ``("ready",)``                 install work context
``("task", i, p[, t])`` ``("result", i, r)`` or        run ``c.run(p)``;
—                       ``("error", i, info)``         ``t`` = trace context
—                       ``("task_span", i, child)``    traced-task span, sent
—                                                      *after* its result
``("ping", n)``         ``("pong", n)``                heartbeat
``("metrics_pull", n)`` ``("metrics", n, snapshot)``   registry snapshot
``("shutdown",)``       —                              close and exit
======================  =============================  =======================

Observability (all of it gated on the process registry's ``REPRO_OBS``
switch, and none of it on the untraced hot path beyond counter bumps):

* A task frame carrying a trace context runs under a child
  :class:`~repro.obs.spans.Span` whose disjoint segments —
  ``deserialize`` / ``compute`` / ``serialize`` / ``send`` — sum to the
  task's wall time.  Because the ``serialize``/``send`` segments measure
  the *result frame itself*, the span cannot ride inside that frame; it
  follows in a tiny ``task_span`` frame on the same ordered stream, which
  the coordinator stitches into the requesting span's tree.
* ``repro_worker_*`` metric families count tasks (by context kind and
  outcome), task seconds, context installs, link bytes, and shm exports
  in *this process's* registry; the coordinator collects them via
  ``metrics_pull`` and federates them under a ``worker="<id>"`` label.
* Failures become bounded, structured error frames (capped traceback,
  task key, worker id) mirrored as a :class:`~repro.obs.logging.JsonLogger`
  record instead of raw stderr.
"""

from __future__ import annotations

import argparse
import os
import socket as socket_module
import time
import traceback

from repro.cluster.shm import discard_result, export_result
from repro.cluster.transport import (
    Transport,
    TransportClosed,
    connect_socket,
    parse_address,
)
from repro.obs import metrics as obs_metrics
from repro.obs.federate import prune_idle
from repro.obs.logging import get_logger
from repro.obs.registry import get_registry
from repro.obs.spans import Span

#: Hard cap on the traceback text an error frame ships — a repr-heavy
#: exception (say, a numpy array in the message) must not balloon a frame.
MAX_TRACEBACK_CHARS = 4096
_MAX_ERROR_CHARS = 512


def default_worker_id() -> str:
    """The worker's self-reported identity: ``host:pid``."""
    return f"{socket_module.gethostname()}:{os.getpid()}"


def _bounded_traceback() -> str:
    """The current exception's traceback, middle-elided past the cap."""
    text = traceback.format_exc(limit=20)
    if len(text) <= MAX_TRACEBACK_CHARS:
        return text
    keep = MAX_TRACEBACK_CHARS // 2
    dropped = len(text) - 2 * keep
    return f"{text[:keep]}\n... [{dropped} chars truncated] ...\n{text[-keep:]}"


def _error_info(worker_id: str, task_id: object, error: BaseException) -> dict:
    message = f"{type(error).__name__}: {error}"
    if len(message) > _MAX_ERROR_CHARS:
        message = message[:_MAX_ERROR_CHARS] + "..."
    return {
        "worker": worker_id,
        # Normally the (submission, index) pair; a protocol complaint can
        # carry whatever key the malformed frame held, so don't assume.
        "task": list(task_id) if isinstance(task_id, (tuple, list)) else task_id,
        "error": message,
        "traceback": _bounded_traceback(),
    }


def _task_meta(context: object, payload: object) -> dict:
    """Optional task metadata from the context (e.g. shard pair counts)."""
    describe = getattr(context, "describe", None)
    if describe is None:
        return {}
    try:
        meta = describe(payload)
    except Exception:
        return {}
    return dict(meta) if isinstance(meta, dict) else {}


def serve(
    transport: Transport, use_shm: bool = False, worker_id: str | None = None
) -> int:
    """Run the worker loop until shutdown or peer death; tasks completed."""
    if worker_id is None:
        worker_id = default_worker_id()
    log = get_logger()
    registry = get_registry()
    context: object | None = None
    context_kind = "none"
    completed = 0
    bytes_reported = [0, 0]  # sent, received — last totals pushed to counters

    def push_bytes() -> None:
        if not registry.enabled:
            return
        sent, received = transport.bytes_sent, transport.bytes_received
        obs_metrics.WORKER_BYTES_SENT.inc(max(0, sent - bytes_reported[0]))
        obs_metrics.WORKER_BYTES_RECEIVED.inc(max(0, received - bytes_reported[1]))
        bytes_reported[0], bytes_reported[1] = sent, received

    def report_error(task_id: object, error: BaseException) -> None:
        obs_metrics.WORKER_TASKS.inc_labels(context_kind, "error")
        info = _error_info(worker_id, task_id, error)
        log.error(
            "task_failed",
            worker=worker_id, task=info["task"], error=info["error"],
        )
        transport.send(("error", task_id, info))

    while True:
        # A closed link — clean coordinator shutdown or its death — ends
        # the loop quietly wherever it surfaces, recv and send alike.
        try:
            message = transport.recv()
            kind = message[0]
            if kind == "context":
                context = message[1]
                context_kind = type(context).__name__
                obs_metrics.WORKER_CONTEXT_INSTALLS.inc()
                transport.send(("ready",))
            elif kind == "task":
                task_id, payload = message[1], message[2]
                trace_ctx = message[3] if len(message) > 3 else None
                deserialize_seconds = transport.last_unpickle_seconds
                started = time.perf_counter()
                try:
                    if context is None:
                        raise RuntimeError("no context installed before the first task")
                    result = context.run(payload)
                    computed = time.perf_counter()
                    exported = export_result(result, use_shm)
                    exported_at = time.perf_counter()
                except TransportClosed:
                    raise
                except Exception as error:
                    report_error(task_id, error)
                    continue
                via_shm = exported is not result
                try:
                    transport.send(("result", task_id, exported))
                except TransportClosed:
                    discard_result(exported)  # nobody will ever attach it
                    raise
                except Exception as error:
                    # An unpicklable result never reached the wire (send
                    # pickles before writing), so the stream is clean:
                    # report the failure instead of crashing the loop.
                    discard_result(exported)
                    report_error(task_id, error)
                    continue
                finished = time.perf_counter()
                completed += 1
                wall = deserialize_seconds + (finished - started)
                result_bytes = transport.last_send_bytes
                obs_metrics.WORKER_TASKS.inc_labels(context_kind, "ok")
                obs_metrics.WORKER_TASK_SECONDS.observe(wall)
                if via_shm:
                    obs_metrics.WORKER_SHM_EXPORTS.inc()
                if trace_ctx is not None:
                    # Disjoint segments covering the whole wall window; the
                    # serialize/send pair comes from the transport's timing
                    # of the result frame just shipped, which is why the
                    # span trails its result instead of riding inside it.
                    span = Span(
                        str(trace_ctx.get("trace_id", "")), op="cluster_task"
                    )
                    span.add_segment("deserialize", deserialize_seconds)
                    span.add_segment("compute", computed - started)
                    span.add_segment(
                        "serialize",
                        (exported_at - computed) + transport.last_serialize_seconds,
                    )
                    span.add_segment("send", transport.last_send_seconds)
                    child = span.jsonable()
                    child.update(_task_meta(context, payload))
                    child.update(
                        worker=worker_id,
                        task=list(task_id),
                        wall_seconds=wall,
                        result_bytes=result_bytes,
                        shm=via_shm,
                    )
                    transport.send(("task_span", task_id, child))
            elif kind == "ping":
                transport.send(("pong", message[1]))
            elif kind == "metrics_pull":
                families = prune_idle(registry.snapshot()) if registry.enabled else {}
                transport.send((
                    "metrics",
                    message[1],
                    {
                        "worker": worker_id,
                        "enabled": registry.enabled,
                        "taken_at": time.time(),
                        "tasks_completed": completed,
                        "families": families,
                    },
                ))
            elif kind == "shutdown":
                transport.close()
                return completed
            else:
                transport.send((
                    "error", None,
                    {
                        "worker": worker_id,
                        "task": None,
                        "error": f"unknown message kind {kind!r}",
                        "traceback": "",
                    },
                ))
            push_bytes()
        except TransportClosed:
            try:
                transport.close()  # announce EOF on our side too
            except Exception:
                pass
            return completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker", description=__doc__
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to connect to",
    )
    parser.add_argument(
        "--shm", action="store_true",
        help="return partial evidence sets as shared-memory handles "
             "(coordinator must be on this machine)",
    )
    parser.add_argument(
        "--send-timeout", type=float, default=60.0, metavar="SECONDS",
        help="give up on a send making no progress for this long — a "
             "frozen coordinator would otherwise hang the worker forever "
             "(0 disables the bound; default %(default)s)",
    )
    parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="self-reported identity used in federated metrics labels and "
             "error frames (default: host:pid)",
    )
    args = parser.parse_args(argv)
    host, port = parse_address(args.connect)
    send_timeout = args.send_timeout if args.send_timeout > 0 else None
    transport = connect_socket(host, port, send_timeout=send_timeout)
    worker_id = args.worker_id or default_worker_id()
    log = get_logger()
    log.info("worker_connected", worker=worker_id, coordinator=f"{host}:{port}")
    completed = serve(transport, use_shm=args.shm, worker_id=worker_id)
    log.info("worker_exiting", worker=worker_id, tasks_completed=completed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
