"""Runtime experiments (Figures 6, 7, 8, 9, 10 and 12).

Every function returns a list of row dicts — one row per (dataset,
configuration) point of the corresponding figure — with wall-clock seconds
measured around the exact components the paper times:

* Figure 6 — ADCEnum vs SearchMC enumeration time (f1, epsilon = 0.1);
* Figure 7 — total pipeline time of ADCMiner vs DCFinder vs AFASTDC;
* Figure 8 — ADCMiner time per approximation function, split into total /
  enumeration / evidence construction;
* Figure 9 — ADCEnum vs SearchMC for varying sample sizes;
* Figure 10 — ADCEnum with max- vs min-intersection evidence selection;
* Figure 12 — ADCMiner total time for varying sample sizes.
"""

from __future__ import annotations

import time

from repro.baselines.fastdc import SearchMC
from repro.baselines.pairwise import afastdc_mine, dcfinder_mine
from repro.core.adc_enum import ADCEnum
from repro.core.approximation import STANDARD_FUNCTIONS, F1, get_approximation_function
from repro.core.evidence_builder import build_evidence_set
from repro.core.miner import ADCMiner
from repro.core.predicate_space import build_predicate_space
from repro.experiments.config import ExperimentConfig

#: Sample fractions used by Figures 9 and 12 (the paper sweeps 20%–100%).
SAMPLE_FRACTIONS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)


def _prepare_evidence(config: ExperimentConfig, name: str, fraction: float = 1.0,
                      include_participation: bool = False):
    """Dataset -> (sampled) relation -> predicate space -> evidence set."""
    dataset = config.dataset(name)
    relation = dataset.relation.sample(fraction, seed=config.seed)
    space = build_predicate_space(relation)
    evidence = build_evidence_set(relation, space, include_participation=include_participation)
    return dataset, relation, space, evidence


def figure6_enum_vs_searchmc(config: ExperimentConfig) -> list[dict[str, object]]:
    """Figure 6: enumeration time of ADCEnum vs SearchMC (f1, eps = 0.1)."""
    rows = []
    for name in config.datasets:
        _dataset, _relation, _space, evidence = _prepare_evidence(config, name)
        started = time.perf_counter()
        adc_enum = ADCEnum(evidence, F1(), config.epsilon, max_dc_size=config.max_dc_size)
        adcs = adc_enum.enumerate()
        adc_enum_seconds = time.perf_counter() - started

        started = time.perf_counter()
        search_mc = SearchMC(evidence, F1(), config.epsilon, max_cover_size=config.max_dc_size)
        baseline = search_mc.enumerate()
        search_mc_seconds = time.perf_counter() - started

        rows.append({
            "dataset": name,
            "adcenum_seconds": adc_enum_seconds,
            "searchmc_seconds": search_mc_seconds,
            "speedup": search_mc_seconds / adc_enum_seconds if adc_enum_seconds else 0.0,
            "adcenum_dcs": len(adcs),
            "searchmc_dcs": len(baseline),
        })
    return rows


def figure7_total_runtime(config: ExperimentConfig) -> list[dict[str, object]]:
    """Figure 7: total time of ADCMiner vs DCFinder vs AFASTDC pipelines."""
    rows = []
    for name in config.datasets:
        dataset = config.dataset(name)
        miner = ADCMiner("f1", config.epsilon, max_dc_size=config.max_dc_size, seed=config.seed)
        result = miner.mine(dataset.relation)
        dcfinder = dcfinder_mine(dataset.relation, F1(), config.epsilon,
                                 seed=config.seed, max_cover_size=config.max_dc_size)
        afastdc = afastdc_mine(dataset.relation, F1(), config.epsilon,
                               seed=config.seed, max_cover_size=config.max_dc_size)
        rows.append({
            "dataset": name,
            "adcminer_seconds": result.timings.total,
            "dcfinder_seconds": dcfinder.timings.total,
            "afastdc_seconds": afastdc.timings.total,
            "adcminer_dcs": len(result),
            "dcfinder_dcs": len(dcfinder),
            "afastdc_dcs": len(afastdc),
        })
    return rows


def figure8_approx_functions(config: ExperimentConfig) -> list[dict[str, object]]:
    """Figure 8: ADCMiner time per approximation function (total/enum/evidence)."""
    rows = []
    for name in config.datasets:
        for function_name in STANDARD_FUNCTIONS:
            miner = ADCMiner(function_name, config.epsilon,
                             max_dc_size=config.max_dc_size, seed=config.seed)
            result = miner.mine(config.dataset(name).relation)
            rows.append({
                "dataset": name,
                "function": function_name,
                "total_seconds": result.timings.total,
                "enumeration_seconds": result.timings.enumeration,
                "evidence_seconds": result.timings.evidence,
                "dcs": len(result),
            })
    return rows


def figure9_sample_sizes(config: ExperimentConfig) -> list[dict[str, object]]:
    """Figure 9: ADCEnum vs SearchMC enumeration time for varying sample sizes."""
    rows = []
    for name in config.datasets:
        for fraction in SAMPLE_FRACTIONS:
            _dataset, _relation, _space, evidence = _prepare_evidence(config, name, fraction)
            started = time.perf_counter()
            ADCEnum(evidence, F1(), config.epsilon, max_dc_size=config.max_dc_size).enumerate()
            adc_enum_seconds = time.perf_counter() - started
            started = time.perf_counter()
            SearchMC(evidence, F1(), config.epsilon, max_cover_size=config.max_dc_size).enumerate()
            search_mc_seconds = time.perf_counter() - started
            rows.append({
                "dataset": name,
                "sample": fraction,
                "adcenum_seconds": adc_enum_seconds,
                "searchmc_seconds": search_mc_seconds,
            })
    return rows


def figure10_selection_strategy(config: ExperimentConfig) -> list[dict[str, object]]:
    """Figure 10: max- vs min-intersection evidence selection, per function.

    The paper runs this ablation on Tax, SP Stock and Hospital for all three
    approximation functions.
    """
    datasets = tuple(name for name in ("tax", "stock", "hospital") if name in config.datasets)
    rows = []
    for name in datasets or config.datasets[:3]:
        _dataset, _relation, _space, evidence = _prepare_evidence(
            config, name, include_participation=True
        )
        for function_name in STANDARD_FUNCTIONS:
            function = get_approximation_function(function_name)
            timings = {}
            for selection in ("max", "min"):
                started = time.perf_counter()
                ADCEnum(evidence, function, config.epsilon, selection=selection,
                        max_dc_size=config.max_dc_size).enumerate()
                timings[selection] = time.perf_counter() - started
            rows.append({
                "dataset": name,
                "function": function_name,
                "max_intersection_seconds": timings["max"],
                "min_intersection_seconds": timings["min"],
            })
    return rows


def figure12_miner_sample_sizes(config: ExperimentConfig) -> list[dict[str, object]]:
    """Figure 12: total ADCMiner time for varying sample sizes (f1)."""
    rows = []
    for name in config.datasets:
        dataset = config.dataset(name)
        for fraction in SAMPLE_FRACTIONS:
            miner = ADCMiner("f1", config.epsilon, sample_fraction=fraction,
                             max_dc_size=config.max_dc_size, seed=config.seed)
            result = miner.mine(dataset.relation)
            rows.append({
                "dataset": name,
                "sample": fraction,
                "total_seconds": result.timings.total,
                "dcs": len(result),
            })
    return rows
