"""Figure 8 — ADCMiner running time per approximation function (f1/f2/f3)."""

from conftest import report

from repro.experiments import figure8_approx_functions


def test_figure8_runtime_per_function(benchmark, config):
    rows = benchmark.pedantic(figure8_approx_functions, args=(config,), iterations=1, rounds=1)
    report(
        "Figure 8: ADCMiner time per approximation function "
        "(total / enumeration / evidence seconds)",
        rows,
    )
    assert len(rows) == len(config.datasets) * 3
    assert {row["function"] for row in rows} == {"f1", "f2", "f3"}
