"""Async violation-serving server: the network front-end of the library.

The incremental subsystem answers violation queries as a *library*
(:class:`~repro.incremental.store.EvidenceStore` +
:class:`~repro.incremental.serve.ViolationService`); this package makes it
a *server* that holds production traffic:

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, error codes,
  and the sync/async framing helpers both sides share.
* :mod:`repro.serve.counters` — :class:`ViolationCounters`: push-based
  per-DC violating-pair counts maintained from each appended batch's delta
  partial, so the read path never finalizes evidence (reads are O(#DCs)
  regardless of pending appends, bit-identical to a fresh finalize).
* :mod:`repro.serve.scheduler` — :class:`AppendScheduler`: concurrent
  appends to one store coalesce into a single delta-tile fold per flush
  window, with backpressure and per-request error isolation.
* :mod:`repro.serve.server` — :class:`ViolationServer`: the asyncio TCP
  server (multi-tenant store registry, bounded per-connection pipelines,
  executor-offloaded store work, graceful drain) plus the
  :class:`ServerThread` harness for embedding it in sync programs.
* :mod:`repro.serve.client` — :class:`ServeClient`: the one blocking
  client tests, benchmarks, and examples share, with read timeouts
  (:class:`ServeTimeout`) and idempotent retry across reconnects.

Durability: start the server with a data directory and every tenant store
journals appends ahead of acknowledgment, compacts into snapshots, and is
recovered bit-identically on restart (see :mod:`repro.durability`)::

    python -m repro.serve --listen 127.0.0.1:7332 --data-dir /var/lib/repro

Observability (see :mod:`repro.obs`): every request lands in the process
metrics registry (readable via the ``metrics`` op or a Prometheus endpoint
started with ``--metrics-port``), requests carrying a ``trace`` field get
a per-segment latency breakdown in their response, and server events are
structured JSON log lines on stderr::

    python -m repro.serve --listen 127.0.0.1:7332 --metrics-port 9100

Run a server::

    python -m repro.serve --listen 127.0.0.1:7332

and talk to it::

    from repro.serve import ServeClient
    with ServeClient("127.0.0.1", 7332) as client:
        client.create_store("people", rows)
        client.remine("people", epsilon=0.05)
        print(client.report("people"))
"""

from repro.serve.client import ServeClient
from repro.serve.counters import CounterSnapshot, ViolationCounters
from repro.serve.protocol import ServeError, ServeTimeout
from repro.serve.scheduler import AppendScheduler
from repro.serve.server import ServerThread, ViolationServer

__all__ = [
    "AppendScheduler",
    "CounterSnapshot",
    "ServeClient",
    "ServeError",
    "ServeTimeout",
    "ServerThread",
    "ViolationServer",
    "ViolationCounters",
]
