"""Setuptools entry point.

Metadata lives in ``pyproject.toml``; this shim exists so that editable
installs (``pip install -e .``) work in offline environments whose
setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
