"""Sampling-quality experiments (Figures 11 and 13).

* Figure 11 compares the ADCs mined from a tuple sample against the ADCs
  mined from the full dataset (F1 score over DC sets), sweeping the sample
  size for fixed thresholds and the threshold for fixed sample sizes, under
  all three approximation functions.
* Figure 13 measures the average gap ``epsilon - p_hat`` over the discovered
  ADCs for varying sample sizes, which the paper shows shrinks like
  ``1 / sqrt(n)`` (supporting the Section 7 analysis).
"""

from __future__ import annotations

from repro.analysis.metrics import f1_score
from repro.core.approximation import STANDARD_FUNCTIONS
from repro.core.miner import ADCMiner
from repro.experiments.config import ExperimentConfig

#: Sample fractions swept by Figure 11 (the paper uses 1%-40%; tiny samples
#: of a few hundred tuples would be nearly empty, so the sweep starts at 10%).
FIG11_SAMPLE_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4)

#: Thresholds swept by Figure 11 (bottom half).
FIG11_THRESHOLDS: tuple[float, ...] = (0.01, 0.05, 0.1, 0.2)

#: Sample fractions swept by Figure 13.
FIG13_SAMPLE_FRACTIONS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)


def figure11_sampling_quality(
    config: ExperimentConfig,
    sample_fractions: tuple[float, ...] = FIG11_SAMPLE_FRACTIONS,
    thresholds: tuple[float, ...] = FIG11_THRESHOLDS,
    functions: tuple[str, ...] = tuple(STANDARD_FUNCTIONS),
) -> list[dict[str, object]]:
    """Figure 11: F1 of sample-mined ADCs against full-data ADCs.

    Rows of kind ``sweep = "sample"`` fix the threshold (``config.epsilon``)
    and vary the sample fraction; rows of kind ``sweep = "threshold"`` fix
    the sample fraction (30%) and vary the threshold.
    """
    rows = []
    for name in config.datasets:
        dataset = config.dataset(name)
        for function_name in functions:
            reference = ADCMiner(function_name, config.epsilon,
                                 max_dc_size=config.max_dc_size, seed=config.seed)
            reference_result = reference.mine(dataset.relation)
            for fraction in sample_fractions:
                sampled = ADCMiner(function_name, config.epsilon, sample_fraction=fraction,
                                   max_dc_size=config.max_dc_size, seed=config.seed)
                sampled_result = sampled.mine(dataset.relation)
                rows.append({
                    "sweep": "sample",
                    "dataset": name,
                    "function": function_name,
                    "sample": fraction,
                    "epsilon": config.epsilon,
                    "f1_score": f1_score(sampled_result.constraints, reference_result.constraints),
                })
            for epsilon in thresholds:
                full = ADCMiner(function_name, epsilon,
                                max_dc_size=config.max_dc_size, seed=config.seed)
                full_result = full.mine(dataset.relation)
                sampled = ADCMiner(function_name, epsilon, sample_fraction=0.3,
                                   max_dc_size=config.max_dc_size, seed=config.seed)
                sampled_result = sampled.mine(dataset.relation)
                rows.append({
                    "sweep": "threshold",
                    "dataset": name,
                    "function": function_name,
                    "sample": 0.3,
                    "epsilon": epsilon,
                    "f1_score": f1_score(sampled_result.constraints, full_result.constraints),
                })
    return rows


def figure13_estimator_gap(
    config: ExperimentConfig,
    sample_fractions: tuple[float, ...] = FIG13_SAMPLE_FRACTIONS,
) -> list[dict[str, object]]:
    """Figure 13: average ``epsilon - p_hat`` over discovered ADCs per sample size."""
    rows = []
    for name in config.datasets:
        dataset = config.dataset(name)
        for fraction in sample_fractions:
            miner = ADCMiner("f1", config.epsilon, sample_fraction=fraction,
                             max_dc_size=config.max_dc_size, seed=config.seed)
            result = miner.mine(dataset.relation)
            if result.adcs:
                average_gap = sum(
                    config.epsilon - adc.violation_score for adc in result.adcs
                ) / len(result.adcs)
            else:
                average_gap = 0.0
            rows.append({
                "dataset": name,
                "sample": fraction,
                "sample_rows": result.sample_plan.sample_rows,
                "avg_epsilon_minus_phat": average_gap,
                "dcs": len(result),
            })
    return rows
