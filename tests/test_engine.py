"""Unit tests of the parallel evidence engine (scheduler, kernel, pool).

Covers the adaptive tile-size budget math, the tile schedule and its shard
partitioning, picklability of the tile kernel, and the process-pool builder
being bit-identical to the serial tiled builder and the dense oracle.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from tests.conftest import make_random_relation
from repro.core.evidence_builder import (
    build_evidence_set,
    build_evidence_set_dense,
    build_evidence_set_tiled,
)
from repro.core.miner import ADCMiner
from repro.core.predicate_space import build_predicate_space
from repro.engine import (
    PartialEvidenceSet,
    Tile,
    TileKernel,
    TileScheduler,
    build_evidence_set_parallel,
    choose_tile_rows,
)
from repro.engine.scheduler import MAX_TILE_ROWS, MIN_TILE_ROWS, _KERNEL_PLANES


def assert_evidence_identical(left, right) -> None:
    """Bit-identical words, multiplicities, and (if present) participation."""
    assert np.array_equal(left.words, right.words)
    assert np.array_equal(left.counts, right.counts)
    assert left.n_rows == right.n_rows
    assert left.has_participation == right.has_participation
    if left.has_participation:
        for index in range(len(left)):
            a = left.participation(index)
            b = right.participation(index)
            assert np.array_equal(a.tuple_ids, b.tuple_ids)
            assert np.array_equal(a.pair_counts, b.pair_counts)


class TestChooseTileRows:
    def test_budgeted_tile_fits_the_budget(self):
        # In the unclamped region the kernel's transient bytes stay within
        # budget: 3 planes of 8 * n_words bytes per pair.
        for n_words in (1, 2, 8):
            budget = _KERNEL_PLANES * 8 * n_words * 100 * 100
            tile = choose_tile_rows(10**6, n_words, budget)
            assert tile == 100
            assert _KERNEL_PLANES * 8 * n_words * tile * tile <= budget

    def test_monotone_in_budget(self):
        tiles = [
            choose_tile_rows(10**6, 4, budget)
            for budget in (2**18, 2**21, 2**24, 2**27)
        ]
        assert tiles == sorted(tiles)

    def test_wider_spaces_get_smaller_tiles(self):
        budget = 2**22
        assert choose_tile_rows(10**6, 16, budget) < choose_tile_rows(10**6, 1, budget)

    def test_floor_and_cap(self):
        assert choose_tile_rows(10**6, 1, 1) == MIN_TILE_ROWS
        assert choose_tile_rows(10**6, 1, 2**60) == MAX_TILE_ROWS

    def test_clamped_by_relation_size(self):
        assert choose_tile_rows(5, 1, 2**30) == 5
        assert choose_tile_rows(1, 1, 1) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            choose_tile_rows(0, 1)
        with pytest.raises(ValueError):
            choose_tile_rows(10, 0)
        with pytest.raises(ValueError):
            choose_tile_rows(10, 1, 0)


class TestTileScheduler:
    def test_tiles_cover_the_pair_matrix_exactly_once(self):
        scheduler = TileScheduler(n_rows=10, tile_rows=3)
        covered = np.zeros((10, 10), dtype=int)
        for tile in scheduler:
            covered[tile.i0 : tile.i1, tile.j0 : tile.j1] += 1
        assert (covered == 1).all()
        assert scheduler.total_pairs == 10 * 9
        assert sum(tile.n_pairs for tile in scheduler) == 10 * 9

    def test_grid_and_len(self):
        scheduler = TileScheduler(n_rows=10, tile_rows=3)
        assert scheduler.grid == 4
        assert len(scheduler) == 16

    def test_adaptive_default_tile_rows(self):
        scheduler = TileScheduler(n_rows=10**6, n_words=2, memory_budget_bytes=2**22)
        assert scheduler.tile_rows == choose_tile_rows(10**6, 2, 2**22)

    def test_diagonal_tiles_exclude_diagonal_pairs(self):
        assert Tile(0, 3, 0, 3).n_pairs == 6
        assert Tile(0, 3, 3, 6).n_pairs == 9
        assert Tile(2, 5, 4, 7).n_pairs == 8  # one overlapping diagonal cell

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 16, 99])
    def test_shards_partition_tiles_contiguously(self, k):
        scheduler = TileScheduler(n_rows=11, tile_rows=3)
        shards = scheduler.shards(k)
        assert len(shards) == min(k, len(scheduler))
        assert shards[0].start == 0
        assert shards[-1].stop == len(scheduler)
        position = 0
        for shard in shards:
            assert shard.start == position
            assert shard.stop > shard.start
            assert shard.tiles == scheduler.tiles()[shard.start : shard.stop]
            position = shard.stop
        assert sum(shard.n_pairs for shard in shards) == scheduler.total_pairs

    def test_shards_are_balanced(self):
        scheduler = TileScheduler(n_rows=64, tile_rows=4)
        shards = scheduler.shards(4)
        fair_share = scheduler.total_pairs / 4
        for shard in shards:
            assert shard.n_pairs <= 2 * fair_share

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TileScheduler(n_rows=-1)
        with pytest.raises(ValueError):
            TileScheduler(n_rows=4, tile_rows=0)
        with pytest.raises(ValueError):
            TileScheduler(n_rows=4, tile_rows=2).shards(0)

    def test_empty_relation(self):
        scheduler = TileScheduler(n_rows=0, tile_rows=4)
        assert len(scheduler) == 0
        assert scheduler.shards(3) == []


class TestTileKernel:
    def test_kernel_round_trips_through_pickle(self):
        relation = make_random_relation(n_rows=9, seed=13)
        space = build_predicate_space(relation)
        kernel = TileKernel.from_relation(relation, space, include_participation=True)
        clone = pickle.loads(pickle.dumps(kernel))
        tile = Tile(0, 5, 3, 9)
        original = kernel.run(tile)
        revived = clone.run(tile)
        assert np.array_equal(original.words, revived.words)
        assert np.array_equal(original.counts, revived.counts)
        assert np.array_equal(original.part_keys, revived.part_keys)
        assert np.array_equal(original.part_counts, revived.part_counts)

    def test_kernel_over_schedule_matches_tiled_builder(self):
        relation = make_random_relation(n_rows=12, seed=5)
        space = build_predicate_space(relation)
        kernel = TileKernel.from_relation(relation, space)
        partial = PartialEvidenceSet(relation.n_rows, kernel.n_words)
        for tile in TileScheduler(relation.n_rows, tile_rows=5):
            tile_partial = kernel.run(tile)
            if tile_partial is not None:
                partial.add_tile(tile_partial)
        assert_evidence_identical(
            partial.finalize(space), build_evidence_set_tiled(relation, space)
        )

    def test_diagonal_1x1_tile_is_empty(self):
        relation = make_random_relation(n_rows=4, seed=1)
        space = build_predicate_space(relation)
        kernel = TileKernel.from_relation(relation, space)
        assert kernel.run(Tile(2, 3, 2, 3)) is None


class TestParallelBuilder:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_parallel_matches_tiled_and_dense(self, n_workers):
        relation = make_random_relation(
            n_rows=23, n_string_columns=2, n_numeric_columns=2, seed=17
        )
        space = build_predicate_space(relation)
        parallel = build_evidence_set_parallel(
            relation, space, tile_rows=5, n_workers=n_workers
        )
        assert_evidence_identical(
            parallel, build_evidence_set_tiled(relation, space, tile_rows=5)
        )
        assert_evidence_identical(parallel, build_evidence_set_dense(relation, space))

    def test_adaptive_tile_rows_default(self):
        relation = make_random_relation(n_rows=20, seed=3)
        space = build_predicate_space(relation)
        parallel = build_evidence_set_parallel(relation, space, n_workers=2)
        assert_evidence_identical(parallel, build_evidence_set_tiled(relation, space))

    def test_without_participation(self):
        relation = make_random_relation(n_rows=10, seed=8)
        space = build_predicate_space(relation)
        parallel = build_evidence_set_parallel(
            relation, space, include_participation=False, n_workers=2, tile_rows=4
        )
        assert not parallel.has_participation
        tiled = build_evidence_set_tiled(
            relation, space, include_participation=False, tile_rows=4
        )
        assert np.array_equal(parallel.words, tiled.words)
        assert np.array_equal(parallel.counts, tiled.counts)

    def test_tiny_relation_edge_cases(self):
        single = make_random_relation(n_rows=1, seed=0)
        empty_evidence = build_evidence_set_parallel(single, build_predicate_space(single))
        assert len(empty_evidence) == 0
        pair = make_random_relation(n_rows=2, seed=0)
        evidence = build_evidence_set_parallel(pair, build_predicate_space(pair), n_workers=2)
        assert evidence.recorded_pairs == 2

    def test_invalid_n_workers(self):
        relation = make_random_relation(n_rows=4, seed=0)
        space = build_predicate_space(relation)
        with pytest.raises(ValueError):
            build_evidence_set_parallel(relation, space, n_workers=0)

    def test_single_worker_never_spawns_a_pool(self, monkeypatch):
        """ADCMiner(n_workers=1) must not pay executor spin-up (satellite)."""
        import repro.engine.parallel as parallel_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ProcessPoolExecutor must not be created")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", forbidden)
        relation = make_random_relation(n_rows=12, seed=5)
        space = build_predicate_space(relation)
        serial = build_evidence_set_parallel(relation, space, tile_rows=3, n_workers=1)
        assert_evidence_identical(
            serial, build_evidence_set_tiled(relation, space, tile_rows=3)
        )

    def test_fewer_shards_than_workers_falls_through_to_serial(self, monkeypatch):
        import repro.engine.parallel as parallel_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ProcessPoolExecutor must not be created")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", forbidden)
        # One tile -> one shard, far fewer than the requested workers.
        relation = make_random_relation(n_rows=6, seed=2)
        space = build_predicate_space(relation)
        serial = build_evidence_set_parallel(relation, space, tile_rows=8, n_workers=8)
        assert_evidence_identical(
            serial, build_evidence_set_tiled(relation, space, tile_rows=8)
        )

    def test_dispatcher_and_miner_integration(self):
        relation = make_random_relation(n_rows=14, seed=21)
        space = build_predicate_space(relation)
        via_dispatcher = build_evidence_set(
            relation, space, method="parallel", n_workers=2, tile_rows=6
        )
        assert_evidence_identical(
            via_dispatcher, build_evidence_set(relation, space, method="tiled", tile_rows=6)
        )
        tiled_run = ADCMiner(function="f1", epsilon=0.05).mine(relation)
        parallel_run = ADCMiner(
            function="f1", epsilon=0.05, evidence_method="parallel", n_workers=2
        ).mine(relation)
        assert {str(adc.constraint) for adc in parallel_run.adcs} == {
            str(adc.constraint) for adc in tiled_run.adcs
        }
