"""The asyncio violation-serving server.

:class:`ViolationServer` turns the incremental subsystem's libraries —
:class:`~repro.incremental.store.EvidenceStore` +
:class:`~repro.incremental.serve.ViolationService` — into a multi-tenant
network service: one store per dataset name, a length-prefixed JSON
protocol (:mod:`repro.serve.protocol`), and two mechanisms that make it a
server rather than an RPC shim:

* **Coalesced appends** — concurrent ``append`` requests against one store
  flow through an :class:`~repro.serve.scheduler.AppendScheduler` and
  commit as one delta-tile fold per flush window.
* **Push-based counters** — every store with installed constraints carries
  :class:`~repro.serve.counters.ViolationCounters` maintained from each
  committed delta, so ``violations``/``report``/``check_batch`` never
  finalize evidence.  Read latency is independent of how much has been
  appended since the last finalize.

The heavyweight ops (``violating_pairs``, ``tuple_scores``, ``remine``)
run on the store's *cached finalized snapshot* — ``EvidenceStore`` already
caches ``evidence()`` and invalidates it on append — inside a worker
executor, under a per-store async lock, so the event loop never stalls and
reads never race a commit.  Each connection gets a bounded request queue
(backpressure stops the frame reader, slowing the peer instead of growing
the server), per-request error frames, and :meth:`ViolationServer.stop`
drains gracefully: pending appends commit, in-flight requests answer, then
connections close.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.dc import DenialConstraint
from repro.core.operators import Operator
from repro.core.predicates import Predicate, PredicateForm
from repro.data.relation import Relation
from repro.data.types import ColumnType
from repro.durability.journal import (
    DEFAULT_DEDUP_WINDOW,
    DEFAULT_SNAPSHOT_BYTES,
    DedupWindow,
    RecoveryError,
    StoreJournal,
    plain_rows,
    relation_types,
)
from repro.incremental.serve import ViolationService
from repro.incremental.store import EvidenceStore
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.federate import render_federated
from repro.obs.httpd import MetricsHTTPServer
from repro.obs.logging import get_logger
from repro.obs.prometheus import render_text
from repro.obs.registry import get_registry as obs_get_registry
from repro.obs.spans import Span
from repro.serve import protocol
from repro.serve.counters import ViolationCounters
from repro.serve.scheduler import AppendScheduler

#: Per-connection pipelining bound: frames parked awaiting dispatch before
#: the reader stops pulling from the socket.
DEFAULT_MAX_PIPELINE = 64

#: Durable store names double as directory names, so they must be safe to
#: join onto ``data_dir`` (no separators, no leading dot).
_STORE_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]*\Z")


def constraint_specs(
    constraints: Sequence[object],
) -> list[list[dict[str, str]]]:
    """The wire/journal form of a constraint list (mined ADCs or plain DCs).

    The inverse of :func:`parse_predicate`, applied per predicate — what
    the journal replays through ``declare`` semantics at recovery.
    """
    specs: list[list[dict[str, str]]] = []
    for entry in constraints:
        dc = getattr(entry, "constraint", entry)  # DiscoveredADC unwraps
        specs.append([
            {
                "left": predicate.left_column,
                "op": predicate.operator.value,
                "right": predicate.right_column,
                "form": predicate.form.value,
            }
            for predicate in dc.predicates
        ])
    return specs


class _RequestError(Exception):
    """Internal: a dispatch failure with a protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class StoreState:
    """Everything the server holds for one tenant store."""

    def __init__(self, name: str, store: EvidenceStore, scheduler: AppendScheduler,
                 lock: asyncio.Lock,
                 journal: StoreJournal | None = None,
                 dedup: DedupWindow | None = None) -> None:
        self.name = name
        self.store = store
        self.scheduler = scheduler
        self.lock = lock
        self.journal = journal
        self.dedup = dedup
        self.recovery: dict[str, object] | None = None
        self.service: ViolationService | None = None
        self.counters: ViolationCounters | None = None

    def close(self) -> None:
        """Release everything that outlives a plain ``del`` (drop path).

        The counters' append listener keeps the state alive through the
        store's listener list, and the journal keeps the WAL file handle
        open — both must be detached explicitly or a dropped tenant leaks.
        """
        if self.counters is not None:
            self.counters.detach()
            self.counters = None
        self.service = None
        if self.journal is not None:
            self.journal.close()


def parse_predicate(spec: Mapping[str, object]) -> Predicate:
    """Build a :class:`Predicate` from its wire form.

    The wire form mirrors the dataclass: ``{"left": "Income", "op": "<=",
    "right": "Tax", "form": "two_tuple_cross_column"}`` (``form`` defaults
    to the same-column two-tuple shape when the columns match).
    """
    try:
        left = str(spec["left"])
        right = str(spec["right"])
        operator = Operator(str(spec["op"]))
    except (KeyError, ValueError) as error:
        raise _RequestError(
            protocol.BAD_REQUEST, f"bad predicate {spec!r}: {error}"
        ) from error
    form_text = spec.get("form")
    if form_text is None:
        form = (
            PredicateForm.TWO_TUPLE_SAME_COLUMN
            if left == right
            else PredicateForm.TWO_TUPLE_CROSS_COLUMN
        )
    else:
        try:
            form = PredicateForm(str(form_text))
        except ValueError as error:
            raise _RequestError(
                protocol.BAD_REQUEST, f"unknown predicate form {form_text!r}"
            ) from error
    try:
        return Predicate(left, operator, right, form)
    except ValueError as error:
        raise _RequestError(protocol.BAD_REQUEST, str(error)) from error


class ViolationServer:
    """Multi-tenant async front-end over evidence stores.

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` lets the OS pick (read
        :attr:`address` after :meth:`start`).
    flush_window:
        Append-coalescing window per store (seconds; see
        :class:`~repro.serve.scheduler.AppendScheduler`).
    max_pending_rows:
        Backpressure bound on parked append rows per store.
    executor_threads:
        Worker threads for blocking store work; at least 2 so one tenant's
        fold cannot starve another's snapshot query.
    store_workers:
        ``n_workers`` handed to each tenant's
        :class:`~repro.incremental.store.EvidenceStore` (process-pool
        width of its folds).
    cluster:
        Optional :class:`~repro.cluster.coordinator.ClusterCoordinator` or
        :class:`~repro.cluster.local.LocalCluster`; tenant folds then run
        over the cluster's workers (coordinator submissions are
        thread-safe, so tenants share it across executor threads).
    max_frame_bytes:
        Refusal bound for a single request/response frame.
    max_pipeline:
        Per-connection bounded-queue depth.
    data_dir:
        Optional durability root.  When set, every tenant store journals
        to ``data_dir/<name>/`` — appends are written ahead of every
        acknowledgment, snapshots bound the log, and :meth:`start`
        recovers every journaled tenant (bit-identically) before the
        server accepts connections.
    fsync:
        WAL fsync policy for tenant journals (``always``/``commit``/
        ``never``; see :class:`~repro.durability.wal.WriteAheadLog`).
    snapshot_every_bytes:
        WAL size that triggers per-tenant snapshot compaction.
    max_stores:
        Optional cap on live tenant stores (``quota_exceeded`` past it).
    max_rows_per_store:
        Optional per-tenant row quota, enforced by each store's
        append scheduler.
    dedup_window:
        Capacity of each store's idempotency window (keyed append
        retries; active regardless of ``data_dir``).
    metrics_port:
        When set, a stdlib HTTP listener on ``(host, metrics_port)``
        serves the process metrics registry in Prometheus text
        exposition (``GET /metrics``); ``0`` lets the OS pick (read
        :attr:`metrics_address` after :meth:`start`).
    slow_op_seconds:
        Requests slower than this are counted in
        ``repro_serve_slow_ops_total`` and logged (with the span's
        segment breakdown when the request was traced).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_window: float = 0.0,
        max_pending_rows: int = 100_000,
        executor_threads: int = 4,
        store_workers: int = 1,
        cluster: object | None = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        data_dir: str | Path | None = None,
        fsync: str = "commit",
        snapshot_every_bytes: int = DEFAULT_SNAPSHOT_BYTES,
        max_stores: int | None = None,
        max_rows_per_store: int | None = None,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        metrics_port: int | None = None,
        slow_op_seconds: float = 1.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.flush_window = float(flush_window)
        self.max_pending_rows = int(max_pending_rows)
        self.store_workers = int(store_workers)
        self.cluster = cluster
        self.max_frame_bytes = int(max_frame_bytes)
        self.max_pipeline = int(max_pipeline)
        self.data_dir = None if data_dir is None else Path(data_dir)
        self.fsync = str(fsync)
        self.snapshot_every_bytes = int(snapshot_every_bytes)
        self.max_stores = None if max_stores is None else int(max_stores)
        self.max_rows_per_store = (
            None if max_rows_per_store is None else int(max_rows_per_store)
        )
        self.dedup_window = int(dedup_window)
        self.metrics_port = None if metrics_port is None else int(metrics_port)
        self.slow_op_seconds = float(slow_op_seconds)
        self._metrics_httpd: MetricsHTTPServer | None = None
        self._log = get_logger()
        self.recovery_failures: dict[str, str] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, int(executor_threads)),
            thread_name_prefix="repro-serve",
        )
        self._stores: dict[str, StoreState | None] = {}  # None = being created
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        self.requests_served = 0
        self._handlers = {
            "ping": self._op_ping,
            "create_store": self._op_create_store,
            "drop_store": self._op_drop_store,
            "append": self._op_append,
            "remine": self._op_remine,
            "declare": self._op_declare,
            "violations": self._op_violations,
            "report": self._op_report,
            "check_batch": self._op_check_batch,
            "violating_pairs": self._op_violating_pairs,
            "tuple_scores": self._op_tuple_scores,
            "set_epsilon": self._op_set_epsilon,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        With ``data_dir`` set, every journaled tenant is recovered *before*
        the listening socket opens, so the first client request already
        sees the restored stores.  A tenant whose journal cannot be
        recovered is reported in ``recovery_failures`` (and ``stats``)
        instead of taking the whole server down — its directory is left
        untouched for inspection.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.data_dir is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self._recover_all
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if self.metrics_port is not None:
            self._metrics_httpd = MetricsHTTPServer(
                obs_get_registry(), self.host, self.metrics_port,
                collect=self._collect_exposition,
                health=self._health_info,
            )
            await self._metrics_httpd.start()
            self._log.info(
                "metrics_listening",
                host=self._metrics_httpd.host, port=self._metrics_httpd.port,
            )
        self._log.info(
            "server_listening", host=self.host, port=self.port,
            stores=sorted(k for k, v in self._stores.items() if v is not None),
            durable=self.data_dir is not None,
        )
        return self.host, self.port

    def _recover_all(self) -> None:
        """Recover every tenant journal under ``data_dir`` (executor)."""
        self.data_dir.mkdir(parents=True, exist_ok=True)
        for child in sorted(self.data_dir.iterdir()):
            if not child.is_dir():
                continue
            try:
                recovered = StoreJournal.recover(
                    child,
                    fsync=self.fsync,
                    snapshot_every_bytes=self.snapshot_every_bytes,
                    store_workers=self.store_workers,
                    cluster=self.cluster,
                )
            except RecoveryError as error:
                self.recovery_failures[child.name] = str(error)
                obs_metrics.RECOVERY_STORES.inc_labels("failed")
                self._log.error(
                    "recovery_failed", store=child.name, error=str(error)
                )
                continue
            dedup = DedupWindow(self.dedup_window)
            dedup.load(recovered.dedup_entries)
            lock = asyncio.Lock()
            scheduler = AppendScheduler(
                recovered.store, lock, self._executor,
                flush_window=self.flush_window,
                max_pending_rows=self.max_pending_rows,
                max_rows=self.max_rows_per_store,
                journal=recovered.journal, dedup=dedup,
            )
            state = StoreState(
                recovered.name, recovered.store, scheduler, lock,
                journal=recovered.journal, dedup=dedup,
            )
            state.recovery = recovered.stats.jsonable()
            if recovered.constraint_specs:
                try:
                    constraints = [
                        DenialConstraint(parse_predicate(p) for p in spec)
                        for spec in recovered.constraint_specs
                    ]
                    self._install_constraints(
                        state, constraints, recovered.epsilon or 0.01,
                        source=recovered.constraint_source or "declared",
                        journal=False,  # replaying, not a new declaration
                    )
                except Exception as error:  # noqa: BLE001 - keep the data
                    recovered.journal.close()
                    self.recovery_failures[child.name] = (
                        f"constraints failed to reinstall: {error}"
                    )
                    obs_metrics.RECOVERY_STORES.inc_labels("failed")
                    self._log.error(
                        "recovery_failed", store=child.name,
                        error=f"constraints failed to reinstall: {error}",
                    )
                    continue
            self._stores[recovered.name] = state
            obs_metrics.RECOVERY_STORES.inc_labels("recovered")
            self._log.info(
                "store_recovered", store=recovered.name,
                n_rows=recovered.store.n_rows, **(state.recovery or {}),
            )

    @property
    def address(self) -> tuple[str, int]:
        """The bound listen address."""
        return self.host, self.port

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The Prometheus endpoint's ``(host, port)``, if one is serving."""
        if self._metrics_httpd is None:
            return None
        return self._metrics_httpd.address

    def _coordinator(self):
        """The cluster coordinator behind ``cluster=``, if any."""
        if self.cluster is None:
            return None
        from repro.cluster.local import resolve_coordinator

        try:
            return resolve_coordinator(self.cluster)
        except TypeError:
            return None

    def _collect_exposition(self) -> str:
        """Prometheus text for a scrape — federated when cluster-backed.

        Runs in an executor (worker pulls round-trip the cluster links);
        ``pull_metrics`` itself never blocks behind a running fold, so a
        scrape during heavy appends just serves the cached, age-stamped
        worker snapshots.
        """
        registry = obs_get_registry()
        coordinator = self._coordinator()
        if coordinator is None or not registry.enabled:
            return render_text(registry)
        return render_federated(registry, coordinator.pull_metrics(timeout=0.5))

    def _health_info(self) -> dict:
        """The ``/healthz`` body: liveness plus recovery state."""
        return {
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "stores": sum(1 for v in self._stores.values() if v is not None),
            "requests_served": self.requests_served,
            "recovery_failures": len(self.recovery_failures),
        }

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (the ``__main__`` loop)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain: commit pending appends, answer in-flight, close.

        New requests arriving during the drain are answered with a
        ``shutting_down`` error frame rather than dropped; pending append
        flushes commit (nothing acknowledged is ever lost), then every
        connection closes and the executor shuts down.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_httpd is not None:
            await self._metrics_httpd.stop()
        for state in list(self._stores.values()):
            if state is not None:
                await state.scheduler.drain()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for state in list(self._stores.values()):
            if state is not None:
                state.close()  # flush handles closed only after the drain
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown
        )
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(asyncio.current_task())
        peer = writer.get_extra_info("peername")
        obs_metrics.SERVE_CONNECTIONS_TOTAL.inc()
        obs_metrics.SERVE_CONNECTIONS.inc()
        self._log.debug("connection_open", peer=peer)
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_pipeline)
        worker = asyncio.create_task(self._connection_worker(queue, writer))
        try:
            while True:
                header = await reader.readexactly(protocol.HEADER.size)
                length = protocol.frame_length(header, self.max_frame_bytes)
                payload = await reader.readexactly(length)
                # Bounded queue: a full pipeline parks the reader here, so
                # the kernel's receive window throttles the peer.
                await queue.put(protocol.decode_payload(payload))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # clean EOF or peer death: just drain and close
        except protocol.ProtocolError as error:
            await queue.put(error)  # answer once, then the link closes
        except asyncio.CancelledError:
            pass  # server stopping: let queued requests answer first
        finally:
            await queue.put(None)
            try:
                await asyncio.shield(worker)
            except asyncio.CancelledError:
                worker.cancel()
            self._connections.discard(asyncio.current_task())
            obs_metrics.SERVE_CONNECTIONS.dec()
            self._log.debug("connection_closed", peer=peer)

    async def _connection_worker(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one connection's requests in arrival order."""
        try:
            while True:
                message = await queue.get()
                if message is None:
                    break
                if isinstance(message, protocol.ProtocolError):
                    writer.write(protocol.encode_frame(
                        protocol.error_response(None, protocol.BAD_REQUEST, str(message))
                    ))
                    break
                response = await self._dispatch(message)
                writer.write(protocol.encode_frame(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer died mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, message: dict) -> dict:
        """Route one request; every failure becomes an error frame.

        Every dispatch lands in ``repro_serve_requests_total{op,store,code}``
        and the per-op latency histogram.  A request carrying a ``trace``
        field gets a :class:`~repro.obs.spans.Span` (under ``"_span"``, an
        internal key handlers pick up); its segment breakdown rides back on
        the ok response under ``"trace"``, with the unattributed serve-path
        remainder reported as the ``ack`` segment.
        """
        request_id = message.get("id")
        op = message.get("op")
        self.requests_served += 1
        started = time.perf_counter()
        op_label = op if isinstance(op, str) else repr(op)
        store_field = message.get("store")
        store_label = store_field if isinstance(store_field, str) else ""
        # Stores the request could legitimately name at arrival time; a
        # drop_store removes the entry before metrics are recorded below,
        # so remember that the name was real.
        store_known = isinstance(store_field, str) and store_field in self._stores
        # "_span" is a reserved internal key: drop whatever the client sent
        # so handlers can only ever see a genuine Span installed here.
        message.pop("_span", None)
        span: Span | None = None
        trace = message.get("trace")
        if trace:
            trace_id = trace if isinstance(trace, str) else obs_spans.new_trace_id()
            span = Span(trace_id, op=op_label, store=store_label or None)
            message["_span"] = span
        code = "ok"
        handler = self._handlers.get(op) if isinstance(op, str) else None
        if handler is None:
            code = protocol.UNKNOWN_OP
            response = protocol.error_response(
                request_id, protocol.UNKNOWN_OP,
                f"unknown op {op!r}; supported: {sorted(self._handlers)}",
            )
        elif self._stopping and op not in ("ping", "stats", "metrics"):
            code = protocol.SHUTTING_DOWN
            response = protocol.error_response(
                request_id, protocol.SHUTTING_DOWN, "server is draining"
            )
        else:
            try:
                fields = await handler(message)
                response = protocol.ok_response(request_id, **fields)
            except _RequestError as error:
                code = error.code
                response = protocol.error_response(
                    request_id, error.code, str(error)
                )
            except protocol.QuotaExceeded as error:
                code = protocol.QUOTA_EXCEEDED
                response = protocol.error_response(
                    request_id, protocol.QUOTA_EXCEEDED, str(error)
                )
            except (KeyError, ValueError, TypeError, IndexError) as error:
                code = protocol.BAD_REQUEST
                response = protocol.error_response(
                    request_id, protocol.BAD_REQUEST,
                    f"{type(error).__name__}: {error}",
                )
            except Exception as error:  # noqa: BLE001 - must answer, not die
                code = protocol.INTERNAL
                response = protocol.error_response(
                    request_id, protocol.INTERNAL,
                    f"{type(error).__name__}: {error}",
                )
                self._log.error(
                    "request_failed", op=op_label, store=store_label,
                    code=code, error=f"{type(error).__name__}: {error}",
                )
        duration = time.perf_counter() - started
        # Metric labels must stay low-cardinality: only ops/stores the
        # server actually knows get their own series, everything a client
        # invented collapses into a sentinel (create_store makes the name
        # real by now, hence the second membership check).
        metric_op = op if handler is not None else "_unknown"
        if store_field is None:
            metric_store = ""
        elif store_known or (
            isinstance(store_field, str) and store_field in self._stores
        ):
            metric_store = store_field
        else:
            metric_store = "_unknown"
        obs_metrics.SERVE_REQUESTS.inc_labels(metric_op, metric_store, code)
        obs_metrics.SERVE_REQUEST_SECONDS.observe_labels(
            metric_op, value=duration
        )
        if span is not None:
            span.add_segment("ack", duration - span.accounted())
            trace_payload = span.jsonable()
            trace_payload["seconds"] = round(duration, 9)
            if code == "ok":
                response["trace"] = trace_payload
        if duration >= self.slow_op_seconds:
            obs_metrics.SERVE_SLOW_OPS.inc_labels(metric_op)
            self._log.warning(
                "slow_op", op=op_label, store=store_label, code=code,
                seconds=round(duration, 6),
                segments=None if span is None else span.jsonable()["segments"],
            )
        return response

    # ------------------------------------------------------------------
    # Request helpers
    # ------------------------------------------------------------------
    def _state(self, message: Mapping[str, object]) -> StoreState:
        name = message.get("store")
        if not isinstance(name, str) or not name:
            raise _RequestError(protocol.BAD_REQUEST, "missing 'store' field")
        state = self._stores.get(name)
        if state is None:
            raise _RequestError(protocol.UNKNOWN_STORE, f"no store named {name!r}")
        return state

    @staticmethod
    def _service(state: StoreState) -> ViolationService:
        if state.service is None:
            raise _RequestError(
                protocol.NO_CONSTRAINTS,
                f"store {state.name!r} has no constraints installed; "
                "run 'remine' or 'declare' first",
            )
        return state.service

    @staticmethod
    def _span_field(message: Mapping[str, object]) -> Span | None:
        """The request's Span, or None — never a client-smuggled value.

        ``_dispatch`` already strips inbound ``"_span"`` keys; this guard
        keeps a stray dict from reaching span-consuming code even if a new
        entry point forgets to.
        """
        span = message.get("_span")
        return span if isinstance(span, Span) else None

    @staticmethod
    def _rows_field(message: Mapping[str, object]) -> list[dict]:
        rows = message.get("rows")
        if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
            raise _RequestError(
                protocol.BAD_REQUEST, "'rows' must be a list of {column: value} objects"
            )
        return rows

    @staticmethod
    def _dc_index(message: Mapping[str, object], service: ViolationService) -> int:
        dc = message.get("dc")
        if not isinstance(dc, int) or isinstance(dc, bool):
            raise _RequestError(protocol.BAD_REQUEST, "'dc' must be an integer index")
        if not 0 <= dc < len(service.constraints):
            raise _RequestError(
                protocol.BAD_REQUEST,
                f"dc index {dc} out of range for {len(service.constraints)} constraints",
            )
        return dc

    async def _run_locked(self, state: StoreState, fn, span: Span | None = None):
        """Run blocking store work on the executor under the store's lock.

        ``span`` (when set) becomes the ambient trace span on the executor
        thread for the duration of ``fn`` — the hop would otherwise drop it.
        """
        async with state.lock:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, obs_spans.bound(span, fn)
            )

    def _install_constraints(
        self,
        state: StoreState,
        constraints: Sequence[object],
        epsilon: float,
        source: str = "declared",
        journal: bool = True,
    ) -> dict[str, object]:
        """Wire a constraint set to a store: service + fresh push counters.

        Runs on the executor (the counter seed is one pass over the stored
        partial).  The service reads its admission base counts from the
        counters, so ``check_batch`` never finalizes either.  With a
        durable store the installed set is journaled (``journal=False``
        only on the recovery path, which is replaying the journal).
        """
        counters_box: list[ViolationCounters] = []
        service = ViolationService(
            state.store,
            constraints,
            epsilon=epsilon,
            base_counts_provider=lambda: counters_box[0].counts(),
        )
        if journal and state.journal is not None:
            # Write-ahead: journal before the swap, so a journal failure
            # leaves the previous constraint set fully live.
            state.journal.log_constraints(
                constraint_specs(service.constraints), epsilon, source
            )
        if state.counters is not None:
            state.counters.detach()  # superseded counters must stop updating
        counters_box.append(ViolationCounters(service.hitting_words, state.store))
        state.service = service
        state.counters = counters_box[0]
        return {
            "store": state.name,
            "constraints": [str(dc) for dc in service.constraints],
            "epsilon": service.epsilon,
        }

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def _op_ping(self, message: Mapping[str, object]) -> dict:
        return {
            "server": "repro-serve",
            "protocol": protocol.PROTOCOL_VERSION,
            "stores": sorted(k for k, v in self._stores.items() if v is not None),
            "stopping": self._stopping,
        }

    async def _op_create_store(self, message: Mapping[str, object]) -> dict:
        name = message.get("store")
        if not isinstance(name, str) or not name:
            raise _RequestError(protocol.BAD_REQUEST, "missing 'store' field")
        rows = self._rows_field(message)
        if not rows:
            raise _RequestError(
                protocol.BAD_REQUEST, "'rows' must seed at least one row"
            )
        types_field = message.get("types") or {}
        if not isinstance(types_field, dict):
            raise _RequestError(protocol.BAD_REQUEST, "'types' must be an object")
        try:
            types = {
                column: ColumnType(str(type_name))
                for column, type_name in types_field.items()
            }
        except ValueError as error:
            raise _RequestError(protocol.BAD_REQUEST, str(error)) from error
        if self.data_dir is not None and not _STORE_NAME.match(name):
            raise _RequestError(
                protocol.BAD_REQUEST,
                f"store name {name!r} is not durable-safe: names double as "
                "directory names (letters, digits, '_', '.', '-'; no "
                "leading '.')",
            )
        if name in self._stores:
            raise _RequestError(
                protocol.STORE_EXISTS, f"store {name!r} already exists"
            )
        if (
            self.max_stores is not None
            and len(self._stores) >= self.max_stores
        ):
            raise _RequestError(
                protocol.QUOTA_EXCEEDED,
                f"server caps live stores at {self.max_stores}",
            )
        if (
            self.max_rows_per_store is not None
            and len(rows) > self.max_rows_per_store
        ):
            raise _RequestError(
                protocol.QUOTA_EXCEEDED,
                f"seed of {len(rows)} rows exceeds the "
                f"{self.max_rows_per_store}-row per-store quota",
            )
        # Reserve the name before the (slow) executor build so a racing
        # duplicate create fails instead of building twice.
        self._stores[name] = None

        def build() -> StoreState:
            relation = Relation.from_records(name, rows, types or None)
            store = EvidenceStore(
                relation, n_workers=self.store_workers, cluster=self.cluster
            )
            journal = None
            if self.data_dir is not None:
                # Journal the creation only after the store accepted the
                # rows: a build failure must not leave a journal behind.
                journal = StoreJournal.create(
                    self.data_dir / name, name,
                    plain_rows(relation), relation_types(relation),
                    fsync=self.fsync,
                    snapshot_every_bytes=self.snapshot_every_bytes,
                )
            dedup = DedupWindow(self.dedup_window)
            lock = asyncio.Lock()
            scheduler = AppendScheduler(
                store, lock, self._executor,
                flush_window=self.flush_window,
                max_pending_rows=self.max_pending_rows,
                max_rows=self.max_rows_per_store,
                journal=journal, dedup=dedup,
            )
            return StoreState(name, store, scheduler, lock,
                              journal=journal, dedup=dedup)

        try:
            state = await asyncio.get_running_loop().run_in_executor(
                self._executor, build
            )
        except Exception:
            del self._stores[name]
            raise
        self._stores[name] = state
        return {
            "store": name,
            "n_rows": state.store.n_rows,
            "n_predicates": len(state.store.space),
            "columns": state.store.relation.column_names,
            "durable": state.journal is not None,
        }

    async def _op_drop_store(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        await state.scheduler.drain()
        del self._stores[state.name]

        def teardown() -> None:
            state.close()
            if self.data_dir is not None:
                shutil.rmtree(self.data_dir / state.name, ignore_errors=True)

        await asyncio.get_running_loop().run_in_executor(self._executor, teardown)
        return {"store": state.name, "dropped": True}

    async def _op_append(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        rows = self._rows_field(message)
        request_key = message.get("request_key")
        if request_key is not None and not isinstance(request_key, str):
            raise _RequestError(
                protocol.BAD_REQUEST, "'request_key' must be a string"
            )
        result = await state.scheduler.append(
            rows, request_key=request_key, span=self._span_field(message)
        )
        return {"store": state.name, **result}

    async def _op_set_epsilon(self, message: Mapping[str, object]) -> dict:
        """Change the served epsilon without re-installing constraints."""
        state = self._state(message)
        service = self._service(state)
        try:
            epsilon = float(message["epsilon"])
        except (KeyError, TypeError, ValueError) as error:
            raise _RequestError(
                protocol.BAD_REQUEST, f"bad 'epsilon': {error}"
            ) from error

        def apply() -> dict[str, object]:
            if state.journal is not None:
                state.journal.log_epsilon(epsilon)  # write-ahead of the swap
            service.epsilon = epsilon
            return {"store": state.name, "epsilon": epsilon}

        return await self._run_locked(state, apply)

    async def _op_remine(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        epsilon = float(message.get("epsilon", 0.01))
        function = str(message.get("function", "f1"))
        max_dc_size = message.get("max_dc_size")
        limit = message.get("limit")

        def mine() -> dict[str, object]:
            adcs = state.store.remine(
                epsilon, function,
                max_dc_size=None if max_dc_size is None else int(max_dc_size),
            )
            if limit is not None:
                adcs = adcs[: int(limit)]
            fields = {**self._install_constraints(state, adcs, epsilon,
                                                  source="mined"),
                      "mined": len(adcs)}
            stats = state.store.last_enumeration_statistics
            if stats is not None:
                fields["enumeration"] = {
                    "recursive_calls": stats.recursive_calls,
                    "hit_branches": stats.hit_branches,
                    "skip_branches": stats.skip_branches,
                    "pruned_by_willcover": stats.pruned_by_willcover,
                    "pruned_by_criticality": stats.pruned_by_criticality,
                    "minimality_checks": stats.minimality_checks,
                    "outputs": stats.outputs,
                    "elapsed_seconds": stats.elapsed_seconds,
                    "nodes_per_second": stats.nodes_per_second,
                    "extra": dict(stats.extra),
                }
            return fields

        return await self._run_locked(state, mine, span=self._span_field(message))

    async def _op_declare(self, message: Mapping[str, object]) -> dict:
        """Install hand-written DCs (each a list of predicate specs)."""
        state = self._state(message)
        epsilon = float(message.get("epsilon", 0.01))
        specs = message.get("constraints")
        if not isinstance(specs, list) or not specs:
            raise _RequestError(
                protocol.BAD_REQUEST,
                "'constraints' must be a non-empty list of predicate-spec lists",
            )
        constraints: list[DenialConstraint] = []
        for spec in specs:
            if not isinstance(spec, list) or not spec:
                raise _RequestError(
                    protocol.BAD_REQUEST,
                    "each constraint must be a non-empty list of predicate specs",
                )
            constraints.append(DenialConstraint(parse_predicate(p) for p in spec))
        space = state.store.space
        for constraint in constraints:
            for predicate in constraint.predicates:
                if predicate not in space:
                    raise _RequestError(
                        protocol.BAD_REQUEST,
                        f"predicate {predicate} is outside the store's "
                        f"predicate space",
                    )

        def install() -> dict[str, object]:
            return self._install_constraints(state, constraints, epsilon)

        return await self._run_locked(state, install)

    def _counter_report(self, state: StoreState, index: int) -> dict[str, object]:
        snapshot = state.counters.snapshot()
        return {
            "dc": index,
            "constraint": str(state.service.constraints[index]),
            "count": snapshot.counts[index],
            "total_pairs": snapshot.total_pairs,
            "rate": snapshot.rate(index),
            "n_rows": snapshot.n_rows,
        }

    async def _op_violations(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        service = self._service(state)
        index = self._dc_index(message, service)
        mode = message.get("mode", "counters")
        if mode == "counters":
            return {"store": state.name, **self._counter_report(state, index)}
        if mode == "finalize":
            # Benchmark baseline, deliberately kept: answer off a fresh
            # finalize of the store's evidence instead of the counters.
            def read() -> dict[str, object]:
                report = service.violations(index)
                return {
                    "dc": index,
                    "constraint": str(report.constraint),
                    "count": report.count,
                    "total_pairs": report.total_pairs,
                    "rate": report.rate,
                    "n_rows": state.store.n_rows,
                }
            return {"store": state.name, **await self._run_locked(state, read)}
        raise _RequestError(
            protocol.BAD_REQUEST, f"unknown mode {mode!r} (counters|finalize)"
        )

    async def _op_report(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        service = self._service(state)
        snapshot = state.counters.snapshot()
        return {
            "store": state.name,
            "n_rows": snapshot.n_rows,
            "total_pairs": snapshot.total_pairs,
            "report": [
                {
                    "dc": index,
                    "constraint": str(service.constraints[index]),
                    "count": snapshot.counts[index],
                    "rate": snapshot.rate(index),
                    "exceeds_epsilon": snapshot.rate(index) > service.epsilon,
                }
                for index in range(len(service.constraints))
            ],
        }

    async def _op_check_batch(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        service = self._service(state)
        rows = self._rows_field(message)

        def check() -> list[dict[str, object]]:
            return [
                {
                    "row": admission.row_index,
                    "rates": list(admission.rates),
                    "worst_rate": admission.worst_rate,
                    "admissible": admission.admissible,
                }
                for admission in service.check_batch(rows)
            ]

        return {
            "store": state.name,
            "epsilon": service.epsilon,
            "rows": await self._run_locked(state, check),
        }

    async def _op_violating_pairs(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        service = self._service(state)
        index = self._dc_index(message, service)
        limit = int(message.get("limit", 10_000))
        if limit < 1:
            raise _RequestError(protocol.BAD_REQUEST, "'limit' must be positive")

        def replay() -> dict[str, object]:
            pairs = list(itertools.islice(service.violating_pairs(index), limit + 1))
            truncated = len(pairs) > limit
            return {
                "dc": index,
                "pairs": [[left, right] for left, right in pairs[:limit]],
                "truncated": truncated,
            }

        return {"store": state.name, **await self._run_locked(state, replay)}

    async def _op_tuple_scores(self, message: Mapping[str, object]) -> dict:
        state = self._state(message)
        service = self._service(state)
        index = self._dc_index(message, service)
        want_ranking = bool(message.get("ranking", False))

        def score() -> dict[str, object]:
            fields: dict[str, object] = {
                "dc": index,
                "scores": service.tuple_scores(index),
            }
            if want_ranking:
                fields["ranking"] = service.repair_ranking(index)
            return fields

        return {"store": state.name, **await self._run_locked(state, score)}

    async def _op_stats(self, message: Mapping[str, object]) -> dict:
        stores: dict[str, object] = {}
        for name, state in self._stores.items():
            if state is None:
                stores[name] = {"status": "creating"}
                continue
            scheduler = state.scheduler
            entry: dict[str, object] = {
                "n_rows": state.store.n_rows,
                "generation": state.store.generation,
                "distinct_evidences": len(state.store.partial),
                "snapshot_cached": state.store._evidence is not None,
                "constraints": (
                    len(state.service.constraints) if state.service else 0
                ),
                "append": {
                    "flushes": scheduler.flushes,
                    "coalesced_requests": scheduler.coalesced_requests,
                    "appended_rows": scheduler.appended_rows,
                    "fallback_flushes": scheduler.fallback_flushes,
                    "pending_requests": scheduler.pending_requests,
                },
            }
            if state.counters is not None:
                snapshot = state.counters.snapshot()
                entry["counters"] = {
                    "counts": list(snapshot.counts),
                    "n_rows": snapshot.n_rows,
                    "applied_deltas": state.counters.applied_deltas,
                }
            if state.journal is not None:
                entry["durability"] = {
                    "records_logged": state.journal.records_logged,
                    "wal_bytes": state.journal.wal.size_bytes,
                    "snapshots_written": state.journal.snapshots_written,
                    "snapshot_version": state.journal.snapshot_version,
                    "dedup_entries": len(state.dedup) if state.dedup else 0,
                    "recovered": state.recovery,  # None on a fresh create
                }
            stores[name] = entry
        fields: dict[str, object] = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests_served": self.requests_served,
            "connections": len(self._connections),
            "stores": stores,
        }
        if self.data_dir is not None:
            fields["durability"] = {
                "data_dir": str(self.data_dir),
                "fsync": self.fsync,
                "recovery_failures": dict(self.recovery_failures),
            }
        coordinator = self._coordinator()
        if coordinator is not None:
            fields["cluster"] = {
                "alive_workers": coordinator.n_alive,
                "failed_workers": coordinator.failed_workers,
                "reissued_tasks": coordinator.reissued_tasks,
                "workers": coordinator.worker_stats(),
            }
        return fields

    async def _op_metrics(self, message: Mapping[str, object]) -> dict:
        """Dump the process metrics registry over the wire protocol.

        ``format: "json"`` (default) returns the structured snapshot;
        ``format: "text"`` returns the same Prometheus exposition the HTTP
        endpoint serves, for clients without a scraper.
        """
        registry = obs_get_registry()
        format_field = message.get("format", "json")
        if format_field not in ("json", "text"):
            raise _RequestError(
                protocol.BAD_REQUEST,
                f"unknown format {format_field!r} (json|text)",
            )
        # Cluster-backed servers answer with the federated view: worker
        # registries pulled over the fabric (never blocking a running
        # fold — see ClusterCoordinator.pull_metrics), each snapshot
        # already stamped with its worker id and staleness age.
        coordinator = self._coordinator()
        workers: list[dict] | None = None
        if coordinator is not None and registry.enabled:
            loop = asyncio.get_running_loop()
            workers = await loop.run_in_executor(
                self._executor, lambda: coordinator.pull_metrics(timeout=0.5)
            )
        if format_field == "text":
            text = (
                render_federated(registry, workers)
                if workers
                else render_text(registry)
            )
            fields: dict[str, object] = {
                "format": "text",
                "enabled": registry.enabled,
                "text": text,
            }
        else:
            fields = {
                "format": "json",
                "enabled": registry.enabled,
                "metrics": registry.snapshot(),
            }
        if workers is not None:
            fields["workers"] = workers
        return fields


class ServerThread:
    """A :class:`ViolationServer` on a private loop in a daemon thread.

    What tests, benchmarks, and examples use to get a live listening
    server inside an otherwise synchronous program::

        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                ...

    ``stop()`` performs the same graceful drain as SIGTERM would.
    """

    def __init__(self, **server_kwargs: object) -> None:
        self._loop = asyncio.new_event_loop()
        self._server = ViolationServer(**server_kwargs)
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise self._failure

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._server.start())
        except BaseException as error:  # bind failure: surface in __init__
            self._failure = error
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_until_complete(self._server.serve_forever())
        self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        """The listening ``(host, port)``."""
        return self._server.address

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The Prometheus endpoint's address, when ``metrics_port`` was set."""
        return self._server.metrics_address

    @property
    def server(self) -> ViolationServer:
        """The wrapped server (only touch it from its own loop)."""
        return self._server

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain and stop the server, then join the loop thread."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self._server.stop(), self._loop)
        future.result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> tuple[str, int]:
        return self.address

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
