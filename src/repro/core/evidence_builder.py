"""Evidence-set construction.

Two builders are provided:

* :func:`build_evidence_set` — the default, vectorised builder.  Predicates
  are processed per column-pair group; for every group the order category of
  every ordered tuple pair is computed with numpy broadcasting and mapped to
  a per-pair predicate bitmask accumulated in 64-bit planes.  This mirrors
  the bit-level / PLI strategy of DCFinder [37], which the paper adopts for
  its evidence construction component.
* :func:`build_evidence_set_pairwise` — the naive row-by-row builder of
  FASTDC/AFASTDC [11], kept both as a correctness oracle for tests and as
  the evidence-construction baseline timed in Figures 7 and 8.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import (
    SATISFIED_BY_CATEGORY,
    SATISFIED_BY_CATEGORY_STRING,
    OrderCategory,
)
from repro.core.evidence import EvidenceSet, TupleParticipation, evidence_from_pair_masks
from repro.core.predicate_space import PredicateSpace
from repro.core.predicates import PredicateForm
from repro.data.relation import Relation
from repro.data.types import ColumnType

_WORD_BITS = 64


def build_evidence_set(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
) -> EvidenceSet:
    """Build ``Evi(D)`` with the vectorised (DCFinder-style) strategy.

    Parameters
    ----------
    relation:
        The database ``D`` (or a sample of it).
    space:
        Predicate space produced by
        :func:`repro.core.predicate_space.build_predicate_space`.
    include_participation:
        Whether to also build the per-evidence tuple-participation structure
        (needed by the f2/f3 approximation functions; costs one extra pass).
    """
    n = relation.n_rows
    if n < 2:
        return EvidenceSet(space, [], [], n, [] if include_participation else None)

    n_words = (len(space) + _WORD_BITS - 1) // _WORD_BITS
    planes = [np.zeros((n, n), dtype=np.uint64) for _ in range(n_words)]

    for group in space.groups:
        left_column, right_column, form = group.key
        categories = _pair_categories(relation, left_column, right_column, form)
        numeric = group.numeric
        lookup = _category_masks(space, group.indices, numeric)
        for word in range(n_words):
            word_lookup = lookup[:, word]
            if not word_lookup.any():
                continue
            planes[word] |= word_lookup[categories]

    off_diagonal = ~np.eye(n, dtype=bool)
    flat_words = np.stack([plane[off_diagonal] for plane in planes], axis=1)
    unique_words, inverse, counts = _unique_rows(flat_words)

    masks = [_words_to_mask(row) for row in unique_words]
    participation = None
    if include_participation:
        row_index, col_index = np.nonzero(off_diagonal)
        participation = _build_participation(inverse, row_index, col_index, len(masks))
    return EvidenceSet(space, masks, counts.tolist(), n, participation)


def build_evidence_set_pairwise(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
) -> EvidenceSet:
    """Build ``Evi(D)`` by evaluating every predicate on every ordered pair.

    This is the quadratic, per-pair strategy of AFASTDC [11]; it is orders of
    magnitude slower than :func:`build_evidence_set` but trivially correct,
    so it doubles as the reference implementation in the test suite.
    """
    n = relation.n_rows
    rows = [relation.row(i) for i in range(n)]
    pair_masks: list[int] = []
    pair_tuples: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            mask = 0
            for index, predicate in enumerate(space.predicates):
                if predicate.evaluate(rows[i], rows[j]):
                    mask |= 1 << index
            pair_masks.append(mask)
            pair_tuples.append((i, j))
    return evidence_from_pair_masks(
        space,
        pair_masks,
        n,
        pair_tuples if include_participation else None,
    )


# ----------------------------------------------------------------------
# Internals of the vectorised builder
# ----------------------------------------------------------------------
def _pair_categories(
    relation: Relation,
    left_column: str,
    right_column: str,
    form: PredicateForm,
) -> np.ndarray:
    """Order category of every ordered row pair for one predicate group.

    Returns an ``n x n`` int8 array of :class:`OrderCategory` values.  The
    diagonal is filled like any other entry and discarded later.
    """
    left = relation.column(left_column)
    right = relation.column(right_column)
    numeric = left.type.is_numeric and right.type.is_numeric

    if form is PredicateForm.SINGLE_TUPLE:
        per_row = _row_categories(left.values, right.values, numeric)
        return np.broadcast_to(per_row[:, None], (len(per_row), len(per_row))).copy()

    if numeric:
        left_values = left.values.astype(np.float64, copy=False)
        right_values = right.values.astype(np.float64, copy=False)
        sign = np.sign(left_values[:, None] - right_values[None, :])
        return (sign + 1).astype(np.int8)

    left_codes, right_codes = _string_codes(left.values, right.values)
    equal = left_codes[:, None] == right_codes[None, :]
    categories = np.full(equal.shape, OrderCategory.LESS, dtype=np.int8)
    categories[equal] = OrderCategory.EQUAL
    return categories


def _row_categories(left_values: np.ndarray, right_values: np.ndarray, numeric: bool) -> np.ndarray:
    """Per-row order category for single-tuple predicates ``t[A] op t[B]``."""
    if numeric:
        sign = np.sign(left_values.astype(np.float64) - right_values.astype(np.float64))
        return (sign + 1).astype(np.int8)
    left_codes, right_codes = _string_codes(left_values, right_values)
    categories = np.full(len(left_codes), OrderCategory.LESS, dtype=np.int8)
    categories[left_codes == right_codes] = OrderCategory.EQUAL
    return categories


def _string_codes(left_values: np.ndarray, right_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factorize two (possibly object-dtype) columns into comparable codes."""
    left_str = np.asarray([str(v) for v in left_values.tolist()])
    right_str = np.asarray([str(v) for v in right_values.tolist()])
    combined = np.concatenate([left_str, right_str])
    _, inverse = np.unique(combined, return_inverse=True)
    return inverse[: len(left_str)], inverse[len(left_str):]


def _category_masks(space: PredicateSpace, indices: tuple[int, ...], numeric: bool) -> np.ndarray:
    """Per-category, per-word bitmasks for one predicate group.

    Returns an array of shape ``(3, n_words)`` (uint64) where entry
    ``[category, word]`` is the OR of the bits of the group's predicates
    satisfied in that category, restricted to that 64-bit word.
    """
    n_words = (len(space) + _WORD_BITS - 1) // _WORD_BITS
    table = SATISFIED_BY_CATEGORY if numeric else SATISFIED_BY_CATEGORY_STRING
    masks = np.zeros((3, n_words), dtype=np.uint64)
    for category in OrderCategory:
        satisfied = table[category]
        for index in indices:
            if space[index].operator in satisfied:
                word, bit = divmod(index, _WORD_BITS)
                masks[category, word] |= np.uint64(1) << np.uint64(bit)
    return masks


def _unique_rows(flat_words: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct rows of a 2-D uint64 array with inverse indices and counts."""
    contiguous = np.ascontiguousarray(flat_words)
    void_view = contiguous.view([("", contiguous.dtype)] * contiguous.shape[1]).ravel()
    _, first_index, inverse, counts = np.unique(
        void_view, return_index=True, return_inverse=True, return_counts=True
    )
    return contiguous[first_index], inverse.ravel(), counts


def _words_to_mask(words: np.ndarray) -> int:
    """Assemble the 64-bit words of one evidence into a Python int bitmask."""
    mask = 0
    for word_position, word in enumerate(words.tolist()):
        mask |= int(word) << (_WORD_BITS * word_position)
    return mask


def _build_participation(
    inverse: np.ndarray,
    row_index: np.ndarray,
    col_index: np.ndarray,
    n_evidences: int,
) -> list[TupleParticipation]:
    """Aggregate the ``vios`` structure from the per-pair evidence ids."""
    n_rows = int(max(row_index.max(), col_index.max())) + 1 if len(row_index) else 0
    evidence_ids = inverse.astype(np.int64)
    keys = np.concatenate([
        evidence_ids * n_rows + row_index.astype(np.int64),
        evidence_ids * n_rows + col_index.astype(np.int64),
    ])
    unique_keys, key_counts = np.unique(keys, return_counts=True)
    participation: list[TupleParticipation] = []
    owners = unique_keys // n_rows
    tuples = unique_keys % n_rows
    boundaries = np.searchsorted(owners, np.arange(n_evidences + 1))
    for evidence in range(n_evidences):
        start, stop = boundaries[evidence], boundaries[evidence + 1]
        participation.append(
            TupleParticipation(tuples[start:stop].copy(), key_counts[start:stop].copy())
        )
    return participation
