"""Randomized cross-checks of the tiled evidence builder.

The tiled builder must be indistinguishable from the dense word-plane
builder and from the pairwise oracle on masks, counts, and tuple
participation — across seeds, mixed numeric/string schemas, and odd sizes
(``n < tile_rows``, ``n % tile_rows != 0``, tiles of edge 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_random_relation
from repro.core.evidence import words_to_mask
from repro.core.evidence_builder import (
    build_evidence_set,
    build_evidence_set_dense,
    build_evidence_set_pairwise,
    build_evidence_set_tiled,
)
from repro.core.predicate_space import build_predicate_space


def _mask_count_map(evidence) -> dict[int, int]:
    return dict(zip(evidence.masks, evidence.counts.tolist()))


def _participation_map(evidence) -> dict[int, dict[int, int]]:
    return {
        mask: dict(
            zip(
                evidence.participation(i).tuple_ids.tolist(),
                evidence.participation(i).pair_counts.tolist(),
            )
        )
        for i, mask in enumerate(evidence.masks)
    }


class TestTiledMatchesOracles:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("tile_rows", [1, 3, 4, 16])
    def test_masks_counts_participation(self, seed, tile_rows):
        relation = make_random_relation(
            n_rows=9, n_string_columns=2, n_numeric_columns=2, seed=seed
        )
        space = build_predicate_space(relation)
        tiled = build_evidence_set_tiled(
            relation, space, include_participation=True, tile_rows=tile_rows
        )
        dense = build_evidence_set_dense(relation, space, include_participation=True)
        oracle = build_evidence_set_pairwise(relation, space, include_participation=True)
        assert _mask_count_map(tiled) == _mask_count_map(oracle)
        assert _mask_count_map(dense) == _mask_count_map(oracle)
        assert _participation_map(tiled) == _participation_map(oracle)
        assert _participation_map(dense) == _participation_map(oracle)

    @pytest.mark.parametrize("n_rows", [2, 3, 5, 7, 11])
    def test_odd_sizes_not_multiple_of_tile(self, n_rows):
        # n < tile_rows and n % tile_rows != 0 both exercised (tile_rows=4).
        relation = make_random_relation(n_rows=n_rows, seed=n_rows)
        space = build_predicate_space(relation)
        tiled = build_evidence_set_tiled(
            relation, space, include_participation=True, tile_rows=4
        )
        oracle = build_evidence_set_pairwise(relation, space, include_participation=True)
        assert _mask_count_map(tiled) == _mask_count_map(oracle)
        assert _participation_map(tiled) == _participation_map(oracle)

    def test_tile_larger_than_relation(self):
        relation = make_random_relation(n_rows=6, seed=9)
        space = build_predicate_space(relation)
        tiled = build_evidence_set_tiled(
            relation, space, include_participation=True, tile_rows=512
        )
        oracle = build_evidence_set_pairwise(relation, space, include_participation=True)
        assert _mask_count_map(tiled) == _mask_count_map(oracle)
        assert _participation_map(tiled) == _participation_map(oracle)

    def test_string_only_and_numeric_only_schemas(self):
        for kwargs in (
            {"n_string_columns": 3, "n_numeric_columns": 0},
            {"n_string_columns": 0, "n_numeric_columns": 3},
        ):
            relation = make_random_relation(n_rows=8, seed=5, **kwargs)
            space = build_predicate_space(relation)
            tiled = build_evidence_set_tiled(relation, space, tile_rows=3)
            oracle = build_evidence_set_pairwise(relation, space)
            assert _mask_count_map(tiled) == _mask_count_map(oracle)

    def test_invalid_tile_rows_rejected(self):
        relation = make_random_relation(n_rows=4)
        space = build_predicate_space(relation)
        with pytest.raises(ValueError):
            build_evidence_set_tiled(relation, space, tile_rows=0)

    def test_dispatcher_methods(self):
        relation = make_random_relation(n_rows=6, seed=2)
        space = build_predicate_space(relation)
        reference = _mask_count_map(build_evidence_set_pairwise(relation, space))
        for method in ("tiled", "vectorized", "dense", "pairwise"):
            evidence = build_evidence_set(relation, space, method=method)
            assert _mask_count_map(evidence) == reference
        with pytest.raises(ValueError):
            build_evidence_set(relation, space, method="nope")


class TestPackedWordsNative:
    def test_words_round_trip_masks(self):
        relation = make_random_relation(n_rows=7, seed=3)
        space = build_predicate_space(relation)
        evidence = build_evidence_set_tiled(relation, space)
        assert evidence.words.dtype == np.uint64
        assert evidence.words.shape == (len(evidence), evidence.n_words)
        assert [words_to_mask(row) for row in evidence.words] == evidence.masks

    def test_predicate_membership_matches_masks(self):
        relation = make_random_relation(n_rows=7, seed=6)
        space = build_predicate_space(relation)
        evidence = build_evidence_set_tiled(relation, space)
        contains = evidence.predicate_membership()
        assert contains.shape == (len(space), len(evidence))
        for e, mask in enumerate(evidence.masks):
            for p in range(len(space)):
                assert contains[p, e] == bool(mask & (1 << p))

    def test_vectorized_uncovered_queries_match_bitmask_semantics(self):
        relation = make_random_relation(n_rows=8, seed=7)
        space = build_predicate_space(relation)
        evidence = build_evidence_set_tiled(relation, space)
        for hitting in (0, 1, 0b1010, (1 << len(space)) - 1):
            expected = [i for i, m in enumerate(evidence.masks) if m & hitting == 0]
            assert evidence.uncovered_indices(hitting) == expected
            assert evidence.uncovered_pair_count(hitting) == sum(
                int(evidence.counts[i]) for i in expected
            )


class TestProjectionKeepsParticipation:
    def test_restrict_merges_participation(self):
        relation = make_random_relation(n_rows=8, seed=1)
        space = build_predicate_space(relation)
        evidence = build_evidence_set_tiled(relation, space, include_participation=True)
        predicate_mask = 0b111111
        projected = evidence.restrict_to_predicates(predicate_mask)
        assert projected.has_participation
        assert projected.recorded_pairs == evidence.recorded_pairs
        # Aggregate the expected merged participation by projected mask.
        expected: dict[int, dict[int, int]] = {}
        for i, mask in enumerate(evidence.masks):
            key = mask & predicate_mask
            bucket = expected.setdefault(key, {})
            part = evidence.participation(i)
            for tuple_id, count in zip(part.tuple_ids.tolist(), part.pair_counts.tolist()):
                bucket[tuple_id] = bucket.get(tuple_id, 0) + count
        assert _participation_map(projected) == expected

    def test_f2_f3_run_on_projected_evidence(self):
        from repro.core.approximation import F2, F3Greedy

        relation = make_random_relation(n_rows=8, seed=4)
        space = build_predicate_space(relation)
        evidence = build_evidence_set_tiled(relation, space, include_participation=True)
        projected = evidence.restrict_to_predicates(0b1111)
        all_indices = list(range(len(projected)))
        for function in (F2(), F3Greedy()):
            score = function.violation_score(projected, all_indices)
            assert 0.0 <= score <= 1.0

    def test_projection_without_participation_stays_without(self):
        relation = make_random_relation(n_rows=6, seed=8)
        space = build_predicate_space(relation)
        evidence = build_evidence_set_tiled(relation, space, include_participation=False)
        projected = evidence.restrict_to_predicates(0b11)
        assert not projected.has_participation


class TestRelationStringCodeCache:
    def test_codes_cached_per_column(self):
        relation = make_random_relation(n_rows=6, seed=0)
        first = relation.string_codes("S0", "S0")
        second = relation.string_codes("S0", "S0")
        assert first[0] is second[0]

    def test_cross_column_codes_comparable(self):
        relation = make_random_relation(n_rows=10, seed=2, domain_size=4)
        left, right = relation.string_codes("S0", "S1")
        left_values = [str(v) for v in relation.column("S0").values.tolist()]
        right_values = [str(v) for v in relation.column("S1").values.tolist()]
        for i in range(len(left_values)):
            for j in range(len(right_values)):
                assert (left[i] == right[j]) == (left_values[i] == right_values[j])
