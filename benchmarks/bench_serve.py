"""Serving layer — push-based counter reads vs finalize-on-read, plus QPS.

Not a paper figure: this benchmark tracks the network serving layer of
``repro.serve``.  It boots a real server subprocess (``python -m
repro.serve``), seeds a tax-data store over the wire, declares locally
mined DCs, and then measures the two things the layer exists for:

* **Read latency under writes.**  After every append the store's finalized
  evidence cache is invalid, so a finalize-on-read ``violations`` query
  pays a full partial finalize (lexsort of all distinct evidence words),
  while the push-based counter read answers from per-DC counts maintained
  at append time — O(#DCs) work regardless of how much arrived since the
  last finalize.  The benchmark interleaves appends with both read modes
  and expects the counter path to be at least ``EXPECTED_READ_SPEEDUP``
  times faster at the default 2000 rows (enforced with
  ``--require-speedup``; CI runs the smoke variant informationally).
* **Mixed-workload throughput.**  Several client threads drive an
  append/violations/report/check_batch mix; the benchmark reports QPS and
  per-op p50/p99 wire latencies.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--json BENCH_serve.json] [--rows 2000] [--require-speedup] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import signal
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.incremental import EvidenceStore
from repro.serve import ServeClient

#: Rows of the served base relation.
BENCH_ROWS = 2000

#: Append+read pairs per read mode in the latency comparison.
READ_REPS = 30

#: Requests issued by the mixed workload (across all client threads).
MIXED_OPS = 240

#: Client threads driving the mixed workload.
CLIENTS = 4

#: Minimum counter-read vs finalize-read speedup required at BENCH_ROWS.
EXPECTED_READ_SPEEDUP = 5.0

#: Rows mined locally to produce the declared DCs (mining cost is not what
#: this benchmark measures, so it runs on a prefix sample).
MINE_ROWS = 300


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) of ``values`` by nearest-rank."""
    ranked = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ranked)) - 1)
    return ranked[rank]


def boot_server() -> tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro.serve`` on an OS-assigned port."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", banner)
    if not match:
        proc.kill()
        raise RuntimeError(f"server did not announce its address: {banner!r}")
    return proc, match.group(1), int(match.group(2))


def mine_constraint_specs(base, space, max_dcs: int = 4) -> list[list[dict]]:
    """Mine DCs on a prefix sample and return their wire predicate specs.

    The sample store shares the *base* relation's predicate space, so every
    mined predicate is guaranteed to exist in the served store's space
    (``build_predicate_space`` is deterministic in the schema and data).
    """
    sample = base.take(range(min(MINE_ROWS, base.n_rows)))
    adcs = EvidenceStore(sample, space=space).remine(0.1)
    if not adcs:
        adcs = EvidenceStore(sample, space=space).remine(0.3)
    specs = []
    for adc in adcs[:max_dcs]:
        specs.append([
            {
                "left": p.left_column,
                "op": p.operator.value,
                "right": p.right_column,
                "form": p.form.value,
            }
            for p in adc.constraint.predicates
        ])
    if not specs:
        raise RuntimeError("no DCs mined on the sample; cannot benchmark")
    return specs


def measure_read_modes(
    client: ServeClient, pool, cursor: int, reps: int
) -> tuple[dict[str, object], int]:
    """Interleave appends with finalize-mode and counter-mode reads.

    Every read is preceded by a one-row append, so the finalize path pays
    a real re-finalize each time (exactly what a read-after-write hits in
    production) and the counter path demonstrates its independence from
    the append stream.
    """
    finalize_lat: list[float] = []
    counter_lat: list[float] = []
    for _ in range(reps):
        client.append("bench", [pool.row(cursor)])
        cursor += 1
        started = time.perf_counter()
        finalized = client.violations("bench", 0, mode="finalize")
        finalize_lat.append(time.perf_counter() - started)

        client.append("bench", [pool.row(cursor)])
        cursor += 1
        started = time.perf_counter()
        counted = client.violations("bench", 0, mode="counters")
        counter_lat.append(time.perf_counter() - started)

    # Bit-identity of the two read paths on the final state.
    finalized = client.violations("bench", 0, mode="finalize")
    counted = client.violations("bench", 0, mode="counters")
    if finalized["count"] != counted["count"]:
        raise AssertionError(
            f"read paths disagree: finalize={finalized['count']} "
            f"counters={counted['count']}"
        )
    result = {
        "reps": reps,
        "finalize_p50_ms": percentile(finalize_lat, 50) * 1e3,
        "finalize_p99_ms": percentile(finalize_lat, 99) * 1e3,
        "counters_p50_ms": percentile(counter_lat, 50) * 1e3,
        "counters_p99_ms": percentile(counter_lat, 99) * 1e3,
        "speedup_p50": percentile(finalize_lat, 50) / percentile(counter_lat, 50),
        "count": counted["count"],
    }
    return result, cursor


def measure_backlog_independence(
    client: ServeClient, pool, cursor: int, backlog: int, reps: int
) -> tuple[dict[str, object], int]:
    """Counter-read latency with zero vs many unfinalized appends pending."""

    def timed_reads() -> list[float]:
        latencies = []
        for _ in range(reps):
            started = time.perf_counter()
            client.violations("bench", 0, mode="counters")
            latencies.append(time.perf_counter() - started)
        return latencies

    client.violations("bench", 0, mode="finalize")  # snapshot fresh: backlog 0
    clean = timed_reads()
    for _ in range(backlog):
        client.append("bench", [pool.row(cursor)])
        cursor += 1
    backlogged = timed_reads()
    return {
        "backlog_rows": backlog,
        "clean_p50_ms": percentile(clean, 50) * 1e3,
        "backlogged_p50_ms": percentile(backlogged, 50) * 1e3,
        "ratio": percentile(backlogged, 50) / percentile(clean, 50),
    }, cursor


def run_mixed_workload(
    host: str, port: int, pool, cursor: int, total_ops: int, clients: int
) -> dict[str, object]:
    """Concurrent append/read mix; returns QPS and per-op percentiles."""
    per_client = total_ops // clients
    latencies: dict[str, list[float]] = {
        "append": [], "violations": [], "report": [], "check_batch": [],
    }
    lock = threading.Lock()
    probe = pool.row(0)

    def drive(worker: int) -> None:
        own: dict[str, list[float]] = {key: [] for key in latencies}
        with ServeClient(host, port, timeout=120.0) as client:
            for i in range(per_client):
                row = pool.row(cursor + worker * per_client + i)
                for op, call in (
                    ("append", lambda: client.append("bench", [row])),
                    ("violations", lambda: client.violations("bench", 0)),
                    ("report", lambda: client.report("bench")),
                    ("check_batch", lambda: client.check_batch("bench", [probe])),
                ):
                    started = time.perf_counter()
                    call()
                    own[op].append(time.perf_counter() - started)
        with lock:
            for op, values in own.items():
                latencies[op].extend(values)

    threads = [
        threading.Thread(target=drive, args=(worker,)) for worker in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    requests = sum(len(values) for values in latencies.values())
    return {
        "clients": clients,
        "requests": requests,
        "elapsed_seconds": elapsed,
        "qps": requests / elapsed,
        "ops": {
            op: {
                "n": len(values),
                "p50_ms": percentile(values, 50) * 1e3,
                "p99_ms": percentile(values, 99) * 1e3,
                "mean_ms": statistics.fmean(values) * 1e3,
            }
            for op, values in latencies.items()
        },
    }


def run_serve_benchmark(
    n_rows: int, read_reps: int, mixed_ops: int, clients: int
) -> dict[str, object]:
    """Boot, seed, declare, measure, drain; returns the JSON payload."""
    extra = 2 * read_reps + mixed_ops + 128
    pool = generate_dataset("tax", n_rows=n_rows + extra, seed=7).relation
    base = pool.take(range(n_rows))
    space = build_predicate_space(base)
    specs = mine_constraint_specs(base, space)

    proc, host, port = boot_server()
    try:
        with ServeClient(host, port, timeout=300.0) as client:
            started = time.perf_counter()
            client.create_store("bench", [base.row(i) for i in range(base.n_rows)])
            seed_seconds = time.perf_counter() - started
            client.declare("bench", specs, epsilon=0.1)

            cursor = n_rows
            read_modes, cursor = measure_read_modes(client, pool, cursor, read_reps)
            backlog, cursor = measure_backlog_independence(
                client, pool, cursor, backlog=64, reps=read_reps
            )
            mixed = run_mixed_workload(host, port, pool, cursor, mixed_ops, clients)
            stats = client.stats()
        proc.send_signal(signal.SIGTERM)
        drained = proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    return {
        "benchmark": "serve",
        "n_rows": n_rows,
        "n_constraints": len(specs),
        "seed_seconds": seed_seconds,
        "expected_read_speedup": EXPECTED_READ_SPEEDUP,
        "read_modes": read_modes,
        "backlog_independence": backlog,
        "mixed_workload": mixed,
        "server_store_stats": stats["stores"]["bench"],
        "graceful_drain_exit_zero": drained,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--read-reps", type=int, default=READ_REPS)
    parser.add_argument("--mixed-ops", type=int, default=MIXED_OPS)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (300 rows, few reps)")
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-speedup", action="store_true",
                        help=f"fail unless counter reads beat finalize reads "
                             f"by >= {EXPECTED_READ_SPEEDUP}x")
    args = parser.parse_args()
    if args.smoke:
        args.rows = min(args.rows, 300)
        args.read_reps = min(args.read_reps, 8)
        args.mixed_ops = min(args.mixed_ops, 80)

    payload = run_serve_benchmark(
        args.rows, args.read_reps, args.mixed_ops, args.clients
    )

    modes = payload["read_modes"]
    mixed = payload["mixed_workload"]
    print(f"Serving {payload['n_constraints']} DCs over {args.rows} rows "
          f"(seeded in {payload['seed_seconds']:.2f}s):")
    print(f"  read after append   p50 {modes['finalize_p50_ms']:8.3f} ms finalize-on-read")
    print(f"                      p50 {modes['counters_p50_ms']:8.3f} ms push counters "
          f"({modes['speedup_p50']:.1f}x)")
    print(f"  counter reads with {payload['backlog_independence']['backlog_rows']} "
          f"unfinalized appends pending: "
          f"{payload['backlog_independence']['ratio']:.2f}x the clean latency")
    print(f"  mixed workload: {mixed['requests']} requests, "
          f"{mixed['clients']} clients, {mixed['qps']:.0f} QPS")
    for op, entry in mixed["ops"].items():
        print(f"    {op:>12}: p50 {entry['p50_ms']:7.3f} ms   "
              f"p99 {entry['p99_ms']:7.3f} ms")
    print(f"  graceful drain exit 0: {payload['graceful_drain_exit_zero']}")

    speedup = float(modes["speedup_p50"])
    if speedup < EXPECTED_READ_SPEEDUP:
        message = (
            f"push-based counter reads reached only {speedup:.1f}x over "
            f"finalize-on-read (expected >= {EXPECTED_READ_SPEEDUP}x)"
        )
        if args.require_speedup:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
