"""Tile scheduling: work units for evidence construction.

The ordered-pair matrix of an ``n``-row relation is cut into
``tile_rows x tile_rows`` blocks.  Every block is an independent work unit
(a :class:`Tile`), and contiguous runs of tiles are grouped into
:class:`Shard` ranges balanced by pair count — the unit a process pool (or,
later, a remote machine) receives.  :func:`choose_tile_rows` picks the tile
edge adaptively from a memory budget and the evidence word width, replacing
the fixed 256-row default of the original tiled builder.

A scheduler is not restricted to the full ``n x n`` matrix: the ``rows`` /
``cols`` ranges restrict it to any rectangular ``row-range x row-range``
block, which is what the incremental delta builder
(:mod:`repro.incremental.delta`) uses to enumerate only the new-vs-old
rectangles and the new-vs-new square of an appended batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

#: Default transient-memory budget of one evidence kernel (bytes).
DEFAULT_MEMORY_BUDGET_BYTES = 64 * 2**20

#: Smallest tile edge the adaptive selection will pick.  Below this the
#: per-tile Python overhead (dedup dict, chunk bookkeeping) dominates.
MIN_TILE_ROWS = 16

#: Largest tile edge the adaptive selection will pick.  Beyond this the
#: per-tile word planes fall out of CPU cache and throughput drops, even
#: when the memory budget would allow a bigger tile.
MAX_TILE_ROWS = 256

#: Transient bytes per ordered pair inside the kernel: the uint64 word
#: plane, its flattened dedup copy, and the sort scratch of the row-dedup
#: are each ``8 * n_words`` bytes per pair.
_KERNEL_PLANES = 3


def choose_tile_rows(
    n_rows: int,
    n_words: int,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> int:
    """Pick a tile edge so one kernel invocation fits the memory budget.

    A tile of edge ``t`` makes the kernel allocate about
    ``3 * 8 * n_words * t^2`` transient bytes (word plane, dedup copy, sort
    scratch), so the budgeted edge is ``sqrt(budget / (24 * n_words))``,
    clamped to ``[MIN_TILE_ROWS, MAX_TILE_ROWS]`` and to the relation size
    (a tile larger than the relation degenerates to the dense builder).
    """
    if n_rows < 1:
        raise ValueError("n_rows must be positive")
    if n_words < 1:
        raise ValueError("n_words must be positive")
    if memory_budget_bytes < 1:
        raise ValueError("memory_budget_bytes must be positive")
    bytes_per_pair = _KERNEL_PLANES * 8 * n_words
    budgeted = math.isqrt(max(1, memory_budget_bytes // bytes_per_pair))
    clamped = max(MIN_TILE_ROWS, min(budgeted, MAX_TILE_ROWS))
    return max(1, min(clamped, n_rows))


@dataclass(frozen=True)
class Tile:
    """One ``[i0, i1) x [j0, j1)`` block of the ordered-pair matrix."""

    i0: int
    i1: int
    j0: int
    j1: int

    @property
    def n_pairs(self) -> int:
        """Ordered distinct pairs in the block (diagonal cells excluded)."""
        diagonal = max(0, min(self.i1, self.j1) - max(self.i0, self.j0))
        return (self.i1 - self.i0) * (self.j1 - self.j0) - diagonal

    @property
    def shape(self) -> tuple[int, int]:
        """Block shape ``(rows, columns)``."""
        return (self.i1 - self.i0, self.j1 - self.j0)


@dataclass(frozen=True)
class Shard:
    """A contiguous range ``tiles[start:stop]`` of a scheduler's tile list.

    Shards are the distribution unit: ``(start, stop)`` alone identifies
    the work against a scheduler with the same ``(n_rows, tile_rows)``, so
    a remote worker only needs those two integers plus the kernel.
    """

    start: int
    stop: int
    tiles: tuple[Tile, ...]

    @property
    def n_pairs(self) -> int:
        """Ordered pairs covered by the shard."""
        return sum(tile.n_pairs for tile in self.tiles)

    def __len__(self) -> int:
        return len(self.tiles)


def _validated_range(bounds: tuple[int, int] | None, n_rows: int, axis: str) -> tuple[int, int]:
    """Clamp-check one ``[lo, hi)`` row range of a scheduler block."""
    if bounds is None:
        return (0, n_rows)
    lo, hi = int(bounds[0]), int(bounds[1])
    if not 0 <= lo <= hi <= n_rows:
        raise ValueError(
            f"{axis} range ({lo}, {hi}) outside the relation's [0, {n_rows})"
        )
    return (lo, hi)


class TileScheduler:
    """Partition a block of the ordered-pair matrix of ``n_rows`` tuples.

    By default the block is the full ``n x n`` matrix; ``rows`` / ``cols``
    restrict it to any rectangular ``[lo, hi) x [lo, hi)`` sub-block, the
    unit the incremental delta builder schedules (new-vs-old rectangles,
    new-vs-new square).

    Parameters
    ----------
    n_rows:
        Number of tuples of the relation.
    tile_rows:
        Tile edge length; ``None`` selects it adaptively with
        :func:`choose_tile_rows` from ``n_words`` and the memory budget.
    n_words:
        Evidence word width (used only by the adaptive selection).
    memory_budget_bytes:
        Kernel memory budget (used only by the adaptive selection).
    rows:
        Optional ``[lo, hi)`` range of left-tuple ids; default ``(0, n_rows)``.
    cols:
        Optional ``[lo, hi)`` range of right-tuple ids; default ``(0, n_rows)``.
    """

    def __init__(
        self,
        n_rows: int,
        tile_rows: int | None = None,
        n_words: int = 1,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
        rows: tuple[int, int] | None = None,
        cols: tuple[int, int] | None = None,
    ) -> None:
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        if tile_rows is None:
            tile_rows = choose_tile_rows(max(n_rows, 1), n_words, memory_budget_bytes)
        if tile_rows < 1:
            raise ValueError("tile_rows must be positive")
        self.n_rows = int(n_rows)
        self.tile_rows = int(tile_rows)
        self.rows = _validated_range(rows, self.n_rows, "rows")
        self.cols = _validated_range(cols, self.n_rows, "cols")
        self._tiles: tuple[Tile, ...] | None = None

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Tiles along the (row, column) axes of the scheduled block."""
        t = self.tile_rows
        return (
            -(-(self.rows[1] - self.rows[0]) // t),
            -(-(self.cols[1] - self.cols[0]) // t),
        )

    @property
    def grid(self) -> int:
        """Tiles per side of a square grid (row axis for rectangles)."""
        return self.grid_shape[0]

    def tiles(self) -> tuple[Tile, ...]:
        """All tiles in row-major order (cached)."""
        if self._tiles is None:
            t = self.tile_rows
            (r0, r1), (c0, c1) = self.rows, self.cols
            self._tiles = tuple(
                Tile(i0, min(i0 + t, r1), j0, min(j0 + t, c1))
                for i0 in range(r0, r1, t)
                for j0 in range(c0, c1, t)
            )
        return self._tiles

    def __len__(self) -> int:
        return len(self.tiles())

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles())

    @property
    def total_pairs(self) -> int:
        """Ordered distinct pairs in the block (diagonal cells excluded)."""
        (r0, r1), (c0, c1) = self.rows, self.cols
        diagonal = max(0, min(r1, c1) - max(r0, c0))
        return (r1 - r0) * (c1 - c0) - diagonal

    def shards(self, k: int) -> list[Shard]:
        """Split the tile list into at most ``k`` contiguous balanced shards.

        See :func:`shard_tiles` — returns ``min(k, len(self))`` shards that
        exactly partition :meth:`tiles`.
        """
        return shard_tiles(self.tiles(), k)


def shard_tiles(tiles: tuple[Tile, ...], k: int) -> list[Shard]:
    """Split a tile sequence into at most ``k`` contiguous balanced shards.

    Balancing is by pair count with a greedy fair-share cut: each shard
    closes once it reaches its share of the remaining pairs, subject to
    every remaining shard still receiving at least one tile.  Returns
    ``min(k, len(tiles))`` shards that exactly partition ``tiles``.  Works
    over any tile list — a scheduler's full grid or the concatenated block
    grids of the incremental delta builder.
    """
    if k < 1:
        raise ValueError("shard count must be positive")
    tiles = tuple(tiles)
    if not tiles:
        return []
    k = min(k, len(tiles))
    remaining = sum(tile.n_pairs for tile in tiles)
    shards: list[Shard] = []
    start = 0
    accumulated = 0
    for index, tile in enumerate(tiles):
        accumulated += tile.n_pairs
        shards_left = k - len(shards)
        tiles_after = len(tiles) - index - 1
        # Close the shard at its fair share of the remaining pairs, or
        # when every remaining shard needs one of the remaining tiles.
        reached_share = accumulated * shards_left >= remaining
        must_close = tiles_after == shards_left - 1
        if shards_left > 1 and (reached_share or must_close):
            shards.append(Shard(start, index + 1, tiles[start : index + 1]))
            remaining -= accumulated
            accumulated = 0
            start = index + 1
    shards.append(Shard(start, len(tiles), tiles[start:]))
    return shards
