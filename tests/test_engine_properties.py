"""Property tests of the partial-evidence merge algebra.

The engine's correctness rests on one algebraic fact: folding tile results
into :class:`PartialEvidenceSet`s and merging the partials finalizes to the
same :class:`EvidenceSet` no matter how the tiles are grouped or in what
order the partials are merged (associativity + commutativity up to the
id relabeling that finalization erases).  Hypothesis drives randomized
relations, tile groupings and merge orders through that claim, and
cross-checks the full parallel builder against the tiled builder and the
dense oracle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_relation
from tests.test_engine import assert_evidence_identical
from repro.core.evidence_builder import (
    build_evidence_set_dense,
    build_evidence_set_tiled,
)
from repro.core.predicate_space import build_predicate_space
from repro.engine import (
    PartialEvidenceSet,
    TileKernel,
    TileScheduler,
    build_evidence_set_parallel,
)


def _tile_partials(relation, space, tile_rows):
    """Kernel results of every non-empty tile of the schedule."""
    kernel = TileKernel.from_relation(relation, space, include_participation=True)
    partials = []
    for tile in TileScheduler(relation.n_rows, tile_rows=tile_rows):
        tile_partial = kernel.run(tile)
        if tile_partial is not None:
            partials.append(tile_partial)
    return kernel, partials


def _fold(kernel, tile_partials) -> PartialEvidenceSet:
    partial = PartialEvidenceSet(kernel.n_rows, kernel.n_words, kernel.include_participation)
    for tile_partial in tile_partials:
        partial.add_tile(tile_partial)
    return partial


relation_strategy = st.builds(
    make_random_relation,
    n_rows=st.integers(min_value=2, max_value=12),
    n_string_columns=st.integers(min_value=0, max_value=2),
    n_numeric_columns=st.integers(min_value=1, max_value=2),
    domain_size=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10**6),
)


class TestMergeAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(
        relation=relation_strategy,
        tile_rows=st.integers(min_value=1, max_value=6),
        order_seed=st.randoms(use_true_random=False),
    )
    def test_merge_is_order_independent(self, relation, tile_rows, order_seed):
        space = build_predicate_space(relation)
        kernel, tiles = _tile_partials(relation, space, tile_rows)
        reference = _fold(kernel, tiles).finalize(space)

        shuffled = list(tiles)
        order_seed.shuffle(shuffled)
        # Random grouping of tiles into partials, merged in shuffled order.
        n_groups = order_seed.randint(1, max(1, len(shuffled)))
        groups = [shuffled[i::n_groups] for i in range(n_groups)]
        partials = [_fold(kernel, group) for group in groups if group]
        order_seed.shuffle(partials)
        merged = partials[0]
        for partial in partials[1:]:
            merged = merged.merge(partial)
        assert_evidence_identical(merged.finalize(space), reference)

    @settings(max_examples=25, deadline=None)
    @given(
        relation=relation_strategy,
        tile_rows=st.integers(min_value=1, max_value=5),
    )
    def test_merge_is_associative_and_commutative(self, relation, tile_rows):
        space = build_predicate_space(relation)
        kernel, tiles = _tile_partials(relation, space, tile_rows)
        thirds = [tiles[0::3], tiles[1::3], tiles[2::3]]
        a, b, c = (_fold(kernel, group) for group in thirds)

        left = a.copy().merge(b.copy()).merge(c.copy()).finalize(space)
        right = a.copy().merge(b.copy().merge(c.copy())).finalize(space)
        swapped = c.copy().merge(a.copy()).merge(b.copy()).finalize(space)
        assert_evidence_identical(left, right)
        assert_evidence_identical(left, swapped)

    @settings(max_examples=30, deadline=None)
    @given(
        relation=relation_strategy,
        tile_rows=st.integers(min_value=1, max_value=6),
        tree_seed=st.randoms(use_true_random=False),
    )
    def test_arbitrary_merge_trees_match_serial_fold(self, relation, tile_rows, tree_seed):
        """Any merge *tree* — not just left folds — finalizes identically.

        Random binary reduction trees are built by repeatedly merging two
        random intermediate partials (with random receiver order, so inner
        nodes combine results of very different sizes), which covers the
        cluster coordinator's balanced reduction and every skewed shape a
        failure-rescheduled run could produce.
        """
        space = build_predicate_space(relation)
        kernel, tiles = _tile_partials(relation, space, tile_rows)
        reference = _fold(kernel, tiles).finalize(space)

        # Leaves: a random grouping of tiles into partials.
        shuffled = list(tiles)
        tree_seed.shuffle(shuffled)
        n_leaves = tree_seed.randint(1, max(1, len(shuffled)))
        forest = [
            _fold(kernel, group)
            for group in (shuffled[i::n_leaves] for i in range(n_leaves))
            if group
        ]
        # Inner nodes: merge two random trees until one remains.
        while len(forest) > 1:
            left = forest.pop(tree_seed.randrange(len(forest)))
            right = forest.pop(tree_seed.randrange(len(forest)))
            if tree_seed.random() < 0.5:
                left, right = right, left
            forest.append(left.merge(right))
        assert_evidence_identical(forest[0].finalize(space), reference)

        # The cluster coordinator's balanced binary reduction is one such
        # tree; check it against the same reference explicitly.
        from repro.cluster.build import merge_partials_tree

        balanced = [
            _fold(kernel, group)
            for group in (list(tiles)[i::3] for i in range(3))
            if group
        ]
        assert_evidence_identical(
            merge_partials_tree(balanced).finalize(space), reference
        )

    @settings(max_examples=25, deadline=None)
    @given(relation=relation_strategy, tile_rows=st.integers(min_value=1, max_value=5))
    def test_merge_preserves_pair_mass(self, relation, tile_rows):
        space = build_predicate_space(relation)
        kernel, tiles = _tile_partials(relation, space, tile_rows)
        halves = [_fold(kernel, tiles[0::2]), _fold(kernel, tiles[1::2])]
        merged = halves[0].copy().merge(halves[1])
        n = relation.n_rows
        assert merged.recorded_pairs == n * (n - 1)
        evidence = merged.finalize(space)
        assert evidence.recorded_pairs == n * (n - 1)
        # Participation mass: every ordered pair contributes two tuple slots.
        total = sum(
            int(evidence.participation(i).pair_counts.sum()) for i in range(len(evidence))
        )
        assert total == 2 * n * (n - 1)


class TestParallelEqualsOracles:
    @settings(max_examples=20, deadline=None)
    @given(
        relation=relation_strategy,
        tile_rows=st.integers(min_value=1, max_value=6),
    )
    def test_serial_engine_path_matches_oracles(self, relation, tile_rows):
        space = build_predicate_space(relation)
        engine = build_evidence_set_parallel(
            relation, space, tile_rows=tile_rows, n_workers=1
        )
        assert_evidence_identical(
            engine, build_evidence_set_tiled(relation, space, tile_rows=tile_rows)
        )
        assert_evidence_identical(engine, build_evidence_set_dense(relation, space))

    @settings(max_examples=5, deadline=None)
    @given(relation=relation_strategy)
    def test_process_pool_matches_oracles(self, relation):
        space = build_predicate_space(relation)
        pooled = build_evidence_set_parallel(relation, space, tile_rows=3, n_workers=2)
        assert_evidence_identical(
            pooled, build_evidence_set_tiled(relation, space, tile_rows=3)
        )
        assert_evidence_identical(pooled, build_evidence_set_dense(relation, space))

    @settings(max_examples=15, deadline=None)
    @given(relation=relation_strategy, mask_bits=st.integers(min_value=0, max_value=2**16))
    def test_f2_f3_scores_agree_after_parallel_build(self, relation, mask_bits):
        from repro.core.approximation import F2, F3Greedy

        space = build_predicate_space(relation)
        engine = build_evidence_set_parallel(relation, space, tile_rows=4, n_workers=1)
        oracle = build_evidence_set_dense(relation, space)
        indices = list(range(len(engine)))
        for function in (F2(), F3Greedy()):
            assert function.violation_score(engine, indices) == \
                function.violation_score(oracle, indices)
        projected_engine = engine.restrict_to_predicates(mask_bits)
        projected_oracle = oracle.restrict_to_predicates(mask_bits)
        assert_evidence_identical(projected_engine, projected_oracle)
