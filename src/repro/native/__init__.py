"""Native-speed kernel layer.

Compiled implementations of the enumeration and evidence-build hot paths —
popcount/intersection kernels, the criticality planes, the per-tile
predicate pass, and the explicit-stack search arena — behind a
feature-detected dispatch (:mod:`repro.native.dispatch`).  The pure-numpy
reference (:mod:`repro.native.numpy_backend`) defines the semantics; a
compiled backend is only used after reproducing it bit for bit on a probe.

Backend selection is controlled by ``REPRO_NATIVE``: ``0`` forces numpy,
``1`` requires a compiled backend, ``cext``/``numba`` pick one explicitly,
unset auto-detects (C extension, then numba, then numpy).
"""

from repro.native.dispatch import (
    Backend,
    NUMPY_BACKEND,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.native.numpy_backend import (
    DESCENDED,
    PRUNED,
    REPLAYED,
    SELECT_MAX,
    SELECT_MIN,
    SELECT_RANDOM,
    NumpyKernels,
    NumpySearchWorkspace,
    selection_code,
)

__all__ = [
    "Backend",
    "NUMPY_BACKEND",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "DESCENDED",
    "PRUNED",
    "REPLAYED",
    "SELECT_MAX",
    "SELECT_MIN",
    "SELECT_RANDOM",
    "NumpyKernels",
    "NumpySearchWorkspace",
    "selection_code",
]
