"""Observability overhead — instrumented vs disabled serving hot paths.

Not a paper figure: this benchmark enforces the obs layer's overhead
budget.  It boots two server subprocesses side by side — one with
``REPRO_OBS=1`` and traced appends (metrics registry live, every request
carrying a ``trace`` field), one with ``REPRO_OBS=0`` and no tracing
(every mutator early-returns) — and drives identical single-row append
and push-counter read workloads against both, *interleaved* request by
request so background load and clock drift hit both configurations
equally, after untimed warm-up reps.  The compared statistic is p50
latency.  The budget, enforced with ``--require-overhead``:

* append p50 (enabled, traced) <= ``MAX_APPEND_OVERHEAD`` x disabled
* counter-read p50 (enabled)   <= ``MAX_READ_OVERHEAD`` x disabled

The enabled run also scrapes the ``--metrics-port`` Prometheus endpoint
once and records the exposition size, so the report shows what a scrape
actually returns under load.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        [--json BENCH_obs.json] [--rows 2000] [--require-overhead] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.incremental import EvidenceStore
from repro.serve import ServeClient

#: Rows of the served base relation (the n=2000 point the gate is set at).
BENCH_ROWS = 2000

#: Single-row appends measured per configuration.
APPEND_REPS = 200

#: Push-counter reads measured per configuration.
READ_REPS = 300

#: Enabled/disabled p50 ratio bounds enforced by ``--require-overhead``.
MAX_APPEND_OVERHEAD = 1.10
MAX_READ_OVERHEAD = 1.05

#: Untimed requests per configuration before the measured loops.
WARMUP_REPS = 15

#: Rows mined locally to produce the declared DCs.
MINE_ROWS = 300


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) of ``values`` by nearest-rank."""
    ranked = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ranked)) - 1)
    return ranked[rank]


def boot_server(
    obs_enabled: bool, metrics_port: int | None = None
) -> tuple[subprocess.Popen, str, int, tuple[str, int] | None]:
    """Start ``python -m repro.serve`` with REPRO_OBS set accordingly."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_OBS"] = "1" if obs_enabled else "0"
    command = [sys.executable, "-m", "repro.serve", "--listen", "127.0.0.1:0"]
    if metrics_port is not None:
        command += ["--metrics-port", str(metrics_port)]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, env=env, text=True
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", banner)
    if not match:
        proc.kill()
        raise RuntimeError(f"server did not announce its address: {banner!r}")
    metrics_address = None
    if metrics_port is not None:
        metrics_banner = proc.stdout.readline()
        metrics_match = re.search(r"metrics on ([\d.]+):(\d+)", metrics_banner)
        if metrics_match:
            metrics_address = (
                metrics_match.group(1), int(metrics_match.group(2))
            )
    return proc, match.group(1), int(match.group(2)), metrics_address


def mine_constraint_specs(base, space, max_dcs: int = 4) -> list[list[dict]]:
    """Mine DCs on a prefix sample and return their wire predicate specs."""
    sample = base.take(range(min(MINE_ROWS, base.n_rows)))
    # Size cap keeps the setup phase to seconds; the served workload only
    # needs a handful of valid DCs, not the full frontier.
    adcs = EvidenceStore(sample, space=space).remine(0.1, max_dc_size=3)
    if not adcs:
        adcs = EvidenceStore(sample, space=space).remine(0.3, max_dc_size=3)
    specs = []
    for adc in adcs[:max_dcs]:
        specs.append([
            {
                "left": p.left_column,
                "op": p.operator.value,
                "right": p.right_column,
                "form": p.form.value,
            }
            for p in adc.constraint.predicates
        ])
    if not specs:
        raise RuntimeError("no DCs mined on the sample; cannot benchmark")
    return specs


def run_obs_benchmark(
    n_rows: int, append_reps: int, read_reps: int
) -> dict[str, object]:
    """Both configurations over interleaved workloads; returns the payload.

    Both servers are alive for the whole measurement and each timed loop
    alternates which configuration goes first, so any transient system
    load lands on both sides of the ratio.
    """
    extra = WARMUP_REPS + append_reps + 128
    pool = generate_dataset("tax", n_rows=n_rows + extra, seed=7).relation
    base = pool.take(range(n_rows))
    space = build_predicate_space(base)
    specs = mine_constraint_specs(base, space)
    seed_rows = [base.row(i) for i in range(base.n_rows)]

    configs = [
        {"obs_enabled": False, "append_lat": [], "read_lat": []},
        {"obs_enabled": True, "append_lat": [], "read_lat": []},
    ]
    procs = []
    try:
        for config in configs:
            obs_enabled = config["obs_enabled"]
            proc, host, port, metrics_address = boot_server(
                obs_enabled, metrics_port=0 if obs_enabled else None
            )
            procs.append(proc)
            client = ServeClient(host, port, timeout=300.0)
            client.create_store("bench", seed_rows)
            client.declare("bench", specs, epsilon=0.1)
            config["client"] = client
            config["metrics_address"] = metrics_address

        cursor = base.n_rows
        for rep in range(-WARMUP_REPS, append_reps):
            row = pool.row(cursor)
            cursor += 1
            # Alternate which configuration goes first within the pair.
            ordered = configs if rep % 2 == 0 else configs[::-1]
            for config in ordered:
                started = time.perf_counter()
                config["client"].append(
                    "bench", [row], trace=config["obs_enabled"]
                )
                if rep >= 0:
                    config["append_lat"].append(
                        time.perf_counter() - started
                    )

        for rep in range(-WARMUP_REPS, read_reps):
            ordered = configs if rep % 2 == 0 else configs[::-1]
            for config in ordered:
                started = time.perf_counter()
                config["client"].violations("bench", 0, mode="counters")
                if rep >= 0:
                    config["read_lat"].append(time.perf_counter() - started)

        exposition_bytes = None
        for config in configs:
            if config["metrics_address"] is not None:
                address = config["metrics_address"]
                url = f"http://{address[0]}:{address[1]}/metrics"
                with urllib.request.urlopen(url, timeout=30.0) as response:
                    exposition_bytes = len(response.read())

        for config in configs:
            config["client"].close()
        for proc in procs:
            proc.send_signal(signal.SIGTERM)
        for proc in procs:
            proc.wait(timeout=60)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    results = {}
    for config in configs:
        key = "enabled" if config["obs_enabled"] else "disabled"
        results[key] = {
            "obs_enabled": config["obs_enabled"],
            "traced_appends": config["obs_enabled"],
            "append_p50_ms": percentile(config["append_lat"], 50) * 1e3,
            "append_p99_ms": percentile(config["append_lat"], 99) * 1e3,
            "counter_read_p50_ms": percentile(config["read_lat"], 50) * 1e3,
            "counter_read_p99_ms": percentile(config["read_lat"], 99) * 1e3,
        }
    if exposition_bytes is not None:
        results["enabled"]["prometheus_exposition_bytes"] = exposition_bytes
    disabled, enabled = results["disabled"], results["enabled"]
    return {
        "benchmark": "obs",
        "n_rows": n_rows,
        "append_reps": append_reps,
        "read_reps": read_reps,
        "n_constraints": len(specs),
        "warmup_reps": WARMUP_REPS,
        "max_append_overhead": MAX_APPEND_OVERHEAD,
        "max_read_overhead": MAX_READ_OVERHEAD,
        "disabled": disabled,
        "enabled": enabled,
        "append_overhead": (
            enabled["append_p50_ms"] / disabled["append_p50_ms"]
        ),
        "counter_read_overhead": (
            enabled["counter_read_p50_ms"] / disabled["counter_read_p50_ms"]
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--append-reps", type=int, default=APPEND_REPS)
    parser.add_argument("--read-reps", type=int, default=READ_REPS)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (300 rows, few reps)")
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-overhead", action="store_true",
                        help=f"fail unless enabled/disabled p50 ratios stay "
                             f"under {MAX_APPEND_OVERHEAD}x (append) and "
                             f"{MAX_READ_OVERHEAD}x (counter read)")
    args = parser.parse_args()
    if args.smoke:
        args.rows = min(args.rows, 300)
        args.append_reps = min(args.append_reps, 40)
        args.read_reps = min(args.read_reps, 60)

    payload = run_obs_benchmark(args.rows, args.append_reps, args.read_reps)

    enabled, disabled = payload["enabled"], payload["disabled"]
    print(f"Observability overhead at {payload['n_rows']} rows "
          f"({payload['append_reps']} appends, {payload['read_reps']} reads):")
    print(f"  append        p50 {disabled['append_p50_ms']:8.3f} ms REPRO_OBS=0")
    print(f"                p50 {enabled['append_p50_ms']:8.3f} ms REPRO_OBS=1 "
          f"+ trace ({payload['append_overhead']:.3f}x)")
    print(f"  counter read  p50 {disabled['counter_read_p50_ms']:8.3f} ms REPRO_OBS=0")
    print(f"                p50 {enabled['counter_read_p50_ms']:8.3f} ms REPRO_OBS=1 "
          f"({payload['counter_read_overhead']:.3f}x)")
    if "prometheus_exposition_bytes" in enabled:
        print(f"  prometheus exposition under load: "
              f"{enabled['prometheus_exposition_bytes']} bytes")

    failures = []
    if payload["append_overhead"] > MAX_APPEND_OVERHEAD:
        failures.append(
            f"append overhead {payload['append_overhead']:.3f}x exceeds "
            f"{MAX_APPEND_OVERHEAD}x"
        )
    if payload["counter_read_overhead"] > MAX_READ_OVERHEAD:
        failures.append(
            f"counter-read overhead {payload['counter_read_overhead']:.3f}x "
            f"exceeds {MAX_READ_OVERHEAD}x"
        )
    for message in failures:
        stream = sys.stderr if args.require_overhead else sys.stdout
        prefix = "ERROR" if args.require_overhead else "WARNING"
        print(f"{prefix}: {message}", file=stream)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 1 if (failures and args.require_overhead) else 0


if __name__ == "__main__":
    sys.exit(main())
