"""Correctness tests for ADCEnum (Theorem 6.1) and its search options."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_relation
from tests.reference import brute_force_adcs
from repro.core.adc_enum import ADCEnum, enumerate_adcs
from repro.core.approximation import F1, F2, F3Greedy
from repro.core.evidence_builder import build_evidence_set
from repro.core.predicate_space import build_predicate_space


def _evidence_for(seed: int, n_rows: int = 7, domain: int = 3):
    relation = make_random_relation(n_rows=n_rows, seed=seed, domain_size=domain)
    space = build_predicate_space(relation)
    return build_evidence_set(relation, space, include_participation=True)


def _normalised(adcs):
    return {adc.constraint.predicates for adc in adcs}


class TestAgainstBruteForce:
    """ADCEnum returns exactly the minimal nontrivial ADCs (Theorem 6.1)."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.2])
    def test_f1_matches_brute_force(self, seed, epsilon):
        evidence = _evidence_for(seed)
        function = F1()
        discovered = enumerate_adcs(evidence, function, epsilon, max_dc_size=3)
        expected = brute_force_adcs(evidence, function, epsilon, max_size=3)
        assert _normalised(discovered) == expected

    @pytest.mark.parametrize("seed", [0, 1])
    def test_f2_matches_brute_force(self, seed):
        evidence = _evidence_for(seed)
        function = F2()
        discovered = enumerate_adcs(evidence, function, epsilon=0.3, max_dc_size=2)
        expected = brute_force_adcs(evidence, function, epsilon=0.3, max_size=2)
        assert _normalised(discovered) == expected

    @pytest.mark.parametrize("seed", [0, 1])
    def test_f3_greedy_outputs_are_sound(self, seed):
        """The greedy f3 carries no completeness guarantee (Section 5), so
        only soundness is asserted: every output passes the threshold and no
        single-predicate removal does."""
        evidence = _evidence_for(seed)
        function = F3Greedy()
        epsilon = 0.3
        for adc in enumerate_adcs(evidence, function, epsilon, max_dc_size=2):
            assert adc.violation_score <= epsilon
            hitting = adc.hitting_set_mask
            for bit in range(len(evidence.space)):
                if hitting & (1 << bit) and hitting & ~(1 << bit):
                    score = function.violation_score(
                        evidence, evidence.uncovered_indices(hitting & ~(1 << bit))
                    )
                    assert score > epsilon

    @pytest.mark.parametrize("seed", [0, 3])
    def test_no_duplicates(self, seed):
        evidence = _evidence_for(seed)
        discovered = enumerate_adcs(evidence, F1(), 0.1, max_dc_size=3)
        predicate_sets = [adc.constraint.predicates for adc in discovered]
        assert len(predicate_sets) == len(set(predicate_sets))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_outputs_pass_threshold_and_are_minimal(self, seed):
        evidence = _evidence_for(seed, n_rows=6)
        epsilon = 0.15
        function = F1()
        for adc in enumerate_adcs(evidence, function, epsilon, max_dc_size=3):
            assert adc.violation_score <= epsilon
            assert not adc.constraint.is_trivial()
            hitting = adc.hitting_set_mask
            for bit in range(len(evidence.space)):
                if hitting & (1 << bit):
                    reduced = hitting & ~(1 << bit)
                    if reduced:
                        score = function.violation_score(
                            evidence, evidence.uncovered_indices(reduced)
                        )
                        assert score > epsilon


class TestSearchOptions:
    def test_selection_strategies_agree_on_output(self, example_evidence):
        reference = _normalised(enumerate_adcs(example_evidence, F1(), 0.05, selection="max"))
        for strategy in ("min", "random"):
            assert _normalised(
                enumerate_adcs(example_evidence, F1(), 0.05, selection=strategy)
            ) == reference

    def test_max_dc_size_caps_output(self, example_evidence):
        capped = enumerate_adcs(example_evidence, F1(), 0.05, max_dc_size=2)
        assert all(len(adc.constraint) <= 2 for adc in capped)
        uncapped = _normalised(enumerate_adcs(example_evidence, F1(), 0.05))
        assert _normalised(capped) <= uncapped

    def test_epsilon_zero_returns_only_valid_dcs(self, example_relation, example_evidence):
        for adc in enumerate_adcs(example_evidence, F1(), 0.0, max_dc_size=2):
            assert adc.constraint.violation_count(example_relation) == 0

    def test_larger_epsilon_gives_more_general_constraints(self, example_evidence):
        strict = enumerate_adcs(example_evidence, F1(), 0.0, max_dc_size=3)
        loose = enumerate_adcs(example_evidence, F1(), 0.1, max_dc_size=3)
        average_strict = sum(len(adc.constraint) for adc in strict) / len(strict)
        average_loose = sum(len(adc.constraint) for adc in loose) / len(loose)
        assert average_loose <= average_strict

    def test_invalid_parameters_rejected(self, example_evidence):
        with pytest.raises(ValueError):
            ADCEnum(example_evidence, F1(), epsilon=-0.1)
        with pytest.raises(ValueError):
            ADCEnum(example_evidence, F1(), selection="bogus")

    def test_participation_required_for_f2(self, example_relation, example_space):
        evidence = build_evidence_set(example_relation, example_space, include_participation=False)
        with pytest.raises(ValueError):
            ADCEnum(evidence, F2())

    def test_statistics_populated(self, example_evidence):
        enumerator = ADCEnum(example_evidence, F1(), 0.05)
        results = enumerator.enumerate()
        assert enumerator.statistics.outputs == len(results)
        assert enumerator.statistics.recursive_calls > 0
        assert enumerator.statistics.elapsed_seconds >= 0

    def test_violation_scores_reported(self, example_evidence):
        for adc in enumerate_adcs(example_evidence, F1(), 0.05):
            assert 0.0 <= adc.violation_score <= 0.05
