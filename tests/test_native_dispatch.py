"""Dispatch semantics and bit-identity of the native kernel layer.

Two families of guarantees:

* ``REPRO_NATIVE`` resolution — ``0`` forces numpy, ``1`` requires a
  compiled backend (clean :class:`RuntimeError` when none builds),
  ``numba`` errors cleanly when the package is absent, auto never raises.
* Bit identity — every ported kernel produces byte-for-byte the numpy
  reference's output under whichever compiled backend resolved, on
  hypothesis-generated inputs (the dispatch probe checks one deterministic
  input; these tests fuzz the same contract).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.native import NUMPY_BACKEND, NumpyKernels, get_backend
from repro.native import dispatch


def _compiled_backend_or_none():
    try:
        backend = get_backend()
    except Exception:  # pragma: no cover - auto resolution never raises
        return None
    return backend if backend is not NUMPY_BACKEND else None


requires_compiled = pytest.mark.skipif(
    _compiled_backend_or_none() is None,
    reason="no compiled native backend available on this host",
)


class TestResolution:
    def test_env_0_forces_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert dispatch._resolve() is NUMPY_BACKEND

    def test_env_numpy_forces_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "numpy")
        assert dispatch._resolve() is NUMPY_BACKEND

    def test_auto_never_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        backend = dispatch._resolve()
        assert backend.name in ("cext", "numba", "numpy")

    def test_env_1_requires_compiled(self, monkeypatch):
        """``REPRO_NATIVE=1`` raises (with each builder's reason) when no
        compiled backend is available; never silently falls back."""
        monkeypatch.setenv("REPRO_NATIVE", "1")
        failing = {
            "cext": _raise_unavailable,
            "numba": _raise_unavailable,
        }
        monkeypatch.setattr(dispatch, "_BUILDERS", failing)
        with pytest.raises(RuntimeError, match="REPRO_NATIVE=1"):
            dispatch._resolve()

    def test_env_numba_error_mentions_backend(self, monkeypatch):
        """Requesting numba explicitly surfaces the import failure as a
        RuntimeError naming the backend (not a bare ImportError)."""
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed; absence path not testable")
        except ImportError:
            pass
        monkeypatch.setenv("REPRO_NATIVE", "numba")
        with pytest.raises(RuntimeError, match="numba"):
            dispatch._resolve()

    def test_unknown_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "turbo")
        with pytest.raises(RuntimeError, match="turbo"):
            dispatch._resolve()

    def test_resolve_backend_unknown_name(self):
        with pytest.raises(RuntimeError, match="unknown"):
            dispatch.resolve_backend("turbo")

    def test_probe_rejects_lying_backend(self):
        """A compiled backend whose kernels mismatch the reference must be
        rejected by the probe, not trusted."""

        class LyingKernels(NumpyKernels):
            @staticmethod
            def popcount(words):
                return NumpyKernels.popcount(words) + 1

        with pytest.raises(AssertionError, match="popcount"):
            dispatch._probe_flat_kernels(LyingKernels())

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with dispatch.use_backend("numpy") as backend:
            assert backend is NUMPY_BACKEND
            assert get_backend() is NUMPY_BACKEND
        assert get_backend() is before

    def test_env_0_in_subprocess_suite(self):
        """The environment variable actually reaches the resolver (the CI
        matrix leg relies on this exact spelling)."""
        assert os.environ.get("REPRO_NATIVE") != "0" or (
            get_backend() is NUMPY_BACKEND
        )


def _raise_unavailable():
    raise RuntimeError("unavailable for testing")


# ---------------------------------------------------------------------------
# Hypothesis bit-identity: compiled backend vs numpy reference
# ---------------------------------------------------------------------------
words_arrays = st.integers(min_value=0, max_value=2**64 - 1)


@requires_compiled
class TestCompiledBitIdentity:
    """Every ported flat kernel, fuzzed against the numpy reference."""

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_popcount(self, data):
        n = data.draw(st.integers(min_value=1, max_value=200))
        words = np.array(
            data.draw(st.lists(words_arrays, min_size=n, max_size=n)),
            dtype=np.uint64,
        )
        kernels = _compiled_backend_or_none().kernels
        assert np.array_equal(kernels.popcount(words), NumpyKernels.popcount(words))

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_intersection_counts(self, data):
        n_words = data.draw(st.integers(min_value=1, max_value=4))
        n_cols = data.draw(st.integers(min_value=1, max_value=40))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        ev = rng.integers(0, 2**64, size=(n_words, n_cols), dtype=np.uint64)
        mask = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
        kernels = _compiled_backend_or_none().kernels
        theirs = np.asarray(kernels.intersection_counts(ev, mask), dtype=np.int64)
        ours = np.asarray(NumpyKernels.intersection_counts(ev, mask), dtype=np.int64)
        assert np.array_equal(theirs, ours)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_crit_apply_undo(self, data):
        n_words = data.draw(st.integers(min_value=1, max_value=3))
        depth = data.draw(st.integers(min_value=0, max_value=6))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        rows_a = rng.integers(1, 2**64, size=(depth + 1, n_words), dtype=np.uint64)
        rows_b = rows_a.copy()
        new_row = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
        covers = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
        kernels = _compiled_backend_or_none().kernels
        viable_a, removed_a = kernels.crit_apply(rows_a, depth, new_row, covers)
        viable_b, removed_b = NumpyKernels.crit_apply(rows_b, depth, new_row, covers)
        assert viable_a == viable_b
        assert np.array_equal(rows_a, rows_b)
        kernels.crit_undo(rows_a, depth, removed_a)
        NumpyKernels.crit_undo(rows_b, depth, removed_b)
        assert np.array_equal(rows_a, rows_b)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_tile_plane(self, data):
        n_groups = data.draw(st.integers(min_value=0, max_value=4))
        n_rows = data.draw(st.integers(min_value=1, max_value=12))
        n_words = data.draw(st.integers(min_value=1, max_value=3))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        kinds = rng.integers(0, 3, size=n_groups).astype(np.int32)
        a = np.zeros((n_groups, n_rows), dtype=np.float64)
        b = np.zeros((n_groups, n_rows), dtype=np.float64)
        for g in range(n_groups):
            if kinds[g] == 0:
                a[g] = rng.integers(0, 3, size=n_rows)
            else:
                a[g] = rng.integers(-3, 4, size=n_rows)
                b[g] = rng.integers(-3, 4, size=n_rows)
        lookup = rng.integers(0, 2**64, size=(n_groups, 3, n_words), dtype=np.uint64)
        i0 = data.draw(st.integers(min_value=0, max_value=n_rows - 1))
        i1 = data.draw(st.integers(min_value=i0 + 1, max_value=n_rows))
        j0 = data.draw(st.integers(min_value=0, max_value=n_rows - 1))
        j1 = data.draw(st.integers(min_value=j0 + 1, max_value=n_rows))
        kernels = _compiled_backend_or_none().kernels
        theirs = kernels.tile_plane(kinds, a, b, lookup, i0, i1, j0, j1, n_words)
        ours = NumpyKernels.tile_plane(kinds, a, b, lookup, i0, i1, j0, j1, n_words)
        assert np.array_equal(theirs, ours)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_unique_rows(self, data):
        n = data.draw(st.integers(min_value=0, max_value=300))
        n_words = data.draw(st.integers(min_value=1, max_value=4))
        # Small value range forces hash collisions and duplicates.
        domain = data.draw(st.integers(min_value=1, max_value=6))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, domain, size=(n, n_words)).astype(np.uint64)
        kernels = _compiled_backend_or_none().kernels
        for theirs, ours in zip(kernels.unique_rows(rows), NumpyKernels.unique_rows(rows)):
            assert np.array_equal(theirs, ours)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_search_workspace_lockstep(self, seed):
        """The compiled search arena mirrors the numpy arena through a full
        randomized enumeration (driven by the real ADCEnum driver)."""
        from tests.conftest import make_random_relation
        from repro.core.adc_enum import ADCEnum
        from repro.core.approximation import F1
        from repro.core.evidence_builder import build_evidence_set
        from repro.core.predicate_space import build_predicate_space

        relation = make_random_relation(n_rows=6, seed=seed)
        space = build_predicate_space(relation)
        evidence = build_evidence_set(relation, space, include_participation=True)

        def run(backend):
            with dispatch.use_backend(backend):
                enum = ADCEnum(evidence, F1(), 0.15, max_dc_size=3)
                return [
                    (adc.hitting_set_mask, adc.violation_score)
                    for adc in enum.enumerate()
                ]

        assert run(_compiled_backend_or_none()) == run("numpy")
