"""Comparison operators for denial-constraint predicates.

The paper restricts predicates to the six comparison operators
``B = {=, !=, >, <, >=, <=}`` (Section 3).  This module defines the operator
enumeration together with the algebra the rest of the library relies on:

* the *complement* of an operator (``<`` vs ``>=``), used to move between a
  DC and the hitting set of the evidence set;
* which operators a value pair in a given *order category* (less / equal /
  greater) satisfies, used by the vectorised evidence builder;
* implication and joint satisfiability of operators over the same column
  pair, used for triviality checks and redundant-predicate pruning.
"""

from __future__ import annotations

import enum
import operator as _operator
from typing import Callable


class Operator(enum.Enum):
    """One of the six comparison operators allowed in DC predicates."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __lt__(self, other: object) -> bool:
        """Order operators by declaration position.

        Predicates are ordered dataclasses; without this, sorting predicates
        that tie on their column fields raises ``TypeError``.
        """
        if not isinstance(other, Operator):
            return NotImplemented
        return _OPERATOR_RANK[self] < _OPERATOR_RANK[other]

    @property
    def symbol(self) -> str:
        """Human readable symbol (same as the enum value)."""
        return self.value

    @property
    def complement(self) -> "Operator":
        """The operator whose truth value is the negation of this one."""
        return _COMPLEMENTS[self]

    @property
    def inverse(self) -> "Operator":
        """The operator obtained by swapping the two operands.

        For example ``a < b`` holds exactly when ``b > a`` holds, so the
        inverse of ``LT`` is ``GT``; equality and inequality are their own
        inverses.
        """
        return _INVERSES[self]

    @property
    def is_order(self) -> bool:
        """Whether the operator requires an ordered (numeric) domain."""
        return self in (Operator.LT, Operator.LE, Operator.GT, Operator.GE)

    @property
    def is_equality_kind(self) -> bool:
        """Whether the operator is ``==`` or ``!=``."""
        return self in (Operator.EQ, Operator.NE)

    def evaluate(self, left: object, right: object) -> bool:
        """Evaluate ``left <op> right`` on two Python values."""
        return _EVALUATORS[self](left, right)

    def implies(self, other: "Operator") -> bool:
        """Whether ``a self b`` logically implies ``a other b`` for all a, b.

        The implication structure over a totally ordered domain is::

            <  implies  <=, !=
            >  implies  >=, !=
            == implies  <=, >=
        """
        return other in _IMPLICATIONS[self]


_OPERATOR_RANK = {member: position for position, member in enumerate(Operator)}

_COMPLEMENTS = {
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
    Operator.LT: Operator.GE,
    Operator.GE: Operator.LT,
    Operator.GT: Operator.LE,
    Operator.LE: Operator.GT,
}

_INVERSES = {
    Operator.EQ: Operator.EQ,
    Operator.NE: Operator.NE,
    Operator.LT: Operator.GT,
    Operator.GT: Operator.LT,
    Operator.LE: Operator.GE,
    Operator.GE: Operator.LE,
}

_EVALUATORS: dict[Operator, Callable[[object, object], bool]] = {
    Operator.EQ: _operator.eq,
    Operator.NE: _operator.ne,
    Operator.LT: _operator.lt,
    Operator.LE: _operator.le,
    Operator.GT: _operator.gt,
    Operator.GE: _operator.ge,
}

_IMPLICATIONS = {
    Operator.EQ: {Operator.EQ, Operator.LE, Operator.GE},
    Operator.NE: {Operator.NE},
    Operator.LT: {Operator.LT, Operator.LE, Operator.NE},
    Operator.GT: {Operator.GT, Operator.GE, Operator.NE},
    Operator.LE: {Operator.LE},
    Operator.GE: {Operator.GE},
}

#: Operators generated for numeric column pairs (the full set B).
NUMERIC_OPERATORS: tuple[Operator, ...] = (
    Operator.EQ,
    Operator.NE,
    Operator.GT,
    Operator.GE,
    Operator.LT,
    Operator.LE,
)

#: Operators generated for string column pairs (equality kind only).
STRING_OPERATORS: tuple[Operator, ...] = (Operator.EQ, Operator.NE)


class OrderCategory(enum.IntEnum):
    """The three possible outcomes of comparing two orderable values."""

    LESS = 0
    EQUAL = 1
    GREATER = 2


#: Operators satisfied by a value pair in each order category.
SATISFIED_BY_CATEGORY: dict[OrderCategory, frozenset[Operator]] = {
    OrderCategory.LESS: frozenset({Operator.LT, Operator.LE, Operator.NE}),
    OrderCategory.EQUAL: frozenset({Operator.EQ, Operator.LE, Operator.GE}),
    OrderCategory.GREATER: frozenset({Operator.GT, Operator.GE, Operator.NE}),
}

#: Operators satisfied in each category when the column is non-numeric
#: (only the equality-kind subset of the category applies).
SATISFIED_BY_CATEGORY_STRING: dict[OrderCategory, frozenset[Operator]] = {
    OrderCategory.LESS: frozenset({Operator.NE}),
    OrderCategory.EQUAL: frozenset({Operator.EQ}),
    OrderCategory.GREATER: frozenset({Operator.NE}),
}


def operators_satisfiable_together(operators: set[Operator]) -> bool:
    """Whether a set of operators over the *same* column pair can all hold.

    A predicate set like ``{<, >=}`` over the same pair of cells can never be
    jointly satisfied, which makes the containing DC trivially valid.  The
    set is satisfiable exactly when some order category satisfies all of its
    members.
    """
    if not operators:
        return True
    return any(
        operators <= satisfied for satisfied in SATISFIED_BY_CATEGORY.values()
    )


def category_of(left: object, right: object) -> OrderCategory:
    """Order category of a concrete value pair.

    Values of non-orderable (string) columns only ever produce ``EQUAL`` or
    ``LESS`` / ``GREATER`` via plain Python comparison, which is sufficient
    because only equality-kind operators are generated for them.
    """
    if left == right:
        return OrderCategory.EQUAL
    try:
        return OrderCategory.LESS if left < right else OrderCategory.GREATER  # type: ignore[operator]
    except TypeError:
        return OrderCategory.GREATER
