"""Crash-safe durability: write-ahead logs, snapshots, fault injection.

The layer that lets everything above :class:`~repro.incremental.store.EvidenceStore`
survive a SIGKILL:

* :mod:`repro.durability.wal` — the append-only CRC-checksummed record log
  with torn-tail truncation and configurable fsync policy.
* :mod:`repro.durability.snapshot` — versioned, checksummed compaction
  files written atomically (tmp + fsync + rename).
* :mod:`repro.durability.journal` — :class:`StoreJournal` (per-tenant WAL
  + snapshots + bit-identical recovery), :class:`DedupWindow`
  (exactly-once append retries), and :class:`SubmissionJournal`
  (coordinator submit resume).
* :mod:`repro.durability.faults` — the deterministic fault-injection
  harness the chaos tests drive: seeded crash points, torn writes, fsync
  failures, and a frame-aware flaky TCP proxy for lost-ack scenarios.
"""

from repro.durability.faults import FaultSchedule, FlakyProxy, SimulatedCrash
from repro.durability.journal import (
    DedupWindow,
    DurabilityError,
    RecoveredStore,
    RecoveryError,
    RecoveryStats,
    StoreJournal,
    SubmissionJournal,
)
from repro.durability.snapshot import SnapshotError, load_snapshot, write_snapshot
from repro.durability.wal import WALError, WriteAheadLog

__all__ = [
    "DedupWindow",
    "DurabilityError",
    "FaultSchedule",
    "FlakyProxy",
    "RecoveredStore",
    "RecoveryError",
    "RecoveryStats",
    "SimulatedCrash",
    "SnapshotError",
    "StoreJournal",
    "SubmissionJournal",
    "WALError",
    "WriteAheadLog",
    "load_snapshot",
    "write_snapshot",
]
