"""Wire protocol of the violation-serving server.

One frame is an 8-byte big-endian payload length followed by a UTF-8 JSON
object — the same framing the cluster transport uses, but with JSON instead
of pickle: the serving port faces clients that are not this library (and
must never accept a pickle from them).

Requests carry ``{"id": <int>, "op": <str>, ...op fields}``; responses echo
the id with either ``{"id": n, "ok": true, ...result fields}`` or
``{"id": n, "ok": false, "error": {"code": <str>, "message": <str>}}``.
Ids are per-connection and chosen by the client; the server answers every
request exactly once, in arrival order, so a pipelining client can match
responses positionally or by id.

A request may additionally carry ``"trace"`` — a trace-id string (or
``true`` for a server-generated id).  The server then times the request
across layers and attaches ``{"trace": {"trace_id", "op", "seconds",
"segments": {...}}}`` to the ok response, where the disjoint segment
seconds (e.g. ``queue``/``fold``/``journal_fsync``/``commit``/``ack`` for
an append) sum to the request's server-side wall latency.  The ``metrics``
op dumps the process metrics registry (JSON snapshot or Prometheus text).

The module is transport-agnostic on purpose: :func:`encode_frame` /
:func:`decode_payload` do the byte work, and the tiny sync reader
(:func:`read_frame`) serves the blocking client while the asyncio server
reads frames with ``StreamReader.readexactly`` directly.
"""

from __future__ import annotations

import json
import struct
from typing import Mapping, Protocol

import numpy as np

#: Frame header: big-endian unsigned payload length.
HEADER = struct.Struct(">Q")

#: Protocol revision, echoed by ``ping`` so clients can detect skew.
PROTOCOL_VERSION = 1

#: Default refusal bound for a single frame (requests and responses); a
#: 64 MiB JSON document is far past any legitimate batch or report.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or oversized frame (the connection is unusable)."""


# ----------------------------------------------------------------------
# Error codes (the ``error.code`` field of a failure response)
# ----------------------------------------------------------------------
BAD_REQUEST = "bad_request"          #: missing/invalid fields, bad values
UNKNOWN_OP = "unknown_op"            #: op name the server does not speak
UNKNOWN_STORE = "unknown_store"      #: store name not registered
STORE_EXISTS = "store_exists"        #: create_store of an existing name
NO_CONSTRAINTS = "no_constraints"    #: violation query before remine/declare
SHUTTING_DOWN = "shutting_down"      #: request arrived during graceful drain
QUOTA_EXCEEDED = "quota_exceeded"    #: per-tenant store/row quota would be crossed
INTERNAL = "internal"                #: unexpected server-side failure


class ServeError(RuntimeError):
    """A server-reported request failure, as raised by the client."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeTimeout(ConnectionError):
    """The server did not answer (or accept a connection) within the
    client's timeout.

    A ``ConnectionError`` subclass on purpose: after a read timeout the
    connection is unusable (a late response would desynchronize request
    ids), so callers that already handle dead links handle timeouts too.
    """


class QuotaExceeded(RuntimeError):
    """Server-side: a per-tenant quota would be crossed.

    Raised by the append scheduler / store registry and mapped to a
    :data:`QUOTA_EXCEEDED` error frame by the dispatcher.
    """


def jsonable(value: object) -> object:
    """Recursively convert a response value into plain JSON types.

    Results are computed with numpy (``int64`` counts, ``float64`` rates,
    arrays of scores); ``json`` refuses all of them, so every payload runs
    through this before encoding.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonable(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value


def encode_frame(message: Mapping[str, object]) -> bytes:
    """One wire frame: length header + UTF-8 JSON payload."""
    payload = json.dumps(jsonable(message), separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, object]:
    """Parse one frame payload; the top level must be a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def frame_length(header: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Payload length announced by a header, bounds-checked."""
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte bound"
        )
    return length


class _SupportsRecv(Protocol):  # pragma: no cover - typing aid
    def recv(self, n: int, /) -> bytes: ...


def read_exact(sock: "_SupportsRecv", n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket (EOF raises)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: "_SupportsRecv", max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict[str, object]:
    """Read one complete frame from a blocking socket (the sync client)."""
    header = read_exact(sock, HEADER.size)
    return decode_payload(read_exact(sock, frame_length(header, max_frame_bytes)))


# ----------------------------------------------------------------------
# Response construction (server side)
# ----------------------------------------------------------------------
def ok_response(request_id: object, **fields: object) -> dict[str, object]:
    """A success frame echoing the request id."""
    return {"id": request_id, "ok": True, **fields}


def error_response(request_id: object, code: str, message: str) -> dict[str, object]:
    """A failure frame echoing the request id."""
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}
