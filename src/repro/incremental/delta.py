"""Delta evidence construction for appended tuple batches.

Appending ``m`` rows to an ``n``-row relation adds exactly three blocks of
new ordered pairs to the pair matrix:

* the *new-vs-old* rectangle ``[n, n+m) x [0, n)``,
* the *old-vs-new* rectangle ``[0, n) x [n, n+m)``,
* the *new-vs-new* square ``[n, n+m) x [n, n+m)`` (diagonal excluded).

Every pair among the first ``n`` rows is untouched, so the evidence
contribution of those blocks — ``O(n·m + m²)`` pairs instead of the full
``O((n+m)²)`` — is all an incremental rebuild has to compute.
:class:`DeltaEvidenceBuilder` schedules the three blocks as ordinary
:class:`~repro.engine.scheduler.Tile` work units (the rectangular-range
support of :class:`~repro.engine.scheduler.TileScheduler`), runs them
through the same picklable :class:`~repro.engine.kernel.TileKernel` as the
batch builders — serially or over the process pool
(:func:`~repro.engine.parallel.fold_tiles_pooled`) — and returns a
:class:`~repro.engine.partial.PartialEvidenceSet` ready to
:meth:`~repro.engine.partial.PartialEvidenceSet.merge` into the stored one.

Because the delta tiles partition exactly the pairs a full rebuild would
add, and :meth:`~repro.engine.partial.PartialEvidenceSet.finalize` is
invariant to how pairs were grouped into tiles and partials, merging the
delta into the stored partial finalizes **bit-identically** to a full tiled
rebuild on the concatenated relation (property-tested over random append
schedules in ``tests/test_incremental.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.evidence import n_words_for
from repro.engine.kernel import TileKernel
from repro.engine.parallel import fold_tiles_pooled, parallel_tile_rows
from repro.engine.scheduler import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    TileScheduler,
    choose_tile_rows,
)

if TYPE_CHECKING:
    from repro.core.predicate_space import PredicateSpace
    from repro.data.relation import Relation
    from repro.engine.partial import PartialEvidenceSet
    from repro.engine.scheduler import Tile


def delta_tiles(
    n_existing: int,
    n_total: int,
    tile_rows: int,
    include_new_vs_new: bool = True,
) -> tuple["Tile", ...]:
    """Tile work units covering exactly the pairs an append introduced.

    Enumerates the new-vs-old and old-vs-new rectangles and the new-vs-new
    square of a relation grown from ``n_existing`` to ``n_total`` rows, as
    three rectangular :class:`~repro.engine.scheduler.TileScheduler` grids.
    The returned tiles partition the added ordered pairs: no pair between
    two existing rows appears, and every pair touching a new row appears
    exactly once.

    ``include_new_vs_new=False`` drops the new-vs-new square, leaving only
    the cross rectangles — what per-row batch admission
    (:meth:`~repro.incremental.serve.ViolationService.check_batch`) replays
    so that every new row is judged independently of its batch-mates.
    """
    if not 0 <= n_existing <= n_total:
        raise ValueError(
            f"invalid append bounds: {n_existing} existing of {n_total} total rows"
        )
    if n_existing == n_total:
        return ()
    blocks = [
        # new-vs-old, old-vs-new, new-vs-new (row-range x row-range grids).
        ((n_existing, n_total), (0, n_existing)),
        ((0, n_existing), (n_existing, n_total)),
    ]
    if include_new_vs_new:
        blocks.append(((n_existing, n_total), (n_existing, n_total)))
    tiles: list["Tile"] = []
    for rows, cols in blocks:
        if rows[0] == rows[1] or cols[0] == cols[1]:
            continue
        scheduler = TileScheduler(n_total, tile_rows=tile_rows, rows=rows, cols=cols)
        tiles.extend(scheduler.tiles())
    return tuple(tiles)


class DeltaEvidenceBuilder:
    """Compute evidence partials for a relation and its appended batches.

    The builder owns the construction knobs (predicate space, participation
    tracking, tile sizing, worker count) so that the initial full build and
    every subsequent delta run through identical kernels and schedules —
    the precondition for the store's bit-identity invariant.

    Parameters
    ----------
    space:
        The predicate space every build evaluates.  Fixed for the builder's
        lifetime: evidence words of different spaces are not comparable.
    include_participation:
        Whether tile kernels aggregate the tuple-participation histogram
        (needed by f2/f3 and the per-tuple violation scores).
    tile_rows:
        Tile edge; ``None`` picks it adaptively per build via
        :func:`~repro.engine.scheduler.choose_tile_rows`.
    n_workers:
        Process-pool width for tile evaluation; ``1`` (default) folds
        serially in-process (see
        :func:`~repro.engine.parallel.fold_tiles_pooled`).
    cluster:
        Optional :class:`~repro.cluster.coordinator.ClusterCoordinator` or
        :class:`~repro.cluster.local.LocalCluster`: the initial full build
        *and every delta* fold their tiles over the cluster's workers
        instead of a process pool (``n_workers`` is then ignored).
    memory_budget_bytes:
        Transient-memory budget driving the adaptive tile edge.
    """

    def __init__(
        self,
        space: "PredicateSpace",
        include_participation: bool = True,
        tile_rows: int | None = None,
        n_workers: int = 1,
        cluster: object | None = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        self.space = space
        self.n_words = n_words_for(len(space))
        self.include_participation = bool(include_participation)
        self.tile_rows = int(tile_rows) if tile_rows is not None else None
        self.n_workers = int(n_workers)
        self.cluster = cluster
        self.memory_budget_bytes = int(memory_budget_bytes)

    def tile_edge(self, n_rows: int) -> int:
        """Tile edge for a build over ``n_rows`` rows (fixed or adaptive).

        With a pool, the memory budget is split across the concurrent
        kernels the same way the batch parallel builder splits it
        (:func:`~repro.engine.parallel.parallel_tile_rows`), so ``n_workers``
        kernels together stay within ``memory_budget_bytes``.
        """
        if self.tile_rows is not None:
            return self.tile_rows
        concurrency = self._concurrency()
        if concurrency > 1:
            return parallel_tile_rows(
                max(n_rows, 1), self.n_words, concurrency, self.memory_budget_bytes
            )
        return choose_tile_rows(max(n_rows, 1), self.n_words, self.memory_budget_bytes)

    def _concurrency(self) -> int:
        """Concurrent kernels the fold will run (pool width or cluster size)."""
        if self.cluster is not None:
            from repro.cluster.local import resolve_coordinator

            return max(resolve_coordinator(self.cluster).n_alive, 1)
        return self.n_workers

    def _fold(self, kernel: TileKernel, tiles: tuple["Tile", ...]) -> "PartialEvidenceSet":
        """Fold tiles over the cluster when one is attached, else the pool."""
        if self.cluster is not None:
            from repro.cluster.build import fold_tiles_cluster

            return fold_tiles_cluster(kernel, tiles, self.cluster)
        return fold_tiles_pooled(kernel, tiles, self.n_workers)

    def kernel(self, relation: "Relation", include_participation: bool | None = None) -> TileKernel:
        """A tile kernel over the relation's *current* rows.

        Kernels snapshot per-row comparison data, so a fresh one is needed
        after every append; preparing it is ``O(n)`` vectorised work and the
        relation's incrementally-extended string codes keep even that cheap.
        """
        if include_participation is None:
            include_participation = self.include_participation
        return TileKernel.from_relation(relation, self.space, include_participation)

    def full_partial(self, relation: "Relation") -> "PartialEvidenceSet":
        """Evidence partial of the full pair matrix (the store's seed)."""
        scheduler = TileScheduler(relation.n_rows, tile_rows=self.tile_edge(relation.n_rows))
        return self._fold(self.kernel(relation), scheduler.tiles())

    def delta_partial(
        self, relation: "Relation", n_existing: int
    ) -> "PartialEvidenceSet":
        """Evidence partial of the pairs added by growing to ``relation``.

        ``relation`` must already contain the appended rows (the kernel
        needs both sides of the cross blocks); ``n_existing`` is the row
        count *before* the append.  The result's ``n_rows`` is the new
        total, so the caller must
        :meth:`~repro.engine.partial.PartialEvidenceSet.rebase_rows` the
        stored partial before merging.
        """
        tiles = delta_tiles(n_existing, relation.n_rows, self.tile_edge(relation.n_rows))
        return self._fold(self.kernel(relation), tiles)
