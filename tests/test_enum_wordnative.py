"""Word-native enumeration core vs the frozen pre-refactor reference.

The word-native ``ADCEnum`` and ``MMCS`` must be *bit-identical* to the
pre-refactor implementations kept in :mod:`repro.core.legacy_enum`: same
masks, same order, same scores, same search-tree statistics.  These
cross-checks are what licenses every representation change inside the
recursion (packed criticality planes, incremental overlap counts,
dead-evidence compaction, canHit subsumption by the overlap counts).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_relation
from repro.core.adc_enum import ADCEnum
from repro.core.approximation import F1, F1Adjusted, F2, F3Greedy
from repro.core.evidence_builder import build_evidence_set
from repro.core.hitting_set import MMCS
from repro.core.legacy_enum import LegacyADCEnum, LegacyMMCS
from repro.core.predicate_space import build_predicate_space


def _evidence_for(seed: int, n_rows: int = 7, domain: int = 3):
    relation = make_random_relation(n_rows=n_rows, seed=seed, domain_size=domain)
    space = build_predicate_space(relation)
    return build_evidence_set(relation, space, include_participation=True)


def _discovered(adcs):
    """Everything DiscoveredADC carries, in emission order, scores exact."""
    return [
        (adc.hitting_set_mask, adc.violation_score, adc.constraint.predicates)
        for adc in adcs
    ]


def _statistics_tuple(statistics):
    return (
        statistics.recursive_calls,
        statistics.hit_branches,
        statistics.skip_branches,
        statistics.pruned_by_willcover,
        statistics.pruned_by_criticality,
        statistics.minimality_checks,
        statistics.outputs,
    )


class TestADCEnumBitIdentical:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.2])
    @pytest.mark.parametrize("selection", ["max", "min", "random"])
    def test_f1_same_list_same_order_same_scores(self, seed, epsilon, selection):
        evidence = _evidence_for(seed)
        new = ADCEnum(evidence, F1(), epsilon, selection=selection, max_dc_size=3)
        old = LegacyADCEnum(evidence, F1(), epsilon, selection=selection, max_dc_size=3)
        assert _discovered(new.enumerate()) == _discovered(old.enumerate())
        assert _statistics_tuple(new.statistics) == _statistics_tuple(old.statistics)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_f1_unbounded_dc_size(self, seed):
        evidence = _evidence_for(seed, n_rows=6)
        new = ADCEnum(evidence, F1(), 0.1)
        old = LegacyADCEnum(evidence, F1(), 0.1)
        assert _discovered(new.enumerate()) == _discovered(old.enumerate())
        assert _statistics_tuple(new.statistics) == _statistics_tuple(old.statistics)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("function", [F2(), F3Greedy()], ids=["f2", "f3"])
    def test_tuple_based_functions(self, seed, function):
        """The non-pair path (explicit uncovered index arrays) also matches."""
        evidence = _evidence_for(seed)
        new = ADCEnum(evidence, function, 0.3, max_dc_size=2)
        old = LegacyADCEnum(evidence, function, 0.3, max_dc_size=2)
        assert _discovered(new.enumerate()) == _discovered(old.enumerate())

    def test_adjusted_f1_pair_determined_path(self):
        """f1' is pair-determined but with nontrivial score arithmetic."""
        evidence = _evidence_for(3)
        function = F1Adjusted(confidence_z=1.645)
        new = ADCEnum(evidence, function, 0.1, max_dc_size=3)
        old = LegacyADCEnum(evidence, function, 0.1, max_dc_size=3)
        assert _discovered(new.enumerate()) == _discovered(old.enumerate())

    def test_partial_pair_shortcut_takes_non_pair_path(self):
        """A function whose pair shortcut is only *partial* must not be
        treated as pair-determined; it takes the index-array path and still
        matches the legacy enumerator."""

        class PartialShortcutF1(F1):
            pair_determined = False

            def violation_score_from_pair_fraction(self, pair_fraction, total_pairs):
                if pair_fraction == 0.0:
                    return 0.0
                return None  # fall back to violation_score everywhere else

        evidence = _evidence_for(2)
        function = PartialShortcutF1()
        new = ADCEnum(evidence, function, 0.1, max_dc_size=3)
        old = LegacyADCEnum(evidence, function, 0.1, max_dc_size=3)
        assert _discovered(new.enumerate()) == _discovered(old.enumerate())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_random_relations(self, seed):
        evidence = _evidence_for(seed, n_rows=6)
        new = ADCEnum(evidence, F1(), 0.15, max_dc_size=3)
        old = LegacyADCEnum(evidence, F1(), 0.15, max_dc_size=3)
        assert _discovered(new.enumerate()) == _discovered(old.enumerate())
        assert _statistics_tuple(new.statistics) == _statistics_tuple(old.statistics)

    def test_repeated_runs_are_stable(self):
        evidence = _evidence_for(0)
        enumerator = ADCEnum(evidence, F1(), 0.05, max_dc_size=3)
        assert _discovered(enumerator.enumerate()) == _discovered(enumerator.enumerate())


class TestMMCSBitIdentical:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_masks_same_order(self, seed):
        rng = random.Random(seed)
        n_elements = rng.randint(1, 9)
        subsets = [
            rng.randint(0, (1 << n_elements) - 1) for _ in range(rng.randint(0, 10))
        ]
        new = MMCS(subsets, n_elements)
        old = LegacyMMCS(subsets, n_elements)
        assert new.enumerate() == old.enumerate()
        assert new.statistics.recursive_calls == old.statistics.recursive_calls
        assert new.statistics.outputs == old.statistics.outputs
        assert (
            new.statistics.pruned_by_criticality
            == old.statistics.pruned_by_criticality
        )

    @settings(max_examples=40, deadline=None)
    @given(
        subsets=st.lists(st.integers(min_value=0, max_value=255), max_size=8),
    )
    def test_property_same_output_list(self, subsets):
        assert MMCS(subsets, 8).enumerate() == LegacyMMCS(subsets, 8).enumerate()

    def test_interleaved_iterators_are_independent(self):
        """Search state is per-call, so two suspended iterators over the
        same MMCS instance must not corrupt each other."""
        subsets = [0b011, 0b110, 0b101]
        enumerator = MMCS(subsets, 3)
        expected = enumerator.enumerate()
        first = enumerator.iter_minimal_hitting_sets()
        head = next(first)
        second = enumerator.iter_minimal_hitting_sets()
        assert list(second) == expected
        assert [head] + list(first) == expected
