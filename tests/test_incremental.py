"""Tests of the incremental evidence subsystem (delta builder + store).

The load-bearing claim is the store's invariant: any schedule of appends
followed by finalization is **bit-identical** — words, canonical order,
multiplicities, tuple participation — to a full tiled rebuild on the
concatenated relation with the same predicate space.  Hypothesis drives
random relations through random append schedules against that claim; the
deterministic tests pin down the delta tile geometry, the participation
rebase, cache invalidation, and the parallel delta path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_relation
from tests.test_engine import assert_evidence_identical
from repro.core.evidence_builder import build_evidence_set_tiled
from repro.core.predicate_space import build_predicate_space
from repro.engine import PartialEvidenceSet, TileKernel, TileScheduler
from repro.incremental import DeltaEvidenceBuilder, EvidenceStore, delta_tiles


def _split_rows(relation, boundaries):
    """Initial slice + batches of ``relation`` cut at ``boundaries``."""
    edges = [0, *boundaries, relation.n_rows]
    parts = [
        relation.take(range(lo, hi)) for lo, hi in zip(edges, edges[1:]) if hi > lo
    ]
    return parts[0], parts[1:]


class TestDeltaTiles:
    def test_empty_append_has_no_tiles(self):
        assert delta_tiles(5, 5, 2) == ()

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            delta_tiles(6, 5, 2)
        with pytest.raises(ValueError):
            delta_tiles(-1, 5, 2)

    @pytest.mark.parametrize("n_existing,n_total", [(0, 4), (3, 7), (5, 6)])
    def test_cross_only_tiles_skip_the_new_square(self, n_existing, n_total):
        tiles = delta_tiles(n_existing, n_total, 2, include_new_vs_new=False)
        covered = np.zeros((n_total, n_total), dtype=np.int64)
        for tile in tiles:
            covered[tile.i0:tile.i1, tile.j0:tile.j1] += 1
        assert (covered[:n_existing, :n_existing] == 0).all()
        assert (covered[n_existing:, n_existing:] == 0).all()
        assert (covered[n_existing:, :n_existing] == 1).all()
        assert (covered[:n_existing, n_existing:] == 1).all()

    @pytest.mark.parametrize("n_existing,n_total,tile_rows", [
        (0, 4, 2), (1, 5, 2), (4, 5, 3), (5, 9, 2), (7, 8, 16), (3, 11, 1),
    ])
    def test_tiles_cover_exactly_the_added_pairs(self, n_existing, n_total, tile_rows):
        tiles = delta_tiles(n_existing, n_total, tile_rows)
        covered = np.zeros((n_total, n_total), dtype=np.int64)
        for tile in tiles:
            covered[tile.i0:tile.i1, tile.j0:tile.j1] += 1
        # Pairs among existing rows are untouched; every pair involving a
        # new row is covered exactly once.
        assert (covered[:n_existing, :n_existing] == 0).all()
        assert (covered[n_existing:, :] == 1).all()
        assert (covered[:, n_existing:] == 1).all()
        # Declared pair counts agree with the covered area minus diagonals.
        total = sum(tile.n_pairs for tile in tiles)
        expected = n_total * (n_total - 1) - n_existing * (n_existing - 1)
        assert total == expected


class TestRectangularScheduler:
    def test_block_tiles_stay_inside_the_block(self):
        scheduler = TileScheduler(10, tile_rows=3, rows=(6, 10), cols=(0, 6))
        for tile in scheduler:
            assert 6 <= tile.i0 < tile.i1 <= 10
            assert 0 <= tile.j0 < tile.j1 <= 6
        assert scheduler.total_pairs == 4 * 6  # no diagonal overlap
        assert scheduler.grid_shape == (2, 2)

    def test_off_diagonal_block_counts_no_diagonal(self):
        scheduler = TileScheduler(10, tile_rows=4, rows=(2, 8), cols=(5, 10))
        # Diagonal overlap of [2, 8) x [5, 10) is rows 5, 6, 7.
        assert scheduler.total_pairs == 6 * 5 - 3

    def test_default_ranges_reproduce_the_full_grid(self):
        full = TileScheduler(9, tile_rows=4)
        ranged = TileScheduler(9, tile_rows=4, rows=(0, 9), cols=(0, 9))
        assert full.tiles() == ranged.tiles()
        assert full.total_pairs == 9 * 8

    def test_out_of_range_block_raises(self):
        with pytest.raises(ValueError):
            TileScheduler(5, tile_rows=2, rows=(3, 7))
        with pytest.raises(ValueError):
            TileScheduler(5, tile_rows=2, cols=(-1, 4))


class TestPartialRebase:
    def test_rebase_rewrites_participation_keys(self):
        relation = make_random_relation(n_rows=6, seed=3)
        space = build_predicate_space(relation)
        kernel = TileKernel.from_relation(relation, space, include_participation=True)
        partial = PartialEvidenceSet(6, kernel.n_words, True)
        for tile in TileScheduler(6, tile_rows=3):
            result = kernel.run(tile)
            if result is not None:
                partial.add_tile(result)
        reference = partial.copy().finalize(space)

        rebased = partial.copy().rebase_rows(10)
        assert rebased.n_rows == 10
        grown = rebased.finalize(space)
        # Same evidences and counts; participation decodes to the same
        # (tuple, count) rows because tuple ids survive the re-keying.
        assert np.array_equal(grown.words, reference.words)
        assert np.array_equal(grown.counts, reference.counts)
        for index in range(len(reference)):
            a, b = grown.participation(index), reference.participation(index)
            assert np.array_equal(a.tuple_ids, b.tuple_ids)
            assert np.array_equal(a.pair_counts, b.pair_counts)

    def test_rebase_shrinking_raises(self):
        partial = PartialEvidenceSet(5, 1, False)
        with pytest.raises(ValueError):
            partial.rebase_rows(4)

    def test_rebase_does_not_mutate_copies(self):
        relation = make_random_relation(n_rows=5, seed=9)
        space = build_predicate_space(relation)
        kernel = TileKernel.from_relation(relation, space, include_participation=True)
        partial = PartialEvidenceSet(5, kernel.n_words, True)
        for tile in TileScheduler(5, tile_rows=2):
            result = kernel.run(tile)
            if result is not None:
                partial.add_tile(result)
        duplicate = partial.copy()
        before = [chunk.copy() for chunk in duplicate._part_key_chunks]
        partial.rebase_rows(12)
        for chunk, original in zip(duplicate._part_key_chunks, before):
            assert np.array_equal(chunk, original)


def _rebuild(relation, space, include_participation=True):
    return build_evidence_set_tiled(
        relation, space, include_participation=include_participation
    )


class TestEvidenceStore:
    @pytest.mark.parametrize("boundaries", [(10,), (10, 13), (2,), (14,), (5, 6, 7)])
    def test_append_matches_full_rebuild(self, example_relation, boundaries):
        space = build_predicate_space(example_relation)
        initial, batches = _split_rows(example_relation, boundaries)
        store = EvidenceStore(initial, space=space, tile_rows=4)
        for batch in batches:
            store.append(batch)
        assert_evidence_identical(store.evidence(), _rebuild(example_relation, space))

    def test_append_record_dicts(self, example_relation):
        space = build_predicate_space(example_relation)
        initial, batches = _split_rows(example_relation, (12,))
        store = EvidenceStore(initial, space=space)
        (batch,) = batches
        appended = store.append([batch.row(i) for i in range(batch.n_rows)])
        assert appended == 3
        assert_evidence_identical(store.evidence(), _rebuild(example_relation, space))

    def test_append_without_participation(self, example_relation):
        space = build_predicate_space(example_relation)
        initial, batches = _split_rows(example_relation, (8,))
        store = EvidenceStore(initial, space=space, include_participation=False)
        for batch in batches:
            store.append(batch)
        expected = _rebuild(example_relation, space, include_participation=False)
        assert_evidence_identical(store.evidence(), expected)

    def test_parallel_delta_matches_serial(self, example_relation):
        space = build_predicate_space(example_relation)
        initial, batches = _split_rows(example_relation, (9,))
        serial = EvidenceStore(initial, space=space, tile_rows=2, n_workers=1)
        pooled = EvidenceStore(initial, space=space, tile_rows=2, n_workers=2)
        for batch in batches:
            serial.append(batch)
            pooled.append(batch)
        assert_evidence_identical(serial.evidence(), pooled.evidence())

    def test_empty_append_is_a_noop(self, example_relation):
        store = EvidenceStore(example_relation)
        evidence = store.evidence()
        assert store.append([]) == 0
        assert store.generation == 0
        assert store.evidence() is evidence

    def test_evidence_cache_invalidated_on_append(self, example_relation):
        initial, batches = _split_rows(example_relation, (10,))
        space = build_predicate_space(example_relation)
        store = EvidenceStore(initial, space=space)
        first = store.evidence()
        assert store.evidence() is first
        store.append(batches[0])
        assert store.generation == 1
        assert store.evidence() is not first
        assert store.n_rows == example_relation.n_rows

    def test_failed_append_leaves_the_store_consistent(self, example_relation, monkeypatch):
        """A delta-build failure must not half-commit the append."""
        space = build_predicate_space(example_relation)
        initial, batches = _split_rows(example_relation, (10,))
        store = EvidenceStore(initial, space=space)
        before = store.evidence()

        def broken(relation, n_existing):  # pragma: no cover - failure path
            raise RuntimeError("worker pool died")

        monkeypatch.setattr(store.builder, "delta_partial", broken)
        with pytest.raises(RuntimeError):
            store.append(batches[0])
        assert store.n_rows == 10
        assert store.generation == 0
        assert store.evidence() is before
        monkeypatch.undo()

        # Retrying the same batch after the failure works and stays exact.
        store.append(batches[0])
        assert_evidence_identical(store.evidence(), _rebuild(example_relation, space))

    def test_failed_coercion_leaves_the_store_consistent(self, example_relation):
        initial, batches = _split_rows(example_relation, (10,))
        store = EvidenceStore(initial)
        bad_row = dict(batches[0].row(0))
        bad_row["Income"] = "not-a-number"
        with pytest.raises(ValueError):
            store.append([bad_row])
        assert store.n_rows == 10
        assert store.generation == 0

    def test_store_copies_the_input_relation(self, example_relation):
        initial, batches = _split_rows(example_relation, (10,))
        store = EvidenceStore(initial)
        store.append(batches[0])
        assert initial.n_rows == 10
        assert store.n_rows == 15

    def test_clone_is_independent(self, example_relation):
        initial, batches = _split_rows(example_relation, (10,))
        space = build_predicate_space(example_relation)
        store = EvidenceStore(initial, space=space)
        clone = store.clone()
        store.append(batches[0])
        assert clone.n_rows == 10
        assert store.n_rows == 15
        assert_evidence_identical(clone.evidence(), _rebuild(initial, space))
        assert_evidence_identical(store.evidence(), _rebuild(example_relation, space))

    def test_remine_matches_batch_enumeration(self, example_relation):
        from repro.core.adc_enum import enumerate_adcs

        space = build_predicate_space(example_relation)
        initial, batches = _split_rows(example_relation, (10,))
        store = EvidenceStore(initial, space=space)
        for batch in batches:
            store.append(batch)
        incremental = store.remine(0.05)
        reference = enumerate_adcs(_rebuild(example_relation, space), epsilon=0.05)
        assert [adc.hitting_set_mask for adc in incremental] == [
            adc.hitting_set_mask for adc in reference
        ]
        assert [adc.violation_score for adc in incremental] == [
            adc.violation_score for adc in reference
        ]
        assert store.last_enumeration_statistics is not None
        assert store.last_enumeration_statistics.recursive_calls > 0


class TestAppendScheduleProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_rows=st.integers(min_value=2, max_value=14),
        seed=st.integers(min_value=0, max_value=10**6),
        n_string_columns=st.integers(min_value=0, max_value=2),
        n_numeric_columns=st.integers(min_value=1, max_value=2),
        tile_rows=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    def test_random_append_schedule_is_bit_identical(
        self, n_rows, seed, n_string_columns, n_numeric_columns, tile_rows, data
    ):
        relation = make_random_relation(
            n_rows=n_rows,
            n_string_columns=n_string_columns,
            n_numeric_columns=n_numeric_columns,
            seed=seed,
        )
        # A random strictly-increasing cut schedule: initial prefix (may be
        # empty appends in between) followed by arbitrary batch sizes.
        boundaries = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n_rows - 1),
                unique=True,
                max_size=4,
            ).map(sorted),
            label="boundaries",
        )
        space = build_predicate_space(relation)
        initial, batches = _split_rows(relation, boundaries)
        store = EvidenceStore(initial, space=space, tile_rows=tile_rows)
        for batch in batches:
            store.append(batch)
        assert_evidence_identical(store.evidence(), _rebuild(relation, space))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        first=st.integers(min_value=1, max_value=5),
        second=st.integers(min_value=1, max_value=5),
    )
    def test_single_row_trickle_matches_rebuild(self, seed, first, second):
        relation = make_random_relation(n_rows=first + second + 1, seed=seed)
        space = build_predicate_space(relation)
        initial, batches = _split_rows(relation, tuple(range(first, first + second + 1)))
        store = EvidenceStore(initial, space=space)
        for batch in batches:
            assert batch.n_rows == 1
            store.append(batch)
        assert_evidence_identical(store.evidence(), _rebuild(relation, space))


class TestDeltaBuilder:
    def test_delta_plus_seed_equals_full(self, example_relation):
        space = build_predicate_space(example_relation)
        builder = DeltaEvidenceBuilder(space, tile_rows=4)
        initial = example_relation.take(range(11))
        seed_partial = builder.full_partial(initial)

        grown = initial.copy()
        grown.append_rows(example_relation.take(range(11, 15)))
        delta = builder.delta_partial(grown, 11)
        merged = seed_partial.rebase_rows(grown.n_rows).merge(delta)
        assert_evidence_identical(
            merged.finalize(space), _rebuild(example_relation, space)
        )

    def test_invalid_worker_count(self, example_space):
        with pytest.raises(ValueError):
            DeltaEvidenceBuilder(example_space, n_workers=0)

    def test_pooled_tile_edge_splits_the_memory_budget(self, example_space):
        from repro.engine.parallel import parallel_tile_rows
        from repro.engine.scheduler import choose_tile_rows

        budget = 2**22
        serial = DeltaEvidenceBuilder(example_space, memory_budget_bytes=budget)
        pooled = DeltaEvidenceBuilder(
            example_space, n_workers=4, memory_budget_bytes=budget
        )
        n_words = serial.n_words
        assert serial.tile_edge(10_000) == choose_tile_rows(10_000, n_words, budget)
        assert pooled.tile_edge(10_000) == parallel_tile_rows(
            10_000, n_words, 4, budget
        )
        # n_workers concurrent kernels stay within the shared budget.
        assert pooled.tile_edge(10_000) <= choose_tile_rows(
            10_000, n_words, budget // 4
        )
