"""The cluster worker: a receive-execute-reply loop over one transport.

A worker is deliberately dumb and generic.  It receives a *context* object
once (the expensive payload — a prepared tile kernel and its schedule, or a
pickled evidence set for enumeration units), then answers ``task`` messages
by calling ``context.run(payload)`` and streaming each result straight
back.  Between tasks it answers heartbeat pings; a task failure is reported
as an ``error`` frame rather than killing the loop, so one poisoned shard
does not take the worker down with it.

Remote deployment is one command per machine::

    python -m repro.cluster.worker --connect host:port [--shm]

``--shm`` parks :class:`~repro.engine.partial.PartialEvidenceSet` results
in shared memory and returns only the handle (:mod:`repro.cluster.shm`) —
valid when the worker shares a machine with its coordinator.

Wire protocol (all frames are tuples, first element the kind):

=================  =============================  ==========================
coordinator sends  worker replies                 meaning
=================  =============================  ==========================
``("context", c)`` ``("ready",)``                 install work context ``c``
``("task", i, p)`` ``("result", i, r)`` or        run ``c.run(p)``
—                  ``("error", i, message)``
``("ping", n)``    ``("pong", n)``                heartbeat
``("shutdown",)``  —                              close and exit
=================  =============================  ==========================
"""

from __future__ import annotations

import argparse
import traceback

from repro.cluster.shm import discard_result, export_result
from repro.cluster.transport import (
    Transport,
    TransportClosed,
    connect_socket,
    parse_address,
)


def serve(transport: Transport, use_shm: bool = False) -> int:
    """Run the worker loop until shutdown or peer death; tasks completed."""
    context: object | None = None
    completed = 0
    while True:
        # A closed link — clean coordinator shutdown or its death — ends
        # the loop quietly wherever it surfaces, recv and send alike.
        try:
            message = transport.recv()
            kind = message[0]
            if kind == "context":
                context = message[1]
                transport.send(("ready",))
            elif kind == "task":
                _, task_id, payload = message
                try:
                    if context is None:
                        raise RuntimeError("no context installed before the first task")
                    result = export_result(context.run(payload), use_shm)
                except TransportClosed:
                    raise
                except Exception:
                    transport.send(("error", task_id, traceback.format_exc(limit=5)))
                    continue
                try:
                    transport.send(("result", task_id, result))
                except TransportClosed:
                    discard_result(result)  # nobody will ever attach it
                    raise
                except Exception:
                    # An unpicklable result never reached the wire (send
                    # pickles before writing), so the stream is clean:
                    # report the failure instead of crashing the loop.
                    discard_result(result)
                    transport.send(("error", task_id, traceback.format_exc(limit=5)))
                    continue
                completed += 1
            elif kind == "ping":
                transport.send(("pong", message[1]))
            elif kind == "shutdown":
                transport.close()
                return completed
            else:
                transport.send(("error", None, f"unknown message kind {kind!r}"))
        except TransportClosed:
            try:
                transport.close()  # announce EOF on our side too
            except Exception:
                pass
            return completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker", description=__doc__
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to connect to",
    )
    parser.add_argument(
        "--shm", action="store_true",
        help="return partial evidence sets as shared-memory handles "
             "(coordinator must be on this machine)",
    )
    parser.add_argument(
        "--send-timeout", type=float, default=60.0, metavar="SECONDS",
        help="give up on a send making no progress for this long — a "
             "frozen coordinator would otherwise hang the worker forever "
             "(0 disables the bound; default %(default)s)",
    )
    args = parser.parse_args(argv)
    host, port = parse_address(args.connect)
    send_timeout = args.send_timeout if args.send_timeout > 0 else None
    transport = connect_socket(host, port, send_timeout=send_timeout)
    serve(transport, use_shm=args.shm)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
