"""Plain-text rendering of experiment results.

The benchmark harness reproduces the paper's tables and figure series as
text; these helpers keep the formatting consistent across all benchmarks.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0])

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[position]) for line in rendered))
        for position, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, float]],
    x_label: str = "x",
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render named series (figure curves) as a text table.

    ``series`` maps a curve name to ``{x value: y value}``; the x values of
    all curves are merged and sorted to form the rows.
    """
    x_values: list[object] = sorted({x for curve in series.values() for x in curve})
    rows = []
    for x in x_values:
        row: dict[str, object] = {x_label: x}
        for name, curve in series.items():
            if x in curve:
                row[name] = curve[x]
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title, float_format=float_format)
