"""Evidence-set construction over packed 64-bit predicate words.

Four builders are provided, all producing the packed
``(n_evidences, n_words)`` uint64 representation natively (no Python-int
round-trip anywhere):

* :func:`build_evidence_set_tiled` — the default builder.  It runs the
  engine's picklable :class:`~repro.engine.kernel.TileKernel` serially over
  the :class:`~repro.engine.scheduler.TileScheduler`'s row-tile schedule,
  folding every tile's distinct evidences into a
  :class:`~repro.engine.partial.PartialEvidenceSet`.  Peak memory is
  ``O(n_words * tile_rows^2)`` instead of the dense builder's
  ``O(n_words * n^2)``; the tile edge is chosen adaptively from a memory
  budget when not given (:func:`repro.engine.scheduler.choose_tile_rows`).
* :func:`repro.engine.parallel.build_evidence_set_parallel`
  (``method="parallel"``) — the same kernel and schedule fanned out over a
  process pool; bit-identical to the tiled builder by construction.
* :func:`build_evidence_set_dense` — the original dense builder
  materialising full ``n x n`` category matrices and word planes.  Retained
  behind a flag as a correctness oracle and for benchmarking.
* :func:`build_evidence_set_pairwise` — the naive row-by-row builder of
  FASTDC/AFASTDC [11], kept both as a correctness oracle for tests and as
  the evidence-construction baseline timed in Figures 7 and 8.

All builders emit evidences in the canonical lexicographic word order of
:func:`repro.core.evidence.lexsort_word_rows`, so their outputs are
bit-identical (words, multiplicities, participation), not merely equal as
multisets.  :func:`build_evidence_set` dispatches between them by
``method`` and is what the pipeline entry points call.
"""

from __future__ import annotations

import numpy as np

from repro.core.evidence import (
    EvidenceSet,
    evidence_from_pair_masks,
    n_words_for,
    unique_word_rows,
)
from repro.core.predicate_space import PredicateSpace
from repro.data.relation import Relation
from repro.engine.kernel import prepare_groups
from repro.engine.parallel import build_evidence_set_parallel
from repro.engine.partial import split_participation
from repro.engine.scheduler import DEFAULT_MEMORY_BUDGET_BYTES

#: All evidence construction methods accepted by :func:`build_evidence_set`
#: (``"vectorized"`` is a legacy alias of ``"tiled"``).
EVIDENCE_METHODS = ("tiled", "vectorized", "parallel", "cluster", "dense", "pairwise")


def build_evidence_set(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
    method: str = "tiled",
    tile_rows: int | None = None,
    n_workers: int | None = None,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    cluster: object | None = None,
) -> EvidenceSet:
    """Build ``Evi(D)``, dispatching to the requested builder.

    Parameters
    ----------
    relation:
        The database ``D`` (or a sample of it).
    space:
        Predicate space produced by
        :func:`repro.core.predicate_space.build_predicate_space`.
    include_participation:
        Whether to also build the per-evidence tuple-participation structure
        (needed by the f2/f3 approximation functions; costs one extra pass).
    method:
        ``"tiled"`` (default), ``"parallel"`` (process-pool tile engine),
        ``"cluster"`` (the distributed fabric of :mod:`repro.cluster`;
        requires ``cluster=``), ``"dense"`` (the full-plane oracle) or
        ``"pairwise"`` (the naive AFASTDC-style oracle).  ``"vectorized"``
        is accepted as a legacy alias of ``"tiled"``.
    tile_rows:
        Tile edge length of the tiled/parallel/cluster builders; ``None``
        (default) selects it adaptively from the memory budget.
    n_workers:
        Worker processes of the parallel builder (``None`` uses all CPUs);
        ignored by the other methods.
    memory_budget_bytes:
        Transient-memory budget driving the adaptive tile size.
    cluster:
        A :class:`~repro.cluster.coordinator.ClusterCoordinator` or
        :class:`~repro.cluster.local.LocalCluster` carrying the workers of
        the ``"cluster"`` method; ignored by the other methods.
    """
    if method in ("tiled", "vectorized"):
        return build_evidence_set_tiled(
            relation,
            space,
            include_participation=include_participation,
            tile_rows=tile_rows,
            memory_budget_bytes=memory_budget_bytes,
        )
    if method == "parallel":
        return build_evidence_set_parallel(
            relation,
            space,
            include_participation=include_participation,
            tile_rows=tile_rows,
            n_workers=n_workers,
            memory_budget_bytes=memory_budget_bytes,
        )
    if method == "cluster":
        if cluster is None:
            raise ValueError(
                "method='cluster' needs a cluster= coordinator "
                "(e.g. repro.cluster.LocalCluster)"
            )
        # Imported lazily: repro.cluster pulls in the whole fabric (and, via
        # the enumeration context, this very module), which non-cluster
        # builds should neither pay for nor cycle through.
        from repro.cluster.build import build_evidence_set_cluster

        return build_evidence_set_cluster(
            relation,
            space,
            cluster,
            include_participation=include_participation,
            tile_rows=tile_rows,
            memory_budget_bytes=memory_budget_bytes,
        )
    if method == "dense":
        return build_evidence_set_dense(
            relation, space, include_participation=include_participation
        )
    if method == "pairwise":
        return build_evidence_set_pairwise(
            relation, space, include_participation=include_participation
        )
    raise ValueError(
        f"unknown evidence construction method {method!r}; "
        f"valid methods are {', '.join(EVIDENCE_METHODS)}"
    )


def build_evidence_set_tiled(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
    tile_rows: int | None = None,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EvidenceSet:
    """Build ``Evi(D)`` by streaming over row-tile pairs (the default).

    The ordered-pair matrix is processed in ``tile_rows x tile_rows``
    blocks (:class:`~repro.engine.scheduler.TileScheduler`); every block is
    evaluated by the engine's :class:`~repro.engine.kernel.TileKernel` with
    the same broadcasting as the dense builder restricted to the block's
    rows/columns, then folded into a running
    :class:`~repro.engine.partial.PartialEvidenceSet`, so no ``n x n``
    array is ever allocated.  When ``tile_rows`` is ``None`` the edge is
    chosen adaptively so one kernel fits ``memory_budget_bytes``.
    """
    return build_evidence_set_parallel(
        relation,
        space,
        include_participation=include_participation,
        tile_rows=tile_rows,
        n_workers=1,
        memory_budget_bytes=memory_budget_bytes,
    )


def build_evidence_set_dense(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
) -> EvidenceSet:
    """Build ``Evi(D)`` with full ``n x n`` word planes (the dense oracle).

    This is the original DCFinder-style strategy materialising one dense
    plane per 64-bit word.  It is kept behind the ``method="dense"`` flag as
    a correctness oracle for the tiled builder and for memory benchmarking;
    the tiled builder computes exactly the same planes tile by tile.
    """
    n = relation.n_rows
    if n < 2:
        return EvidenceSet(space, [], [], n, [] if include_participation else None)

    n_words = n_words_for(len(space))
    groups = prepare_groups(relation, space)
    plane = np.zeros((n, n, n_words), dtype=np.uint64)
    for group in groups:
        categories = group.tile_categories(0, n, 0, n)
        plane |= group.lookup[categories]

    off_diagonal = ~np.eye(n, dtype=bool)
    flat_words = plane[off_diagonal]
    unique_words, inverse, counts = unique_word_rows(flat_words)

    participation = None
    if include_participation:
        row_index, col_index = np.nonzero(off_diagonal)
        participation = _build_participation(inverse, row_index, col_index, len(unique_words))
    return EvidenceSet(
        space, counts=counts, n_rows=n, participation=participation, words=unique_words
    )


def build_evidence_set_pairwise(
    relation: Relation,
    space: PredicateSpace,
    include_participation: bool = True,
) -> EvidenceSet:
    """Build ``Evi(D)`` by evaluating every predicate on every ordered pair.

    This is the quadratic, per-pair strategy of AFASTDC [11]; it is orders of
    magnitude slower than the tiled builder but trivially correct, so it
    doubles as the reference implementation in the test suite.
    """
    n = relation.n_rows
    rows = [relation.row(i) for i in range(n)]
    pair_masks: list[int] = []
    pair_tuples: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            mask = 0
            for index, predicate in enumerate(space.predicates):
                if predicate.evaluate(rows[i], rows[j]):
                    mask |= 1 << index
            pair_masks.append(mask)
            pair_tuples.append((i, j))
    return evidence_from_pair_masks(
        space,
        pair_masks,
        n,
        pair_tuples if include_participation else None,
    )


def _build_participation(
    inverse: np.ndarray,
    row_index: np.ndarray,
    col_index: np.ndarray,
    n_evidences: int,
):
    """Aggregate the ``vios`` structure from the per-pair evidence ids."""
    n_rows = int(max(row_index.max(), col_index.max())) + 1 if len(row_index) else 0
    evidence_ids = inverse.astype(np.int64)
    keys = np.concatenate([
        evidence_ids * n_rows + row_index.astype(np.int64),
        evidence_ids * n_rows + col_index.astype(np.int64),
    ])
    unique_keys, key_counts = np.unique(keys, return_counts=True)
    return split_participation(unique_keys, key_counts, n_rows, n_evidences)
