"""Table 5 — approximate DCs vs the valid DCs found on the same dirty data."""

from conftest import report

from repro.experiments import table5_qualitative


def test_table5_approximate_vs_valid(benchmark, config):
    restricted = config.restricted(("tax", "stock", "food", "flight"))
    rows = benchmark.pedantic(table5_qualitative, args=(restricted,), iterations=1, rounds=1)
    report("Table 5: approximate DC (recovered golden rule) vs valid DC on dirty data", rows)
    assert rows, "expected at least one recovered golden DC"
