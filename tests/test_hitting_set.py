"""Tests for the MMCS minimal hitting set enumerator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hitting_set import (
    MMCS,
    brute_force_minimal_hitting_sets,
    is_hitting_set,
    minimal_hitting_sets,
)


class TestKnownInstances:
    def test_single_subset(self):
        assert set(minimal_hitting_sets([0b101], 3)) == {0b001, 0b100}

    def test_two_disjoint_subsets(self):
        results = set(minimal_hitting_sets([0b011, 0b100], 3))
        assert results == {0b101, 0b110}

    def test_empty_family_has_empty_hitting_set(self):
        assert minimal_hitting_sets([], 3) == [0]

    def test_unhittable_empty_subset(self):
        assert minimal_hitting_sets([0b0, 0b1], 2) == []

    def test_duplicated_subsets(self):
        assert set(minimal_hitting_sets([0b11, 0b11], 2)) == {0b01, 0b10}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        n_elements = rng.randint(3, 7)
        subsets = [
            rng.randint(1, (1 << n_elements) - 1) for _ in range(rng.randint(1, 8))
        ]
        expected = set(brute_force_minimal_hitting_sets(subsets, n_elements))
        actual = minimal_hitting_sets(subsets, n_elements)
        assert set(actual) == expected
        assert len(actual) == len(set(actual)), "each hitting set must be produced once"

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=63), min_size=1, max_size=6),
    )
    def test_property_minimal_and_complete(self, subsets):
        n_elements = 6
        results = minimal_hitting_sets(subsets, n_elements)
        expected = set(brute_force_minimal_hitting_sets(subsets, n_elements))
        assert set(results) == expected
        for mask in results:
            assert is_hitting_set(mask, subsets)
            for bit in range(n_elements):
                if mask & (1 << bit):
                    assert not is_hitting_set(mask & ~(1 << bit), subsets)


class TestStatistics:
    def test_statistics_populated(self):
        enumerator = MMCS([0b011, 0b110], 3)
        results = enumerator.enumerate()
        assert enumerator.statistics.outputs == len(results)
        assert enumerator.statistics.recursive_calls >= len(results)
