"""Conflict graphs and cardinality repairs.

The third approximation measure of the paper (f3) is the relative size of a
*cardinality repair* — the largest sub-instance satisfying the DC — which is
the complement of a minimum vertex cover of the *conflict graph* whose
vertices are tuples and whose edges are violating pairs (Section 5).

Computing it exactly is NP-hard for DCs, so the paper's miner uses the greedy
algorithm of Figure 2 (implemented as
:class:`repro.core.approximation.F3Greedy`).  This module provides the graph
machinery needed to reason about f3 outside the miner:

* building the conflict graph of a DC on a relation;
* an exact minimum vertex cover (small inputs only, for tests);
* the classic 2-approximation via maximal matching;
* the greedy ``O(log n)``-approximation the paper's Figure 2 is inspired by;
* exact and approximate values of ``1 - f3``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.core.dc import DenialConstraint
from repro.data.relation import Relation


@dataclass(frozen=True)
class ConflictGraph:
    """Violations of one DC on one relation, as a graph over tuple indices."""

    n_tuples: int
    edges: frozenset[tuple[int, int]]

    @classmethod
    def from_pairs(
        cls, n_tuples: int, pairs: Iterable[tuple[int, int]]
    ) -> "ConflictGraph":
        """Build a conflict graph from externally computed violating pairs.

        This is how the incremental serving layer
        (:class:`~repro.incremental.serve.ViolationService`) hands its
        tile-replayed violation pairs to the repair machinery without going
        through the quadratic per-pair re-evaluation of
        :func:`build_conflict_graph`.
        """
        return cls(int(n_tuples), frozenset((int(u), int(v)) for u, v in pairs))

    @property
    def n_violations(self) -> int:
        """Number of ordered violating pairs."""
        return len(self.edges)

    @property
    def violating_tuples(self) -> set[int]:
        """Tuples involved in at least one violation."""
        involved: set[int] = set()
        for u, v in self.edges:
            involved.add(u)
            involved.add(v)
        return involved

    def undirected(self) -> nx.Graph:
        """Undirected view (vertex covers do not care about edge direction)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_tuples))
        graph.add_edges_from({tuple(sorted(edge)) for edge in self.edges})
        return graph

    def violation_fraction(self) -> float:
        """``1 - f1``: violating pairs over all ordered distinct pairs."""
        total = self.n_tuples * (self.n_tuples - 1)
        return len(self.edges) / total if total else 0.0

    def problematic_tuple_fraction(self) -> float:
        """``1 - f2``: fraction of tuples involved in some violation."""
        return len(self.violating_tuples) / self.n_tuples if self.n_tuples else 0.0


def build_conflict_graph(relation: Relation, constraint: DenialConstraint) -> ConflictGraph:
    """Build the conflict graph of ``constraint`` on ``relation``."""
    edges = frozenset(constraint.violating_pairs(relation))
    return ConflictGraph(relation.n_rows, edges)


# ----------------------------------------------------------------------
# Vertex covers
# ----------------------------------------------------------------------
def minimum_vertex_cover_exact(graph: ConflictGraph, max_tuples: int = 24) -> set[int]:
    """Exact minimum vertex cover of the violating subgraph.

    The search is restricted to the tuples that actually appear in a
    violation, and is exponential in their number, so it refuses inputs with
    more than ``max_tuples`` such tuples.  Intended for tests and the small
    qualitative analyses.
    """
    involved = sorted(graph.violating_tuples)
    if len(involved) > max_tuples:
        raise ValueError(
            f"exact vertex cover limited to {max_tuples} conflicting tuples, "
            f"got {len(involved)}"
        )
    undirected_edges = {tuple(sorted(edge)) for edge in graph.edges}
    for size in range(len(involved) + 1):
        for subset in itertools.combinations(involved, size):
            chosen = set(subset)
            if all(u in chosen or v in chosen for u, v in undirected_edges):
                return chosen
    return set(involved)


def vertex_cover_2_approximation(graph: ConflictGraph) -> set[int]:
    """2-approximate vertex cover via a maximal matching (Bar-Yehuda & Even)."""
    cover: set[int] = set()
    for u, v in sorted({tuple(sorted(edge)) for edge in graph.edges}):
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def vertex_cover_greedy(graph: ConflictGraph) -> set[int]:
    """Greedy log-n cover: repeatedly remove the highest-degree vertex.

    This is the explicit-graph algorithm the Figure 2 greedy is inspired by.
    """
    undirected = graph.undirected()
    undirected.remove_nodes_from([node for node in list(undirected) if undirected.degree(node) == 0])
    cover: set[int] = set()
    while undirected.number_of_edges() > 0:
        node = max(undirected.degree, key=lambda pair: pair[1])[0]
        cover.add(node)
        undirected.remove_node(node)
    return cover


def rank_tuples_by_violations(scores: "Sequence[int] | np.ndarray") -> list[int]:
    """Rank tuple indices by violation score, worst offender first.

    ``scores[t]`` is the number of violating pairs tuple ``t`` participates
    in — the ``v(t)`` vector of the paper's ``SortTuples`` (Figure 2), which
    the greedy cardinality-repair heuristics peel from the top.  Ties break
    on the lower tuple index so the ranking is deterministic; tuples with a
    zero score are omitted (they need no repair).
    """
    array = np.asarray(scores, dtype=np.int64)
    involved = np.flatnonzero(array > 0)
    order = involved[np.argsort(-array[involved], kind="stable")]
    return order.tolist()


# ----------------------------------------------------------------------
# f3 values
# ----------------------------------------------------------------------
def exact_f3_violation(relation: Relation, constraint: DenialConstraint, max_tuples: int = 24) -> float:
    """Exact ``1 - f3``: minimum fraction of tuples to delete to satisfy the DC."""
    graph = build_conflict_graph(relation, constraint)
    cover = minimum_vertex_cover_exact(graph, max_tuples=max_tuples)
    return len(cover) / relation.n_rows if relation.n_rows else 0.0


def approximate_f3_violation(relation: Relation, constraint: DenialConstraint) -> float:
    """2-approximate ``1 - f3`` via maximal matching."""
    graph = build_conflict_graph(relation, constraint)
    cover = vertex_cover_2_approximation(graph)
    return len(cover) / relation.n_rows if relation.n_rows else 0.0


def cardinality_repair(relation: Relation, constraint: DenialConstraint, max_tuples: int = 24) -> Relation:
    """A maximum sub-instance of ``relation`` satisfying ``constraint``.

    The deleted tuples form an exact minimum vertex cover of the conflict
    graph; the result realises the ``D'`` of the f3 definition.
    """
    graph = build_conflict_graph(relation, constraint)
    cover = minimum_vertex_cover_exact(graph, max_tuples=max_tuples)
    keep = [index for index in range(relation.n_rows) if index not in cover]
    return relation.take(keep)
