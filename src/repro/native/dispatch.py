"""Feature-detected kernel dispatch.

Resolution happens once, lazily, at first use, honouring ``REPRO_NATIVE``:

====================  =====================================================
``REPRO_NATIVE``      behaviour
====================  =====================================================
unset (auto)          C extension if it compiles *and* passes the probe,
                      else numba if importable, else pure numpy — never
                      raises.
``0`` / ``numpy``     pure numpy, unconditionally.
``1``                 require *some* compiled backend (C extension or
                      numba); :class:`RuntimeError` if neither works.
``cext``              require the C extension specifically.
``numba``             require numba specifically (clean error when the
                      package is not installed).
====================  =====================================================

A compiled backend is only trusted after a **probe**: every flat kernel and
the search-workspace operations are run on small deterministic inputs and
compared bit for bit against the numpy reference.  A backend that throws or
mismatches is rejected — under auto resolution that silently falls back to
numpy; under an explicit request it raises, because a silently-different
compiled kernel is precisely the failure mode the probe exists to catch.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.native import numpy_backend
from repro.native.numpy_backend import NumpyKernels, NumpySearchWorkspace

_ENV_VAR = "REPRO_NATIVE"


@dataclass(frozen=True)
class Backend:
    """One resolved kernel provider.

    ``kernels`` carries the flat kernels (popcount, intersection counts,
    criticality apply/undo, tile pass); ``workspace_factory`` builds the
    explicit-stack search arena (``None`` means the shared numpy arena).
    ``native_search`` tells benchmarks whether the search arena itself is
    compiled, as opposed to only the flat kernels.
    """

    name: str
    kernels: object
    workspace_factory: Callable[..., NumpySearchWorkspace] | None = None
    native_search: bool = False

    def make_search_workspace(self, *args, **kwargs) -> NumpySearchWorkspace:
        if self.workspace_factory is None:
            return NumpySearchWorkspace(*args, **kwargs)
        return self.workspace_factory(*args, **kwargs)


NUMPY_BACKEND = Backend(name=numpy_backend.NAME, kernels=NumpyKernels())


# ---------------------------------------------------------------------------
# Probe: compiled kernels must reproduce the numpy reference bit for bit
# ---------------------------------------------------------------------------
def _probe_flat_kernels(kernels) -> None:
    rng = np.random.default_rng(7)
    reference = NumpyKernels()

    words = rng.integers(0, 2**64, size=37, dtype=np.uint64)
    if not np.array_equal(kernels.popcount(words), reference.popcount(words)):
        raise AssertionError("popcount mismatch")

    ev = rng.integers(0, 2**64, size=(3, 29), dtype=np.uint64)
    mask = rng.integers(0, 2**64, size=3, dtype=np.uint64)
    theirs = np.asarray(kernels.intersection_counts(ev, mask), dtype=np.int64)
    ours = np.asarray(reference.intersection_counts(ev, mask), dtype=np.int64)
    if not np.array_equal(theirs, ours):
        raise AssertionError("intersection_counts mismatch")

    for depth in (0, 1, 4):
        rows_a = rng.integers(1, 2**64, size=(depth + 1, 2), dtype=np.uint64)
        rows_b = rows_a.copy()
        new_row = rng.integers(0, 2**64, size=2, dtype=np.uint64)
        covers = rng.integers(0, 2**64, size=2, dtype=np.uint64)
        viable_a, removed_a = kernels.crit_apply(rows_a, depth, new_row, covers)
        viable_b, removed_b = reference.crit_apply(rows_b, depth, new_row, covers)
        if viable_a != viable_b or not np.array_equal(rows_a, rows_b):
            raise AssertionError("crit_apply mismatch")
        kernels.crit_undo(rows_a, depth, removed_a)
        reference.crit_undo(rows_b, depth, removed_b)
        if not np.array_equal(rows_a, rows_b):
            raise AssertionError("crit_undo mismatch")

    kinds = np.array([0, 1, 2], dtype=np.int32)
    n_rows, n_words = 6, 2
    a = np.zeros((3, n_rows), dtype=np.float64)
    b = np.zeros((3, n_rows), dtype=np.float64)
    a[0] = rng.integers(0, 3, size=n_rows)
    a[1] = rng.integers(-2, 3, size=n_rows)
    b[1] = rng.integers(-2, 3, size=n_rows)
    a[2] = rng.integers(0, 3, size=n_rows)
    b[2] = rng.integers(0, 3, size=n_rows)
    lookup = rng.integers(0, 2**64, size=(3, 3, n_words), dtype=np.uint64)
    theirs = kernels.tile_plane(kinds, a, b, lookup, 1, 5, 0, 6, n_words)
    ours = NumpyKernels.tile_plane(kinds, a, b, lookup, 1, 5, 0, 6, n_words)
    if not np.array_equal(theirs, ours):
        raise AssertionError("tile_plane mismatch")

    # Small value range so the probe input is guaranteed to hold duplicates.
    rows = rng.integers(0, 3, size=(41, 2)).astype(np.uint64)
    for theirs, ours in zip(kernels.unique_rows(rows), NumpyKernels.unique_rows(rows)):
        if not np.array_equal(theirs, ours):
            raise AssertionError("unique_rows mismatch")


def _probe_workspace(factory: Callable[..., NumpySearchWorkspace]) -> None:
    """Drive a candidate search arena and the numpy arena in lockstep.

    A small deterministic evidence space is walked through every workspace
    operation (expand, skip-child, hit-prepare, each try-hit outcome,
    criticality pop); any scalar or state divergence rejects the backend.
    """
    rng = np.random.default_rng(11)
    n_predicates, n_evidences = 9, 7
    n_words = 1
    n_ev_words = 1
    ev_planes = rng.integers(1, 1 << n_predicates, size=(n_words, n_evidences), dtype=np.uint64)
    counts = rng.integers(1, 5, size=n_evidences, dtype=np.int64)
    membership = (
        (ev_planes[0][None, :] >> np.arange(n_predicates, dtype=np.uint64)[:, None])
        & np.uint64(1)
    ).astype(bool)
    contains = np.zeros((n_predicates, n_ev_words), dtype=np.uint64)
    for p in range(n_predicates):
        word = 0
        for e in range(n_evidences):
            if membership[p, e]:
                word |= 1 << e
        contains[p, 0] = word
    group_inv = np.full((n_predicates, n_words), np.uint64(2**64 - 1), dtype=np.uint64)
    for p in range(n_predicates):
        group_inv[p, 0] ^= np.uint64(1) << np.uint64(p)
    full_cand = np.array([(1 << n_predicates) - 1], dtype=np.uint64)

    build = dict(
        counts=counts, contains_ev_words=contains, group_words_inv=group_inv,
        full_cand_words=full_cand, n_evidences=n_evidences,
        n_predicates=n_predicates,
    )
    for track_uncov in (False, True):
        candidate = factory(ev_planes=ev_planes, track_uncov=track_uncov, **build)
        reference = NumpySearchWorkspace(
            ev_planes=ev_planes, track_uncov=track_uncov, **build
        )
        for ws in (candidate, reference):
            if ws.init_root() != n_evidences:
                raise AssertionError("workspace init_root mismatch")
        for selection in (0, 1, 2):
            got = candidate.expand(0, n_evidences, selection, 3)
            want = reference.expand(0, n_evidences, selection, 3)
            if got != want:
                raise AssertionError("workspace expand mismatch")
        chosen, _, _, k = want
        for compact in (True, False):
            if candidate.skip_child(0, n_evidences, compact) != reference.skip_child(
                0, n_evidences, compact
            ):
                raise AssertionError("workspace skip_child mismatch")
        if candidate.hit_prepare(0, n_evidences, k) != reference.hit_prepare(
            0, n_evidences, k
        ) or candidate.elements_list(0, k) != reference.elements_list(0, k):
            raise AssertionError("workspace hit_prepare mismatch")
        for position in range(k):
            descend = position % 2 == 0
            got = candidate.try_hit(0, n_evidences, position, descend)
            want = reference.try_hit(0, n_evidences, position, descend)
            if got != want:
                raise AssertionError("workspace try_hit mismatch")
            status, _, m, _ = want
            if status == numpy_backend.DESCENDED:
                if not np.array_equal(
                    candidate.cin_view(1, m), reference.cin_view(1, m)
                ) or not np.array_equal(
                    candidate.uncov_bits_view(1), reference.uncov_bits_view(1)
                ):
                    raise AssertionError("workspace child state mismatch")
                candidate.crit_pop()
                reference.crit_pop()
        if not np.array_equal(
            candidate.crit_active_rows(), reference.crit_active_rows()
        ):
            raise AssertionError("workspace criticality mismatch")


# ---------------------------------------------------------------------------
# Backend construction
# ---------------------------------------------------------------------------
def _build_cext_backend() -> Backend:
    from repro.native import cext
    from repro.native.build import build_library

    library = build_library()
    if library is None:
        raise RuntimeError("no C compiler available (or compilation failed)")
    functions = cext.load_functions(library)
    kernels = cext.CKernels(functions)
    _probe_flat_kernels(kernels)

    def factory(*args, **kwargs):
        return cext.CextSearchWorkspace(functions, *args, **kwargs)

    _probe_workspace(factory)
    return Backend(
        name=cext.NAME, kernels=kernels, workspace_factory=factory,
        native_search=True,
    )


def _build_numba_backend() -> Backend:
    from repro.native import numba_backend

    kernels = numba_backend.NumbaKernels()
    _probe_flat_kernels(kernels)
    return Backend(name=numba_backend.NAME, kernels=kernels)


_BUILDERS: dict[str, Callable[[], Backend]] = {
    "cext": _build_cext_backend,
    "numba": _build_numba_backend,
}


def resolve_backend(name: str) -> Backend:
    """Build and probe one backend by name; raises when unavailable."""
    if name in ("numpy", "0"):
        return NUMPY_BACKEND
    if name in _BUILDERS:
        try:
            return _BUILDERS[name]()
        except Exception as error:
            raise RuntimeError(
                f"REPRO_NATIVE requested the {name!r} backend, but it is "
                f"unavailable: {error}"
            ) from error
    raise RuntimeError(f"unknown REPRO_NATIVE backend {name!r}")


def _resolve() -> Backend:
    mode = os.environ.get(_ENV_VAR, "").strip().lower()
    if mode in ("0", "numpy"):
        return NUMPY_BACKEND
    if mode in ("cext", "numba"):
        return resolve_backend(mode)
    if mode == "1":
        errors = []
        for name in ("cext", "numba"):
            try:
                return _BUILDERS[name]()
            except Exception as error:
                errors.append(f"{name}: {error}")
        raise RuntimeError(
            "REPRO_NATIVE=1 requires a compiled backend, but none is "
            "available — " + "; ".join(errors)
        )
    if mode not in ("", "auto"):
        raise RuntimeError(f"unknown {_ENV_VAR} value {mode!r}")
    for name in ("cext", "numba"):
        try:
            return _BUILDERS[name]()
        except Exception:
            continue
    return NUMPY_BACKEND


_active: Backend | None = None


def get_backend() -> Backend:
    """The process-wide resolved backend (resolved lazily, then cached)."""
    global _active
    if _active is None:
        _active = _resolve()
    return _active


def set_backend(backend: Backend | str | None) -> None:
    """Override the active backend (``None`` re-resolves lazily)."""
    global _active
    if isinstance(backend, str):
        backend = resolve_backend(backend)
    _active = backend


@contextlib.contextmanager
def use_backend(backend: Backend | str | None) -> Iterator[Backend]:
    """Temporarily swap the active backend (tests and benchmarks)."""
    previous = _active
    set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)
