"""Parallel evidence engine.

The engine decomposes evidence construction (the dominant phase of the
pipeline, per the paper's Figure 8 decomposition) into independent,
shardable tile work units:

* :mod:`repro.engine.scheduler` — :class:`TileScheduler` partitions the
  ordered-pair matrix into row tiles, balances contiguous tile ranges into
  shards (:meth:`TileScheduler.shards`), and picks an adaptive tile edge
  from a memory budget (:func:`choose_tile_rows`).
* :mod:`repro.engine.kernel` — :class:`TileKernel`, the picklable per-tile
  evidence kernel: all comparison data is resolved once up front so worker
  processes receive a compact numpy-only payload instead of the relation
  and predicate space.
* :mod:`repro.engine.partial` — :class:`PartialEvidenceSet`, an
  accumulator of per-tile results whose :meth:`~PartialEvidenceSet.merge`
  is associative and commutative, so partials can be combined in any order
  (process pool now, cross-machine shards later).
* :mod:`repro.engine.parallel` — :func:`build_evidence_set_parallel`, the
  :class:`concurrent.futures.ProcessPoolExecutor` driver exposed as
  ``method="parallel"`` of :func:`repro.core.evidence_builder.build_evidence_set`.

The serial tiled builder runs the exact same kernel over the exact same
schedule, so ``parallel`` and ``tiled`` results are bit-identical.
"""

from repro.engine.scheduler import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    Shard,
    Tile,
    TileScheduler,
    choose_tile_rows,
    shard_tiles,
)
from repro.engine.kernel import TileKernel, TilePartial, prepare_groups
from repro.engine.partial import (
    PartialEvidenceSet,
    participation_from_key_chunks,
    split_participation,
)
from repro.engine.parallel import (
    build_evidence_set_parallel,
    fold_tiles,
    fold_tiles_pooled,
)

__all__ = [
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "Tile",
    "Shard",
    "TileScheduler",
    "choose_tile_rows",
    "shard_tiles",
    "TileKernel",
    "TilePartial",
    "prepare_groups",
    "PartialEvidenceSet",
    "participation_from_key_chunks",
    "split_participation",
    "build_evidence_set_parallel",
    "fold_tiles",
    "fold_tiles_pooled",
]
