"""Tests of the violation-serving layer against the semantic DC oracles.

Every query of :class:`~repro.incremental.serve.ViolationService` has a
slow, trivially-correct counterpart on :class:`DenialConstraint` (per-pair
re-evaluation): violation counts, violating pairs, per-tuple scores, and
the per-row admission rates of ``check_batch`` are all cross-checked
against it on the running example and random relations.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_relation
from repro.core.dc import DenialConstraint
from repro.core.predicate_space import build_predicate_space
from repro.core.repair import build_conflict_graph, vertex_cover_greedy
from repro.incremental import EvidenceStore, ViolationService
from repro.serve import AppendScheduler, ViolationCounters


@pytest.fixture(scope="module")
def served():
    """Store + service over the running example with its mined ADCs."""
    from repro.data.relation import running_example

    relation = running_example()
    store = EvidenceStore(relation)
    adcs = store.remine(0.05)
    service = ViolationService(store, adcs[:6], epsilon=0.05)
    return relation, store, adcs[:6], service


class TestViolationCounts:
    def test_counts_match_the_pairwise_oracle(self, served):
        relation, _, adcs, service = served
        for index, adc in enumerate(adcs):
            report = service.violations(index)
            assert report.count == adc.constraint.violation_count(relation)
            assert report.total_pairs == relation.n_rows * (relation.n_rows - 1)

    def test_rate_is_count_over_total(self, served):
        _, _, _, service = served
        report = service.violations(0)
        assert report.rate == report.count / report.total_pairs
        assert report.exceeds(report.rate - 1e-12) or report.count == 0
        assert not report.exceeds(1.0)

    def test_resolution_by_constraint_object(self, served):
        relation, _, adcs, service = served
        by_index = service.violations(0)
        by_adc = service.violations(adcs[0])
        by_dc = service.violations(adcs[0].constraint)
        assert by_index.count == by_adc.count == by_dc.count

    def test_unknown_constraint_raises(self, served):
        _, _, _, service = served
        with pytest.raises(KeyError):
            service.violations(DenialConstraint([]))
        with pytest.raises(IndexError):
            service.violations(99)

    def test_report_and_exceeded(self, served):
        _, _, adcs, service = served
        report = service.report()
        assert len(report) == len(adcs)
        # ADCs were mined at epsilon=0.05, so none of them exceeds it.
        assert service.exceeded() == []


class TestPairReplay:
    def test_replayed_pairs_match_the_oracle(self, served):
        relation, _, adcs, service = served
        for index, adc in enumerate(adcs):
            replayed = sorted(service.violating_pairs(index))
            assert replayed == sorted(adc.constraint.violating_pairs(relation))

    def test_replay_count_consistent_with_violations(self, served):
        _, _, adcs, service = served
        for index in range(len(adcs)):
            pairs = list(service.violating_pairs(index))
            assert len(pairs) == service.violations(index).count

    def test_conflict_graph_matches_built_graph(self, served):
        relation, _, adcs, service = served
        graph = service.conflict_graph(0)
        oracle = build_conflict_graph(relation, adcs[0].constraint)
        assert graph.n_tuples == oracle.n_tuples
        assert graph.edges == oracle.edges
        # The replayed graph plugs into the existing repair machinery.
        assert vertex_cover_greedy(graph) == vertex_cover_greedy(oracle)

    def test_replay_tracks_appends(self, served):
        """Queries run against the store's current state, not a snapshot."""
        relation, _, adcs, _ = served
        initial = relation.take(range(12))
        store = EvidenceStore(initial, space=build_predicate_space(relation))
        service = ViolationService(store, adcs)
        before = service.violations(0).count
        assert before == adcs[0].constraint.violation_count(initial)
        store.append(relation.take(range(12, 15)))
        assert service.violations(0).count == adcs[0].constraint.violation_count(relation)


class TestTupleScores:
    def test_scores_match_per_tuple_pair_counts(self, served):
        relation, _, adcs, service = served
        for index, adc in enumerate(adcs):
            scores = service.tuple_scores(index)
            expected = np.zeros(relation.n_rows, dtype=np.int64)
            for left, right in adc.constraint.violating_pairs(relation):
                expected[left] += 1
                expected[right] += 1
            assert np.array_equal(scores, expected)

    def test_repair_ranking_is_sorted_by_score(self, served):
        _, _, adcs, service = served
        for index in range(len(adcs)):
            scores = service.tuple_scores(index)
            ranking = service.repair_ranking(index)
            assert set(ranking) == set(np.flatnonzero(scores > 0).tolist())
            ranked_scores = [int(scores[t]) for t in ranking]
            assert ranked_scores == sorted(ranked_scores, reverse=True)


class TestBatchAdmission:
    def _oracle_rate(self, relation, constraint, row):
        """Violation rate after hypothetically appending exactly ``row``."""
        probe = relation.copy()
        probe.append_rows([row])
        count = constraint.violation_count(probe)
        total = probe.n_rows * (probe.n_rows - 1)
        return count / total

    def test_rates_match_the_single_row_oracle(self, served):
        relation, _, adcs, service = served
        batch = [relation.row(0), relation.row(7), relation.row(14)]
        admissions = service.check_batch(batch)
        assert [entry.row_index for entry in admissions] == [0, 1, 2]
        for entry, row in zip(admissions, batch):
            for dc_index, adc in enumerate(adcs):
                expected = self._oracle_rate(relation, adc.constraint, row)
                assert entry.rates[dc_index] == pytest.approx(expected)

    def test_admissible_iff_every_rate_within_epsilon(self, served):
        relation, _, _, service = served
        admissions = service.check_batch([relation.row(i) for i in range(4)])
        for entry in admissions:
            assert entry.admissible == all(
                rate <= service.epsilon for rate in entry.rates
            )
            assert entry.worst_rate == max(entry.rates)

    def test_batch_verdicts_are_order_independent(self, served):
        relation, _, _, service = served
        batch = [relation.row(3), relation.row(9)]
        forward = service.check_batch(batch)
        backward = service.check_batch(list(reversed(batch)))
        assert forward[0].rates == backward[1].rates
        assert forward[1].rates == backward[0].rates

    def test_empty_batch(self, served):
        _, _, _, service = served
        assert service.check_batch([]) == []

    def test_check_batch_leaves_the_store_untouched(self, served):
        relation, store, _, service = served
        rows_before = store.n_rows
        generation = store.generation
        service.check_batch([relation.row(0)])
        assert store.n_rows == rows_before
        assert store.generation == generation


class TestConcurrentInterleavingProperty:
    """Any concurrent append+read interleaving is exactly consistent.

    Hypothesis drives a random schedule of concurrent appends and counter
    reads through a real :class:`AppendScheduler` +
    :class:`ViolationCounters` pair (the serving layer's write and read
    paths).  Appends coalesce nondeterministically depending on event-loop
    timing, but because the relation is append-only, every counter
    snapshot claims to describe some prefix of the final relation — so
    each one must be bit-identical to a from-scratch
    :class:`ViolationService` rebuild of that prefix, and the final
    counters to a rebuild of the final relation.
    """

    @staticmethod
    def _rebuild_counts(relation, n_rows, space, adcs):
        """Serial oracle: fresh store + service on the first ``n_rows``."""
        store = EvidenceStore(relation.take(range(n_rows)), space=space)
        service = ViolationService(store, adcs)
        return [service.violations(i).count for i in range(len(adcs))]

    @settings(max_examples=12, deadline=None)
    @given(
        schedule=st.lists(
            st.one_of(
                st.just(("read",)),
                st.lists(
                    st.integers(min_value=0, max_value=14),
                    min_size=1,
                    max_size=3,
                ).map(lambda indices: ("append", tuple(indices))),
            ),
            min_size=1,
            max_size=8,
        ),
        flush_window=st.sampled_from([0.0, 0.004]),
    )
    def test_any_interleaving_matches_serial_rebuild(
        self, served, schedule, flush_window
    ):
        relation, _, adcs, _ = served
        space = build_predicate_space(relation)

        async def drive():
            store = EvidenceStore(relation.take(range(8)), space=space)
            service = ViolationService(store, adcs)
            counters = ViolationCounters(service.hitting_words, store)
            snapshots = [counters.snapshot()]
            with ThreadPoolExecutor(2) as executor:
                scheduler = AppendScheduler(
                    store, asyncio.Lock(), executor, flush_window=flush_window
                )
                tasks = []
                for op in schedule:
                    if op[0] == "append":
                        rows = [relation.row(i) for i in op[1]]
                        tasks.append(asyncio.create_task(scheduler.append(rows)))
                    else:
                        snapshots.append(counters.snapshot())
                        # Yield so pending appends can actually interleave
                        # with (and race) subsequent reads.
                        await asyncio.sleep(0)
                if tasks:
                    await asyncio.gather(*tasks)
                await scheduler.drain()
            snapshots.append(counters.snapshot())
            return store, snapshots

        store, snapshots = asyncio.run(drive())
        final = store.relation
        appended = sum(len(op[1]) for op in schedule if op[0] == "append")
        assert final.n_rows == 8 + appended
        assert snapshots[-1].n_rows == final.n_rows
        oracle_cache: dict[int, list[int]] = {}
        for snapshot in snapshots:
            if snapshot.n_rows not in oracle_cache:
                oracle_cache[snapshot.n_rows] = self._rebuild_counts(
                    final, snapshot.n_rows, space, adcs
                )
            assert list(snapshot.counts) == oracle_cache[snapshot.n_rows]


class TestRandomRelations:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_service_against_oracles_on_random_data(self, seed):
        relation = make_random_relation(n_rows=9, seed=seed)
        store = EvidenceStore(relation)
        adcs = store.remine(0.1)[:4]
        if not adcs:
            pytest.skip("no ADCs mined at this epsilon")
        service = ViolationService(store, adcs, epsilon=0.1)
        for index, adc in enumerate(adcs):
            assert service.violations(index).count == adc.constraint.violation_count(relation)
            assert sorted(service.violating_pairs(index)) == sorted(
                adc.constraint.violating_pairs(relation)
            )
