"""Tests for conflict graphs, vertex covers and cardinality repairs."""

from __future__ import annotations

import pytest

from repro.core.dc import DenialConstraint
from repro.core.operators import Operator
from repro.core.predicates import same_column_predicate
from repro.core.repair import (
    approximate_f3_violation,
    build_conflict_graph,
    cardinality_repair,
    exact_f3_violation,
    minimum_vertex_cover_exact,
    vertex_cover_2_approximation,
    vertex_cover_greedy,
)


@pytest.fixture(scope="module")
def income_tax_rule() -> DenialConstraint:
    return DenialConstraint([
        same_column_predicate("State", Operator.EQ),
        same_column_predicate("Income", Operator.GT),
        same_column_predicate("Tax", Operator.LE),
    ])


@pytest.fixture(scope="module")
def zip_state_rule() -> DenialConstraint:
    return DenialConstraint([
        same_column_predicate("Zip", Operator.EQ),
        same_column_predicate("State", Operator.NE),
    ])


class TestConflictGraph:
    def test_graph_of_income_tax_rule(self, example_relation, income_tax_rule):
        graph = build_conflict_graph(example_relation, income_tax_rule)
        assert graph.n_violations == 2
        assert graph.violating_tuples == {5, 6, 13, 14}
        assert graph.violation_fraction() == pytest.approx(2 / 210)

    def test_graph_of_zip_state_rule(self, example_relation, zip_state_rule):
        graph = build_conflict_graph(example_relation, zip_state_rule)
        assert graph.n_violations == 16
        assert graph.problematic_tuple_fraction() == pytest.approx(9 / 15)

    def test_undirected_view(self, example_relation, zip_state_rule):
        graph = build_conflict_graph(example_relation, zip_state_rule)
        undirected = graph.undirected()
        assert undirected.number_of_edges() == 8


class TestVertexCovers:
    def test_exact_cover_sizes_match_example_1_2(self, example_relation, income_tax_rule, zip_state_rule):
        assert exact_f3_violation(example_relation, income_tax_rule) == pytest.approx(2 / 15)
        assert exact_f3_violation(example_relation, zip_state_rule) == pytest.approx(1 / 15)

    def test_two_approximation_within_factor(self, example_relation, zip_state_rule):
        exact = exact_f3_violation(example_relation, zip_state_rule)
        approx = approximate_f3_violation(example_relation, zip_state_rule)
        assert exact <= approx <= 2 * exact + 1e-9

    def test_greedy_cover_covers_all_edges(self, example_relation, zip_state_rule):
        graph = build_conflict_graph(example_relation, zip_state_rule)
        cover = vertex_cover_greedy(graph)
        for u, v in graph.edges:
            assert u in cover or v in cover

    def test_two_approx_cover_covers_all_edges(self, example_relation, income_tax_rule):
        graph = build_conflict_graph(example_relation, income_tax_rule)
        cover = vertex_cover_2_approximation(graph)
        for u, v in graph.edges:
            assert u in cover or v in cover

    def test_exact_cover_rejects_large_inputs(self, example_relation, zip_state_rule):
        graph = build_conflict_graph(example_relation, zip_state_rule)
        with pytest.raises(ValueError):
            minimum_vertex_cover_exact(graph, max_tuples=2)


class TestCardinalityRepair:
    def test_repair_satisfies_constraint(self, example_relation, zip_state_rule):
        repaired = cardinality_repair(example_relation, zip_state_rule)
        assert zip_state_rule.is_satisfied(repaired)
        assert repaired.n_rows == example_relation.n_rows - 1

    def test_repair_of_satisfied_constraint_is_identity(self, example_relation):
        tax_key = DenialConstraint([
            same_column_predicate("Tax", Operator.EQ),
            same_column_predicate("State", Operator.NE),
        ])
        repaired = cardinality_repair(example_relation, tax_key)
        assert repaired.n_rows == example_relation.n_rows
