"""Every built-in metric family, declared once on the default registry.

Centralizing the declarations keeps names/labels/buckets in one place,
avoids import-order surprises (any instrumented module importing this one
makes the *whole* metric surface visible to a scrape, including families
that have not fired yet), and keeps the instrumented modules down to
``from repro.obs import metrics as obs_metrics`` plus one-line calls.

Naming follows Prometheus conventions: ``repro_<subsystem>_<what>_<unit>``,
``_total`` for counters, seconds for latencies, base units everywhere.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    get_registry,
)

_r = get_registry()

# --------------------------------------------------------------------------
# serve: request front-end
# --------------------------------------------------------------------------
SERVE_REQUESTS = _r.counter(
    "repro_serve_requests_total",
    "Requests dispatched, by op, tenant store, and result code.",
    ("op", "store", "code"),
)
SERVE_REQUEST_SECONDS = _r.histogram(
    "repro_serve_request_seconds",
    "Request latency from decoded frame to encoded response, by op.",
    ("op",),
)
SERVE_CONNECTIONS = _r.gauge(
    "repro_serve_connections",
    "Currently open client connections.",
)
SERVE_CONNECTIONS_TOTAL = _r.counter(
    "repro_serve_connections_total",
    "Client connections accepted since boot.",
)
SERVE_SLOW_OPS = _r.counter(
    "repro_serve_slow_ops_total",
    "Requests that exceeded the slow-op log threshold, by op.",
    ("op",),
)

# serve: append coalescing
SERVE_PENDING_ROWS = _r.gauge(
    "repro_serve_append_pending_rows",
    "Rows parked in the append scheduler awaiting a flush, by store.",
    ("store",),
)
SERVE_FLUSHES = _r.counter(
    "repro_serve_append_flushes_total",
    "Coalesced append flushes committed, by store.",
    ("store",),
)
SERVE_FALLBACK_FLUSHES = _r.counter(
    "repro_serve_append_fallback_flushes_total",
    "Flushes that fell back to per-request commits after a batch error.",
    ("store",),
)
SERVE_BATCH_ROWS = _r.histogram(
    "repro_serve_append_batch_rows",
    "Rows per committed flush batch, by store.",
    ("store",),
    buckets=DEFAULT_SIZE_BUCKETS,
)
SERVE_BATCH_REQUESTS = _r.histogram(
    "repro_serve_append_batch_requests",
    "Client requests coalesced per flush batch, by store.",
    ("store",),
    buckets=DEFAULT_SIZE_BUCKETS,
)

# --------------------------------------------------------------------------
# store: delta folds
# --------------------------------------------------------------------------
STORE_APPENDED_ROWS = _r.counter(
    "repro_store_appended_rows_total",
    "Rows committed into evidence stores, by store.",
    ("store",),
)
STORE_FOLD_SECONDS = _r.histogram(
    "repro_store_fold_seconds",
    "Delta-tile evidence fold latency per append, by store.",
    ("store",),
)

# --------------------------------------------------------------------------
# durability: WAL, snapshots, recovery
# --------------------------------------------------------------------------
WAL_RECORDS = _r.counter(
    "repro_wal_records_total",
    "Records appended to write-ahead logs.",
)
WAL_BYTES = _r.counter(
    "repro_wal_bytes_total",
    "Bytes appended to write-ahead logs (framing included).",
)
WAL_FSYNC_SECONDS = _r.histogram(
    "repro_wal_fsync_seconds",
    "Latency of WAL flush+fsync calls.",
)
SNAPSHOT_WRITES = _r.counter(
    "repro_durability_snapshot_writes_total",
    "Snapshot compactions written.",
)
SNAPSHOT_SECONDS = _r.histogram(
    "repro_durability_snapshot_seconds",
    "Snapshot write+compaction latency.",
)
RECOVERY_SECONDS = _r.histogram(
    "repro_durability_recovery_seconds",
    "Per-store recovery (snapshot load + WAL replay) latency.",
)
RECOVERY_REPLAYED = _r.counter(
    "repro_durability_recovery_replayed_records_total",
    "WAL records replayed during recoveries.",
)
RECOVERY_STORES = _r.counter(
    "repro_durability_recovery_stores_total",
    "Store recoveries at boot, by outcome.",
    ("outcome",),
)

# --------------------------------------------------------------------------
# cluster: coordinator fabric
# --------------------------------------------------------------------------
CLUSTER_DISPATCHED = _r.counter(
    "repro_cluster_tasks_dispatched_total",
    "Tasks sent to workers, by worker id.",
    ("worker",),
)
CLUSTER_REQUEUED = _r.counter(
    "repro_cluster_tasks_requeued_total",
    "Tasks requeued after a worker death.",
)
CLUSTER_REISSUED = _r.counter(
    "repro_cluster_tasks_reissued_total",
    "Straggler tasks speculatively reissued.",
)
CLUSTER_RESULTS = _r.counter(
    "repro_cluster_results_total",
    "Task results accepted, by worker id and payload transport (shm vs pipe).",
    ("worker", "transport"),
)
CLUSTER_SUBMIT_SECONDS = _r.histogram(
    "repro_cluster_submit_seconds",
    "End-to-end coordinator submit (dispatch to merged result) latency.",
)
CLUSTER_BYTES_SENT = _r.counter(
    "repro_cluster_bytes_sent_total",
    "Bytes written to worker transports.",
)
CLUSTER_BYTES_RECEIVED = _r.counter(
    "repro_cluster_bytes_received_total",
    "Bytes read from worker transports.",
)

# --------------------------------------------------------------------------
# worker: per-process families fired inside cluster worker loops.  In a
# subprocess worker these live in *its* registry and reach the coordinator
# only through the metrics_pull federation (repro/obs/federate.py), which
# relabels them with worker="<id>"; an in-process (LocalTransport) worker
# shares this process's registry, so its series show up directly too.
# --------------------------------------------------------------------------
WORKER_TASKS = _r.counter(
    "repro_worker_tasks_total",
    "Tasks executed by this worker, by context kind and outcome.",
    ("kind", "outcome"),
)
WORKER_TASK_SECONDS = _r.histogram(
    "repro_worker_task_seconds",
    "Per-task wall time on this worker (deserialize through result send).",
)
WORKER_CONTEXT_INSTALLS = _r.counter(
    "repro_worker_context_installs_total",
    "Work contexts installed (broadcasts acked) by this worker.",
)
WORKER_BYTES_SENT = _r.counter(
    "repro_worker_bytes_sent_total",
    "Payload bytes this worker wrote to its coordinator link.",
)
WORKER_BYTES_RECEIVED = _r.counter(
    "repro_worker_bytes_received_total",
    "Payload bytes this worker read from its coordinator link.",
)
WORKER_SHM_EXPORTS = _r.counter(
    "repro_worker_shm_exports_total",
    "Results this worker parked in shared-memory segments.",
)

# --------------------------------------------------------------------------
# mining: enumeration + evidence build throughput
# --------------------------------------------------------------------------
MINING_RUNS = _r.counter(
    "repro_mining_runs_total",
    "Enumeration runs started, by store.",
    ("store",),
)
MINING_SECONDS = _r.histogram(
    "repro_mining_enumeration_seconds",
    "Wall time of enumeration runs, by store.",
    ("store",),
)
MINING_NODES_VISITED = _r.gauge(
    "repro_mining_nodes_visited",
    "Search nodes visited by the live (or last) enumeration, by store.",
    ("store",),
)
MINING_NODES_PER_SECOND = _r.gauge(
    "repro_mining_nodes_per_second",
    "Live search throughput of the running enumeration, by store.",
    ("store",),
)
MINING_MAX_STACK_DEPTH = _r.gauge(
    "repro_mining_max_stack_depth",
    "Deepest explicit-stack depth reached, by store.",
    ("store",),
)
EVIDENCE_TILES = _r.counter(
    "repro_evidence_tiles_total",
    "Evidence tiles folded (serial in-process path).",
)
EVIDENCE_PAIRS = _r.counter(
    "repro_evidence_pairs_total",
    "Ordered tuple pairs covered by folded evidence tiles.",
)
EVIDENCE_TILE_SECONDS = _r.histogram(
    "repro_evidence_tile_seconds",
    "Per-tile kernel latency (serial in-process path).",
    buckets=DEFAULT_LATENCY_BUCKETS,
)
