"""Tests for predicates and the predicate space generator."""

from __future__ import annotations

import pytest

from repro.core.operators import Operator
from repro.core.predicate_space import (
    PredicateSpace,
    PredicateSpaceConfig,
    build_predicate_space,
    iter_bits,
)
from repro.core.predicates import (
    Predicate,
    PredicateForm,
    cross_column_predicate,
    same_column_predicate,
    single_tuple_predicate,
)
from repro.data.relation import Relation


class TestPredicate:
    def test_same_column_constructor_validation(self):
        with pytest.raises(ValueError):
            Predicate("A", Operator.EQ, "B", PredicateForm.TWO_TUPLE_SAME_COLUMN)
        with pytest.raises(ValueError):
            Predicate("A", Operator.EQ, "A", PredicateForm.SINGLE_TUPLE)

    def test_complement(self):
        predicate = same_column_predicate("A", Operator.LT)
        assert predicate.complement == same_column_predicate("A", Operator.GE)
        assert predicate.complement.complement == predicate

    def test_group_key_groups_operator_variants(self):
        assert (
            same_column_predicate("A", Operator.LT).group_key
            == same_column_predicate("A", Operator.GE).group_key
        )
        assert (
            same_column_predicate("A", Operator.LT).group_key
            != cross_column_predicate("A", Operator.LT, "B").group_key
        )

    def test_two_tuple_evaluation(self):
        predicate = same_column_predicate("A", Operator.GT)
        assert predicate.evaluate({"A": 3}, {"A": 1})
        assert not predicate.evaluate({"A": 1}, {"A": 3})

    def test_single_tuple_evaluation_ignores_second_row(self):
        predicate = single_tuple_predicate("A", Operator.LT, "B")
        assert predicate.evaluate({"A": 1, "B": 5}, {"A": 100, "B": 0})
        assert not predicate.evaluate({"A": 5, "B": 1}, {"A": 0, "B": 100})

    def test_implies(self):
        assert same_column_predicate("A", Operator.LT).implies(
            same_column_predicate("A", Operator.LE)
        )
        assert not same_column_predicate("A", Operator.LT).implies(
            same_column_predicate("B", Operator.LE)
        )

    def test_str_rendering(self):
        assert str(same_column_predicate("A", Operator.EQ)) == "t[A] == t'[A]"
        assert str(single_tuple_predicate("A", Operator.LT, "B")) == "t[A] < t[B]"


@pytest.fixture(scope="module")
def simple_relation() -> Relation:
    return Relation(
        "r",
        {
            "name": ["a", "b", "a", "c"],
            "low": [1, 2, 3, 4],
            "high": [2, 3, 4, 5],
            "other": [100, 200, 300, 400],
        },
    )


class TestPredicateSpaceGeneration:
    def test_same_column_predicates_always_present(self, simple_relation):
        space = build_predicate_space(simple_relation)
        assert same_column_predicate("name", Operator.EQ) in space
        assert same_column_predicate("low", Operator.LT) in space

    def test_string_columns_get_equality_only(self, simple_relation):
        space = build_predicate_space(simple_relation)
        assert same_column_predicate("name", Operator.NE) in space
        assert same_column_predicate("name", Operator.LT) not in space

    def test_cross_column_requires_shared_values(self, simple_relation):
        space = build_predicate_space(simple_relation)
        # low and high share 3 of 4 values -> cross predicates generated.
        assert single_tuple_predicate("low", Operator.LT, "high") in space
        assert cross_column_predicate("low", Operator.LT, "high") in space
        # "other" shares nothing with low/high -> no cross predicates.
        assert single_tuple_predicate("low", Operator.LT, "other") not in space

    def test_cross_column_can_be_disabled(self, simple_relation):
        config = PredicateSpaceConfig(include_cross_column=False, include_single_tuple=False)
        space = build_predicate_space(simple_relation, config)
        assert all(p.form is PredicateForm.TWO_TUPLE_SAME_COLUMN for p in space)

    def test_max_predicates_cap(self, simple_relation):
        with pytest.raises(ValueError):
            build_predicate_space(simple_relation, PredicateSpaceConfig(max_predicates=3))

    def test_complement_closure(self, simple_relation):
        space = build_predicate_space(simple_relation)
        for index in range(len(space)):
            complement_index = space.complement_index(index)
            assert space[complement_index] == space[index].complement


class TestPredicateSpaceIndexing:
    def test_index_round_trip(self, simple_relation):
        space = build_predicate_space(simple_relation)
        for index, predicate in enumerate(space):
            assert space.index_of(predicate) == index

    def test_unknown_predicate_raises(self, simple_relation):
        space = build_predicate_space(simple_relation)
        with pytest.raises(KeyError):
            space.index_of(same_column_predicate("missing", Operator.EQ))

    def test_mask_round_trip(self, simple_relation):
        space = build_predicate_space(simple_relation)
        predicates = (space[0], space[3], space[5])
        mask = space.mask_of(predicates)
        assert set(space.predicates_of(mask)) == set(predicates)

    def test_group_mask_contains_all_operator_variants(self, simple_relation):
        space = build_predicate_space(simple_relation)
        index = space.index_of(same_column_predicate("low", Operator.LT))
        group = space.predicates_of(space.group_mask(index))
        assert len(group) == 6
        assert all(p.group_key == space[index].group_key for p in group)

    def test_duplicate_predicates_rejected(self):
        predicate = same_column_predicate("A", Operator.EQ)
        with pytest.raises(ValueError):
            PredicateSpace([predicate, predicate])

    def test_iter_bits(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []


class TestTable3:
    """The sample of the running example's predicate space shown in Table 3.

    Table 3 lists Income-vs-Tax comparisons; in the running example those
    two attributes share almost no values, so under the 30% rule of [11, 37]
    (which the paper adopts) they only enter the space when the rule is
    relaxed.  Both behaviours are pinned down here.
    """

    def test_table3_same_attribute_predicates_present(self, example_space):
        expected = [
            same_column_predicate("Name", Operator.EQ),
            same_column_predicate("Name", Operator.NE),
            same_column_predicate("Income", Operator.EQ),
            same_column_predicate("Income", Operator.NE),
            same_column_predicate("Income", Operator.GT),
            same_column_predicate("Income", Operator.GE),
            same_column_predicate("Income", Operator.LT),
            same_column_predicate("Income", Operator.LE),
        ]
        for predicate in expected:
            assert predicate in example_space, str(predicate)

    def test_income_tax_comparisons_gated_by_shared_value_rule(self, example_relation, example_space):
        income_vs_tax = cross_column_predicate("Income", Operator.GT, "Tax")
        assert income_vs_tax not in example_space
        relaxed = build_predicate_space(
            example_relation, PredicateSpaceConfig(shared_value_threshold=0.0)
        )
        for op in (Operator.GT, Operator.GE, Operator.LT, Operator.LE):
            assert cross_column_predicate("Income", op, "Tax") in relaxed

    def test_no_mixed_type_comparisons(self, example_space):
        for predicate in example_space:
            if predicate.left_column == "Name":
                assert predicate.right_column == "Name"

    def test_sat_t2_t5_matches_example_3_1(self, example_relation):
        space = build_predicate_space(
            example_relation, PredicateSpaceConfig(shared_value_threshold=0.0)
        )
        t2 = example_relation.row(1)
        t5 = example_relation.row(4)
        satisfied = {p for p in space if p.evaluate(t2, t5)}
        assert same_column_predicate("Name", Operator.NE) in satisfied
        assert same_column_predicate("Income", Operator.GT) in satisfied
        assert same_column_predicate("Income", Operator.GE) in satisfied
        assert cross_column_predicate("Income", Operator.GT, "Tax") in satisfied
        reverse = {p for p in space if p.evaluate(t5, t2)}
        assert same_column_predicate("Name", Operator.NE) in reverse
        assert same_column_predicate("Income", Operator.LT) in reverse
        assert same_column_predicate("Income", Operator.GT) not in reverse
