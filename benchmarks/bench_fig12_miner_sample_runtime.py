"""Figure 12 — total ADCMiner running time for varying sample sizes."""

from conftest import report

from repro.experiments import figure12_miner_sample_sizes


def test_figure12_total_time_vs_sample_size(benchmark, config):
    restricted = config.restricted(("tax", "stock", "flight", "voter"))
    rows = benchmark.pedantic(
        figure12_miner_sample_sizes, args=(restricted,), iterations=1, rounds=1
    )
    report("Figure 12: ADCMiner total time (seconds) for varying sample sizes", rows)
    # Sampling must pay off: the smallest sample should be faster than the
    # full run for every dataset (the paper reports reductions up to 95%).
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], {})[row["sample"]] = row["total_seconds"]
    assert all(times[0.2] <= times[1.0] for times in by_dataset.values())
