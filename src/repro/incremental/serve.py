"""Serving DC violations over a live evidence store.

:class:`ViolationService` is the query-side counterpart of
:class:`~repro.incremental.store.EvidenceStore`: given a set of mined
denial constraints it answers, against the store's *current* state,

* ``violations(dc)`` — violating-pair count and rate, straight off the
  finalized word planes (one vectorised uncovered-count query);
* ``violating_pairs(dc)`` — the actual ``(t, t')`` pairs, reconstructed by
  *tile replay*: the deduplicated evidence set no longer knows which pairs
  carried an evidence, so the service re-runs the evidence kernel tile by
  tile and filters pairs whose words miss the DC's hitting set (bounded
  memory, streamed in schedule order);
* ``check_batch(rows)`` — admission control for incoming tuples: which rows
  of a batch would push some DC's violation rate past ``epsilon``, each row
  judged independently against the store via the delta cross blocks;
* ``tuple_scores(dc)`` / ``repair_ranking(dc)`` — the per-tuple violation
  vector ``v(t)`` of the paper's Figure 2 from the stored participation
  histograms, wired into :mod:`repro.core.repair`'s ranking and
  conflict-graph machinery.

In the violation-detection framing of FastDC/Hydra (see PAPERS.md), this is
the "serve" half of a discover-then-monitor deployment: mine once with
:meth:`~repro.incremental.store.EvidenceStore.remine`, then watch batches
arrive and counts drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.adc_enum import DiscoveredADC
from repro.core.dc import DenialConstraint
from repro.core.evidence import mask_to_words, n_words_for
from repro.core.repair import ConflictGraph, rank_tuples_by_violations
from repro.incremental.delta import delta_tiles

if TYPE_CHECKING:
    from repro.data.relation import Relation
    from repro.incremental.store import EvidenceStore


@dataclass(frozen=True)
class ViolationReport:
    """Violation load of one DC on the store's current relation."""

    constraint: DenialConstraint
    count: int
    total_pairs: int

    @property
    def rate(self) -> float:
        """Violating pairs over all ordered distinct pairs (``1 - f1``)."""
        return self.count / self.total_pairs if self.total_pairs else 0.0

    def exceeds(self, epsilon: float) -> bool:
        """Whether the violation rate is past the threshold."""
        return self.rate > epsilon


@dataclass(frozen=True)
class RowAdmission:
    """Admission verdict for one row of a checked batch."""

    row_index: int
    rates: tuple[float, ...]
    epsilon: float

    @property
    def admissible(self) -> bool:
        """Whether the row keeps every DC's violation rate within epsilon."""
        return all(rate <= self.epsilon for rate in self.rates)

    @property
    def worst_rate(self) -> float:
        """The highest post-append violation rate across the served DCs."""
        return max(self.rates) if self.rates else 0.0


class ViolationService:
    """Answer DC violation queries against a live evidence store.

    Parameters
    ----------
    store:
        The evidence store to serve from.  Queries always run against its
        *current* state: appends between calls are picked up automatically
        (the store's finalized-evidence cache makes repeat queries cheap).
    constraints:
        The DCs to serve — :class:`~repro.core.dc.DenialConstraint` objects
        or the :class:`~repro.core.adc_enum.DiscoveredADC` wrappers a miner
        returns (whose precomputed hitting-set mask is reused).
    epsilon:
        Violation-rate threshold used by :meth:`check_batch` and
        :meth:`exceeded`.
    base_counts_provider:
        Optional callable returning the per-DC violating-pair counts of the
        store's *current* state (one entry per served constraint, in
        constraint order).  When set, :meth:`check_batch` reads its base
        counts from it instead of finalizing the store's evidence — this is
        how the serving layer substitutes its push-maintained counters
        (:class:`repro.serve.counters.ViolationCounters`) for the
        finalize-on-read path.
    """

    def __init__(
        self,
        store: "EvidenceStore",
        constraints: Sequence[DenialConstraint | DiscoveredADC],
        epsilon: float = 0.01,
        base_counts_provider: "Callable[[], Sequence[int]] | None" = None,
    ) -> None:
        self._store = store
        self.epsilon = float(epsilon)
        self.base_counts_provider = base_counts_provider
        self.constraints: list[DenialConstraint] = []
        self._hitting_words: list[np.ndarray] = []
        # Per-DC base violation counts, keyed on the store generation that
        # produced them (appends bump the generation, invalidating this).
        self._base_counts_cache: tuple[int, np.ndarray] | None = None
        n_words = n_words_for(len(store.space))
        for entry in constraints:
            if isinstance(entry, DiscoveredADC):
                constraint = entry.constraint
                mask = entry.hitting_set_mask
            else:
                constraint = entry
                mask = store.space.complement_mask(store.space.mask_of(entry.predicates))
            self.constraints.append(constraint)
            self._hitting_words.append(mask_to_words(mask, n_words))

    def __len__(self) -> int:
        return len(self.constraints)

    @property
    def hitting_words(self) -> list[np.ndarray]:
        """Per-DC hitting-set word vectors, in constraint order.

        The packed complement-predicate masks every violation query
        intersects evidence words against; shared with the serving layer's
        push-based counters so both count against identical bit patterns.
        """
        return list(self._hitting_words)

    # ------------------------------------------------------------------
    # Constraint resolution
    # ------------------------------------------------------------------
    def index_of(self, dc: DenialConstraint | DiscoveredADC | int) -> int:
        """Position of a served DC, given by index, ADC, or constraint."""
        if isinstance(dc, (int, np.integer)):
            index = int(dc)
            if not 0 <= index < len(self.constraints):
                raise IndexError(f"constraint index {index} out of range")
            return index
        constraint = dc.constraint if isinstance(dc, DiscoveredADC) else dc
        for index, served in enumerate(self.constraints):
            if served.predicates == constraint.predicates:
                return index
        raise KeyError(f"constraint not served by this service: {constraint}")

    def _resolve(self, dc: DenialConstraint | DiscoveredADC | int) -> tuple[int, np.ndarray]:
        """Index + hitting words of a served DC (by position or identity)."""
        index = self.index_of(dc)
        return index, self._hitting_words[index]

    # ------------------------------------------------------------------
    # Counting and replay
    # ------------------------------------------------------------------
    def violations(self, dc: DenialConstraint | DiscoveredADC | int) -> ViolationReport:
        """Violating-pair count and rate of one served DC, right now."""
        index, hitting = self._resolve(dc)
        evidence = self._store.evidence()
        return ViolationReport(
            constraint=self.constraints[index],
            count=evidence.uncovered_pair_count(hitting),
            total_pairs=evidence.total_pairs,
        )

    def report(self) -> list[ViolationReport]:
        """Violation reports for every served DC."""
        return [self.violations(index) for index in range(len(self.constraints))]

    def exceeded(self) -> list[ViolationReport]:
        """The served DCs whose violation rate currently exceeds epsilon."""
        return [entry for entry in self.report() if entry.exceeds(self.epsilon)]

    def violating_pairs(
        self, dc: DenialConstraint | DiscoveredADC | int
    ) -> Iterator[tuple[int, int]]:
        """Stream the ordered pairs violating one served DC (tile replay).

        The evidence store deduplicates pairs into (word, multiplicity)
        entries, so pair identities are reconstructed by re-running the
        evidence kernel over the tile schedule and keeping pairs whose
        words have an empty intersection with the DC's hitting set.  Memory
        stays bounded by one tile; pairs stream in schedule order.
        """
        _, hitting = self._resolve(dc)
        kernel = self._store.replay_kernel()
        for tile in self._store.replay_scheduler():
            words, left_ids, right_ids = kernel.tile_words(tile)
            if not len(words):
                continue
            violating = ~np.bitwise_and(words, hitting).any(axis=1)
            for left, right in zip(left_ids[violating], right_ids[violating]):
                yield int(left), int(right)

    def conflict_graph(self, dc: DenialConstraint | DiscoveredADC | int) -> ConflictGraph:
        """The DC's conflict graph over the current relation, via replay."""
        index, _ = self._resolve(dc)
        return ConflictGraph.from_pairs(self._store.n_rows, self.violating_pairs(index))

    # ------------------------------------------------------------------
    # Per-tuple scores and repair
    # ------------------------------------------------------------------
    def tuple_scores(self, dc: DenialConstraint | DiscoveredADC | int) -> np.ndarray:
        """Per-tuple violating-pair counts for one served DC.

        This is the ``v(t)`` vector of the paper's ``SortTuples`` (Figure
        2), read from the stored participation histograms — no pair replay
        needed.  Requires the store to maintain participation.
        """
        _, hitting = self._resolve(dc)
        evidence = self._store.evidence()
        uncovered = evidence.uncovered_indices(hitting)
        return evidence.violation_counts_per_tuple(uncovered)

    def repair_ranking(self, dc: DenialConstraint | DiscoveredADC | int) -> list[int]:
        """Tuples to repair first, worst violation score first.

        Feeds :meth:`tuple_scores` into
        :func:`repro.core.repair.rank_tuples_by_violations` — the greedy
        cardinality-repair ordering of the conflict-graph machinery.
        """
        return rank_tuples_by_violations(self.tuple_scores(dc))

    # ------------------------------------------------------------------
    # Batch admission
    # ------------------------------------------------------------------
    def _base_violation_counts(self) -> np.ndarray:
        """Per-DC violating-pair counts of the store, cached per generation.

        The counts only change when the store absorbs an append, so an
        admission loop calling :meth:`check_batch` row by row pays the
        full-evidence uncovered scan once per store generation, not once
        per call.  With a ``base_counts_provider`` installed the scan is
        skipped entirely — the provider's push-maintained counts are
        authoritative and already current.
        """
        if self.base_counts_provider is not None:
            counts = np.asarray(self.base_counts_provider(), dtype=np.int64)
            if len(counts) != len(self.constraints):
                raise ValueError(
                    f"base_counts_provider returned {len(counts)} counts "
                    f"for {len(self.constraints)} served constraints"
                )
            return counts
        generation = self._store.generation
        if self._base_counts_cache is None or self._base_counts_cache[0] != generation:
            counts = np.array(
                [
                    self.violations(index).count
                    for index in range(len(self.constraints))
                ],
                dtype=np.int64,
            )
            self._base_counts_cache = (generation, counts)
        return self._base_counts_cache[1]

    def check_batch(
        self, rows: "Relation | Iterable[Mapping[str, object]]"
    ) -> list[RowAdmission]:
        """Judge which incoming rows would push a DC past epsilon.

        Every row is evaluated *independently* against the store's current
        relation: its hypothetical post-append rate for DC ``phi`` is

        ``(count(phi) + delta_r(phi)) / ((n + 1) * n)``

        where ``delta_r`` counts the violating pairs between the row and
        the ``n`` stored tuples (both orientations).  Cross pairs between
        two rows of the same batch are deliberately excluded — admission is
        per row, not per batch, so verdicts do not depend on batch order.
        Implemented as a delta-block replay on a probe relation; the store
        itself is never modified.
        """
        probe, n_before = self._store.probe_relation(rows)
        n_new = probe.n_rows - n_before
        if n_new == 0:
            return []
        n_constraints = len(self.constraints)
        delta_counts = np.zeros((n_constraints, n_new), dtype=np.int64)

        kernel = self._store.builder.kernel(probe, include_participation=False)
        edge = self._store.builder.tile_edge(probe.n_rows)
        # Cross rectangles only (no new-vs-new square): each row is judged
        # independently of its batch-mates.
        for tile in delta_tiles(n_before, probe.n_rows, edge, include_new_vs_new=False):
            words, left_ids, right_ids = kernel.tile_words(tile)
            if not len(words):
                continue
            # Exactly one endpoint of every cross pair is a new row.
            new_ids = np.where(left_ids >= n_before, left_ids, right_ids) - n_before
            for index, hitting in enumerate(self._hitting_words):
                violating = ~np.bitwise_and(words, hitting).any(axis=1)
                np.add.at(delta_counts[index], new_ids[violating], 1)

        base_counts = self._base_violation_counts()
        hypothetical_pairs = (n_before + 1) * n_before
        admissions: list[RowAdmission] = []
        for row in range(n_new):
            if hypothetical_pairs:
                rates = tuple(
                    float(base_counts[index] + delta_counts[index, row])
                    / hypothetical_pairs
                    for index in range(n_constraints)
                )
            else:
                rates = tuple(0.0 for _ in range(n_constraints))
            admissions.append(RowAdmission(row, rates, self.epsilon))
        return admissions
