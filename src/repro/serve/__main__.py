"""CLI entry point: ``python -m repro.serve --listen host:port``.

Boots a :class:`~repro.serve.server.ViolationServer`, prints the bound
address (one line on stdout, so wrappers can wait for readiness and parse
the OS-assigned port when ``:0`` is requested), and serves until SIGTERM
or SIGINT triggers the graceful drain: pending append flushes commit,
in-flight requests answer, connections close, then the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.cluster.transport import parse_address
from repro.serve.server import ViolationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve DC violation queries over evidence stores.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:7332", metavar="HOST:PORT",
        help="listen address (port 0 lets the OS pick; default %(default)s)",
    )
    parser.add_argument(
        "--flush-window", type=float, default=0.0, metavar="SECONDS",
        help="append-coalescing window per store (default %(default)s)",
    )
    parser.add_argument(
        "--max-pending-rows", type=int, default=100_000,
        help="append backpressure bound per store (default %(default)s)",
    )
    parser.add_argument(
        "--executor-threads", type=int, default=4,
        help="worker threads for blocking store work (default %(default)s)",
    )
    parser.add_argument(
        "--store-workers", type=int, default=1,
        help="process-pool width of each store's tile folds (default %(default)s)",
    )
    parser.add_argument(
        "--max-frame-mb", type=int, default=64,
        help="per-frame size bound in MiB (default %(default)s)",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durability root: journal every store under DIR/<name>/ and "
             "recover all journaled stores on boot (default: in-memory only)",
    )
    parser.add_argument(
        "--fsync", choices=("always", "commit", "never"), default="commit",
        help="WAL fsync policy for tenant journals (default %(default)s)",
    )
    parser.add_argument(
        "--snapshot-bytes", type=int, default=4 * 1024 * 1024,
        help="WAL size triggering snapshot compaction (default %(default)s)",
    )
    parser.add_argument(
        "--max-stores", type=int, default=None,
        help="cap on live tenant stores (default: unlimited)",
    )
    parser.add_argument(
        "--max-rows-per-store", type=int, default=None,
        help="per-tenant row quota (default: unlimited)",
    )
    parser.add_argument(
        "--dedup-window", type=int, default=1024,
        help="idempotency window per store, in keyed appends "
             "(default %(default)s)",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    host, port = parse_address(args.listen)
    server = ViolationServer(
        host, port,
        flush_window=args.flush_window,
        max_pending_rows=args.max_pending_rows,
        executor_threads=args.executor_threads,
        store_workers=args.store_workers,
        max_frame_bytes=args.max_frame_mb * 1024 * 1024,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every_bytes=args.snapshot_bytes,
        max_stores=args.max_stores,
        max_rows_per_store=args.max_rows_per_store,
        dedup_window=args.dedup_window,
    )
    host, port = await server.start()
    print(f"repro-serve listening on {host}:{port}", flush=True)

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.stop())
        )
    await server.serve_forever()
    print("repro-serve drained and stopped", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130


if __name__ == "__main__":
    sys.exit(main())
