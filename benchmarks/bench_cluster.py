"""Distributed fabric — cluster evidence build vs the serial tiled builder.

Not a paper figure: this benchmark tracks the cluster layer of
``repro.cluster``.  Four sections:

1. **Speedup** — the benchmark relation's evidence set built serially
   (tiled) and over local *socket* workers at 1, 2 and 4 workers (real
   ``python -m repro.cluster.worker`` subprocesses on localhost TCP).  The
   ≥ ``EXPECTED_SPEEDUP``× bar at 4 workers applies on machines with at
   least 4 CPUs and is enforced with ``--require-speedup`` (CI runners are
   too noisy/narrow for a hard wall-clock gate; the JSON artifact tracks
   the trajectory).
2. **Bytes pickled** — the same build with pipe-returned partials vs
   shared-memory handles (``--shm``); shm must move measurably fewer
   result bytes through the links.  This is asserted unconditionally — it
   is a property of the protocol, not of the machine.
3. **Correctness sweep** — {1, 2, 4} workers × {local, socket} transports,
   each bit-identical to ``method="tiled"``.
4. **Failure injection** — for each transport, a 2-worker build with one
   worker severed mid-shard; the shard must be re-issued and the result
   stay bit-identical.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        [--json BENCH_cluster.json] [--rows 1000] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

import numpy as np

from repro.cluster import (
    LocalCluster,
    TileFoldContext,
    build_evidence_set_cluster,
    merge_partials_tree,
    shard_tasks,
)
from repro.core.evidence_builder import build_evidence_set_tiled
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.engine.kernel import TileKernel
from repro.engine.scheduler import TileScheduler

#: Rows of the benchmark relation (the "1k-row" reference point).
BENCH_ROWS = 1000

#: Worker counts swept by the speedup section.
WORKER_COUNTS = (1, 2, 4)

#: Speedup 4 socket workers must reach over the serial tiled builder when
#: the machine actually has 4 CPUs.
EXPECTED_SPEEDUP = 2.0

#: Rows of the (smaller) correctness/failure-injection relation.
VERIFY_ROWS = 120


def identical(left, right) -> bool:
    """Bit-identity of two evidence sets (words + multiplicities)."""
    return np.array_equal(left.words, right.words) and np.array_equal(
        left.counts, right.counts
    )


def measure_serial(relation, space) -> tuple[float, int]:
    best = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        evidence = build_evidence_set_tiled(
            relation, space, include_participation=False
        )
        best = min(best, time.perf_counter() - started)
    return best, len(evidence)


def measure_cluster(relation, space, n_workers: int, use_shm: bool = False):
    """One cluster build: wall seconds, evidence count, result bytes."""
    with LocalCluster(n_workers, transport="socket", use_shm=use_shm) as cluster:
        started = time.perf_counter()
        evidence = build_evidence_set_cluster(
            relation, space, cluster, include_participation=False
        )
        elapsed = time.perf_counter() - started
        received = cluster.coordinator.bytes_received
    return elapsed, len(evidence), received


def run_speedup(relation, space, worker_counts) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    seconds, evidences = measure_serial(relation, space)
    rows.append({
        "builder": "tiled", "n_workers": "-", "seconds": seconds,
        "evidences": evidences,
    })
    baseline = seconds
    for n_workers in worker_counts:
        seconds, evidences, received = measure_cluster(relation, space, n_workers)
        rows.append({
            "builder": "cluster", "n_workers": n_workers, "seconds": seconds,
            "evidences": evidences, "result_bytes": received,
            "speedup_vs_tiled": baseline / seconds,
        })
    return rows


def run_bytes_comparison(relation, space, n_workers: int = 2) -> dict[str, object]:
    _, _, pipe_bytes = measure_cluster(relation, space, n_workers, use_shm=False)
    _, _, shm_bytes = measure_cluster(relation, space, n_workers, use_shm=True)
    return {
        "n_workers": n_workers,
        "pipe_result_bytes": pipe_bytes,
        "shm_result_bytes": shm_bytes,
        "reduction": pipe_bytes / max(shm_bytes, 1),
    }


def run_correctness(verify_relation, verify_space, worker_counts) -> list[dict[str, object]]:
    reference = build_evidence_set_tiled(verify_relation, verify_space)
    rows: list[dict[str, object]] = []
    for transport in ("local", "socket"):
        for n_workers in worker_counts:
            with LocalCluster(n_workers, transport=transport) as cluster:
                built = build_evidence_set_cluster(
                    verify_relation, verify_space, cluster, tile_rows=24
                )
            rows.append({
                "transport": transport, "n_workers": n_workers,
                "failure_injected": False,
                "bit_identical": identical(built, reference),
            })
        rows.append(run_failure_injection(
            verify_relation, verify_space, reference, transport
        ))
    return rows


def run_failure_injection(relation, space, reference, transport) -> dict[str, object]:
    """Sever one of two workers mid-shard; shard re-issue must cover it."""
    kernel = TileKernel.from_relation(relation, space, include_participation=True)
    tiles = TileScheduler(relation.n_rows, tile_rows=24).tiles()
    tasks, weights = shard_tasks(tiles, 8)
    with LocalCluster(2, transport=transport) as cluster:
        context = TileFoldContext(kernel, tiles, delay_per_task=0.2)
        outcome: dict[str, object] = {}

        def submit():
            outcome["partials"] = cluster.submit(context, tasks, weights)

        runner = threading.Thread(target=submit)
        runner.start()
        time.sleep(0.3)  # both workers are inside a shard
        cluster.coordinator.disconnect_worker(cluster.coordinator.worker_ids[0])
        runner.join(timeout=120.0)
        evidence = merge_partials_tree(outcome["partials"]).finalize(space)
        reissued = cluster.coordinator.reissued_tasks
        failed = cluster.coordinator.failed_workers
    return {
        "transport": transport, "n_workers": 2, "failure_injected": True,
        "failed_workers": failed, "reissued_or_requeued": reissued,
        "bit_identical": identical(evidence, reference),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration: fewer rows, 2 workers max")
    parser.add_argument("--require-speedup", action="store_true",
                        help=f"fail unless 4 workers reach {EXPECTED_SPEEDUP}x "
                             "(implied soft check runs when >= 4 CPUs are present)")
    args = parser.parse_args()

    n_rows = min(args.rows, 300) if args.smoke else args.rows
    worker_counts = (1, 2) if args.smoke else WORKER_COUNTS
    cpu_count = os.cpu_count() or 1

    relation = generate_dataset("tax", n_rows=n_rows, seed=7).relation
    space = build_predicate_space(relation)
    verify_relation = generate_dataset("tax", n_rows=VERIFY_ROWS, seed=11).relation
    verify_space = build_predicate_space(verify_relation)

    print(f"Cluster evidence build on {n_rows} rows ({cpu_count} CPUs):")
    speedup_rows = run_speedup(relation, space, worker_counts)
    header = (
        f"{'builder':<9} {'workers':>7} {'seconds':>9} {'speedup':>8} "
        f"{'result KB':>10} {'evidences':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in speedup_rows:
        speedup = row.get("speedup_vs_tiled")
        speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
        kb = row.get("result_bytes")
        kb_text = f"{kb / 1024:.1f}" if kb is not None else "-"
        print(
            f"{row['builder']:<9} {str(row['n_workers']):>7} "
            f"{row['seconds']:>9.3f} {speedup_text:>8} {kb_text:>10} "
            f"{row['evidences']:>10}"
        )

    failures: list[str] = []
    sizes = {row["evidences"] for row in speedup_rows}
    if len(sizes) != 1:
        failures.append(f"builders disagree on evidence count: {sizes}")

    bytes_row = run_bytes_comparison(relation, space)
    print(
        f"\nresult bytes through the links (2 workers): "
        f"pipe={bytes_row['pipe_result_bytes']:,} "
        f"shm={bytes_row['shm_result_bytes']:,} "
        f"({bytes_row['reduction']:.1f}x fewer with shared memory)"
    )
    if bytes_row["shm_result_bytes"] >= bytes_row["pipe_result_bytes"]:
        failures.append(
            "shared-memory planes did not reduce bytes pickled "
            f"(pipe={bytes_row['pipe_result_bytes']}, shm={bytes_row['shm_result_bytes']})"
        )

    correctness_rows = run_correctness(verify_relation, verify_space, worker_counts)
    print(f"\ncorrectness sweep on {VERIFY_ROWS} rows:")
    for row in correctness_rows:
        status = "ok" if row["bit_identical"] else "MISMATCH"
        failure_text = " +1 worker killed mid-shard" if row["failure_injected"] else ""
        print(
            f"  {row['transport']:>6} x {row['n_workers']} workers"
            f"{failure_text}: {status}"
        )
        if not row["bit_identical"]:
            failures.append(
                f"cluster build not bit-identical: {row['transport']} "
                f"x {row['n_workers']} (failure={row['failure_injected']})"
            )

    best_speedup = max(
        float(row.get("speedup_vs_tiled", 0.0)) for row in speedup_rows
    )
    if cpu_count >= 4 and not args.smoke and best_speedup < EXPECTED_SPEEDUP:
        message = (
            f"cluster build reached only {best_speedup:.2f}x on {cpu_count} CPUs "
            f"(expected >= {EXPECTED_SPEEDUP}x)"
        )
        if args.require_speedup:
            failures.append(message)
        else:
            print(f"WARNING: {message}", file=sys.stderr)
    elif cpu_count < 4:
        print(
            f"note: {cpu_count} CPU(s) available; the {EXPECTED_SPEEDUP}x target "
            "applies on >= 4 CPUs"
        )

    if args.json:
        payload = {
            "benchmark": "cluster",
            "n_rows": n_rows,
            "cpu_count": cpu_count,
            "smoke": args.smoke,
            "expected_speedup_at_4_workers": EXPECTED_SPEEDUP,
            "speedup": speedup_rows,
            "bytes": bytes_row,
            "correctness": correctness_rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    for message in failures:
        print(f"ERROR: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
