"""Tests for the sampling theory of Section 7."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import (
    accept_on_sample,
    adjusted_function,
    chebyshev_error_bound,
    draw_sample,
    estimate_violation_fraction,
    normal_confidence_interval,
    required_sample_rows,
    sample_edge_fraction,
    sample_threshold,
    simulate_random_polluter,
    z_value,
)
from repro.data.relation import running_example


class TestEstimator:
    def test_estimate_violation_fraction(self):
        assert estimate_violation_fraction(10, 11) == pytest.approx(10 / 110)
        assert estimate_violation_fraction(0, 1) == 0.0

    def test_estimator_is_approximately_unbiased(self):
        """Averaging p_hat over many vertex samples recovers p (Section 7.1)."""
        graph = simulate_random_polluter(n_vertices=40, edge_probability=0.05, seed=3)
        rng = random.Random(0)
        estimates = []
        for _ in range(200):
            vertices = rng.sample(range(graph.n_vertices), 15)
            estimates.append(sample_edge_fraction(graph, vertices))
        average = sum(estimates) / len(estimates)
        assert average == pytest.approx(graph.violation_fraction, abs=0.01)

    def test_random_polluter_density(self):
        graph = simulate_random_polluter(n_vertices=30, edge_probability=0.2, seed=1)
        assert graph.violation_fraction == pytest.approx(0.2, abs=0.06)

    def test_random_polluter_validates_probability(self):
        with pytest.raises(ValueError):
            simulate_random_polluter(5, 1.5)


class TestBounds:
    def test_chebyshev_bound_decreases_with_deviation(self):
        loose = chebyshev_error_bound(0.1, sample_rows=50, deviation=0.05)
        tight = chebyshev_error_bound(0.1, sample_rows=50, deviation=0.2)
        assert 0.0 <= tight <= loose <= 1.0

    def test_chebyshev_rejects_bad_deviation(self):
        with pytest.raises(ValueError):
            chebyshev_error_bound(0.1, 50, 0.0)

    def test_normal_interval_contains_estimate(self):
        low, high = normal_confidence_interval(0.05, sample_pairs=10_000, confidence=0.9)
        assert low <= 0.05 <= high
        assert high - low < 0.02

    def test_normal_interval_shrinks_with_sample_size(self):
        small = normal_confidence_interval(0.05, 1_000)
        large = normal_confidence_interval(0.05, 100_000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_z_value_monotone(self):
        assert z_value(0.99) > z_value(0.9) > z_value(0.5) > 0


class TestSampleThreshold:
    def test_threshold_below_epsilon(self):
        epsilon = 0.05
        threshold = sample_threshold(epsilon, p_hat=0.02, sample_pairs=5_000, alpha=0.05)
        assert threshold <= epsilon

    def test_threshold_approaches_epsilon_for_large_samples(self):
        epsilon = 0.05
        small = sample_threshold(epsilon, 0.02, 1_000, alpha=0.05)
        large = sample_threshold(epsilon, 0.02, 1_000_000, alpha=0.05)
        assert epsilon - large < epsilon - small
        assert large == pytest.approx(epsilon, abs=1e-3)

    def test_accept_on_sample_consistent_with_threshold(self):
        epsilon, pairs, alpha = 0.05, 20_000, 0.05
        for p_hat in (0.001, 0.02, 0.049, 0.06, 0.2):
            expected = p_hat <= sample_threshold(epsilon, p_hat, pairs, alpha)
            assert accept_on_sample(epsilon, p_hat, pairs, alpha) == expected

    @settings(max_examples=50, deadline=None)
    @given(p_hat=st.floats(min_value=0.0, max_value=0.3),
           epsilon=st.floats(min_value=0.0, max_value=0.3))
    def test_acceptance_is_conservative(self, p_hat, epsilon):
        """Accepting on the sample requires p_hat below epsilon (never above)."""
        if accept_on_sample(epsilon, p_hat, sample_pairs=10_000, alpha=0.05):
            assert p_hat <= epsilon + 1e-9

    def test_adjusted_function_name(self):
        function = adjusted_function(sample_pairs=1_000, alpha=0.05)
        assert function.name == "f1'"
        assert function.confidence_z == pytest.approx(z_value(0.9))

    def test_required_sample_rows(self):
        rows = required_sample_rows(epsilon_margin=0.01, alpha=0.05)
        margin = z_value(0.9) * (0.5 / (rows * (rows - 1)) ** 0.5)
        assert margin <= 0.01
        with pytest.raises(ValueError):
            required_sample_rows(0.0)


class TestDrawSample:
    def test_sample_plan_metadata(self):
        relation = running_example()
        plan = draw_sample(relation, 0.4, seed=2)
        assert plan.population_rows == 15
        assert plan.sample_rows == 6
        assert plan.sample_pairs == 6 * 5

    def test_full_fraction_keeps_everything(self):
        relation = running_example()
        plan = draw_sample(relation, 1.0)
        assert plan.sample_rows == relation.n_rows
