"""The picklable per-tile evidence kernel.

:class:`TileKernel` is the compute core of both the serial tiled builder
and the process-pool engine: given one :class:`~repro.engine.scheduler.Tile`
it produces that block's deduplicated evidence words, multiplicities and
tuple-participation histogram (a :class:`TilePartial`).

The kernel is deliberately a *numpy-only* payload: building it
(:meth:`TileKernel.from_relation`) resolves every predicate group's
comparison data — per-row order categories, float value vectors, string
factorization codes — and the per-category word masks up front, so worker
processes receive a few flat arrays instead of the :class:`Relation` and
:class:`PredicateSpace` objects.  It is pickled once per worker (pool
initializer), after which tasks are plain ``(start, stop)`` shard ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.evidence import n_words_for, unique_word_rows
from repro.core.operators import (
    SATISFIED_BY_CATEGORY,
    SATISFIED_BY_CATEGORY_STRING,
    OrderCategory,
)
from repro.core.predicates import PredicateForm
from repro.native import dispatch as native_dispatch

if TYPE_CHECKING:
    from repro.core.predicate_space import PredicateSpace
    from repro.data.relation import Relation
    from repro.engine.scheduler import Tile

_WORD_BITS = 64


@dataclass(frozen=True)
class TilePartial:
    """One tile's deduplicated evidence contribution.

    ``words[k]`` occurred ``counts[k]`` times among the tile's ordered
    pairs.  ``part_keys``/``part_counts`` encode the tuple-participation
    histogram with *tile-local* evidence ids:
    ``part_keys = local_id * n_rows + tuple_id``, pre-aggregated within the
    tile.  :class:`~repro.engine.partial.PartialEvidenceSet` remaps the
    local ids to its own global ids on absorption.
    """

    words: np.ndarray
    counts: np.ndarray
    part_keys: np.ndarray | None
    part_counts: np.ndarray | None


class PreparedGroup:
    """One predicate group with its comparison data resolved up front.

    ``tile_categories(i0, i1, j0, j1)`` returns the
    :class:`OrderCategory` matrix of the ordered pairs
    ``(t_i, t_j), i in [i0, i1), j in [j0, j1)`` — the per-tile slice of
    the dense builder's category matrix, computed without materialising it.
    Subclasses hold only numpy arrays, so every prepared group pickles
    cheaply into worker processes.
    """

    def __init__(self, lookup: np.ndarray) -> None:
        self.lookup = lookup

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        raise NotImplementedError


class SingleTupleGroup(PreparedGroup):
    """``t[A] op t[B]``: the category depends only on the left row."""

    def __init__(self, lookup: np.ndarray, per_row: np.ndarray) -> None:
        super().__init__(lookup)
        self.per_row = per_row

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        return np.broadcast_to(self.per_row[i0:i1, None], (i1 - i0, j1 - j0))


class NumericPairGroup(PreparedGroup):
    """Numeric ``t[A] op t'[B]``: sign of the value difference."""

    def __init__(self, lookup: np.ndarray, left: np.ndarray, right: np.ndarray) -> None:
        super().__init__(lookup)
        self.left = left
        self.right = right

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        sign = np.sign(self.left[i0:i1, None] - self.right[None, j0:j1])
        return (sign + 1).astype(np.int8)


class StringPairGroup(PreparedGroup):
    """String ``t[A] op t'[B]``: equality of factorization codes."""

    def __init__(self, lookup: np.ndarray, left_codes: np.ndarray, right_codes: np.ndarray) -> None:
        super().__init__(lookup)
        self.left_codes = left_codes
        self.right_codes = right_codes

    def tile_categories(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        equal = self.left_codes[i0:i1, None] == self.right_codes[None, j0:j1]
        categories = np.full(equal.shape, OrderCategory.LESS, dtype=np.int8)
        categories[equal] = OrderCategory.EQUAL
        return categories


def prepare_groups(relation: "Relation", space: "PredicateSpace") -> list[PreparedGroup]:
    """Resolve every predicate group's comparison data and word lookup."""
    prepared: list[PreparedGroup] = []
    for group in space.groups:
        left_column, right_column, form = group.key
        lookup = category_masks(space, group.indices, group.numeric)
        if not lookup.any():
            continue
        left = relation.column(left_column)
        right = relation.column(right_column)
        numeric = left.type.is_numeric and right.type.is_numeric

        if form is PredicateForm.SINGLE_TUPLE:
            per_row = row_categories(relation, left_column, right_column, numeric)
            prepared.append(SingleTupleGroup(lookup, per_row))
        elif numeric:
            prepared.append(
                NumericPairGroup(
                    lookup,
                    left.values.astype(np.float64, copy=False),
                    right.values.astype(np.float64, copy=False),
                )
            )
        else:
            left_codes, right_codes = relation.string_codes(left_column, right_column)
            prepared.append(StringPairGroup(lookup, left_codes, right_codes))
    return prepared


def row_categories(
    relation: "Relation", left_column: str, right_column: str, numeric: bool
) -> np.ndarray:
    """Per-row order category for single-tuple predicates ``t[A] op t[B]``."""
    left = relation.column(left_column).values
    right = relation.column(right_column).values
    if numeric:
        sign = np.sign(left.astype(np.float64) - right.astype(np.float64))
        return (sign + 1).astype(np.int8)
    left_codes, right_codes = relation.string_codes(left_column, right_column)
    categories = np.full(len(left_codes), OrderCategory.LESS, dtype=np.int8)
    categories[left_codes == right_codes] = OrderCategory.EQUAL
    return categories


def category_masks(space: "PredicateSpace", indices: tuple[int, ...], numeric: bool) -> np.ndarray:
    """Per-category, per-word bitmasks for one predicate group.

    Returns an array of shape ``(3, n_words)`` (uint64) where entry
    ``[category, word]`` is the OR of the bits of the group's predicates
    satisfied in that category, restricted to that 64-bit word.
    """
    n_words = n_words_for(len(space))
    table = SATISFIED_BY_CATEGORY if numeric else SATISFIED_BY_CATEGORY_STRING
    masks = np.zeros((3, n_words), dtype=np.uint64)
    for category in OrderCategory:
        satisfied = table[category]
        for index in indices:
            if space[index].operator in satisfied:
                word, bit = divmod(index, _WORD_BITS)
                masks[category, word] |= np.uint64(1) << np.uint64(bit)
    return masks


class TileKernel:
    """Evaluate the evidence words of one tile of the ordered-pair matrix.

    Parameters
    ----------
    groups:
        Prepared predicate groups (see :func:`prepare_groups`).
    n_rows:
        Number of tuples of the relation.
    n_predicates:
        Size of the predicate space (determines the word width).
    include_participation:
        Whether :meth:`run` also aggregates the tuple-participation
        histogram needed by the f2/f3 approximation functions.
    """

    #: Group-class → kernel category-rule code of the fused native tile
    #: pass (see ``tile_plane`` in :mod:`repro.native`).  Unknown
    #: :class:`PreparedGroup` subclasses force the per-group numpy loop.
    _NATIVE_KINDS = {SingleTupleGroup: 0, NumericPairGroup: 1, StringPairGroup: 2}

    def __init__(
        self,
        groups: list[PreparedGroup],
        n_rows: int,
        n_predicates: int,
        include_participation: bool = True,
    ) -> None:
        self.groups = groups
        self.n_rows = int(n_rows)
        self.n_predicates = int(n_predicates)
        self.n_words = n_words_for(n_predicates)
        self.include_participation = bool(include_participation)
        self._packed = self._pack_groups()

    def _pack_groups(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Flatten the groups for the one-call tile kernel.

        Returns ``(kinds, a, b, lookup)`` — per-group category-rule codes,
        the two ``(G, n_rows)`` float64 comparison planes and the contiguous
        ``(G, 3, n_words)`` category→words lookup — or ``None`` when any
        group is not one of the three standard classes (the per-group
        fallback then evaluates custom ``tile_categories`` overrides).
        """
        kinds = []
        for group in self.groups:
            kind = self._NATIVE_KINDS.get(type(group))
            if kind is None:
                return None
            kinds.append(kind)
        n_groups = len(self.groups)
        a = np.zeros((n_groups, self.n_rows), dtype=np.float64)
        b = np.zeros((n_groups, self.n_rows), dtype=np.float64)
        lookup = np.zeros((n_groups, 3, self.n_words), dtype=np.uint64)
        for g, (group, kind) in enumerate(zip(self.groups, kinds)):
            lookup[g] = group.lookup
            if kind == 0:
                a[g] = group.per_row
            elif kind == 1:
                a[g] = group.left
                b[g] = group.right
            else:
                # Factorization codes are small ints; float64 holds them
                # exactly, so equality of codes == equality of doubles.
                a[g] = group.left_codes
                b[g] = group.right_codes
        return np.asarray(kinds, dtype=np.int32), a, b, lookup

    @classmethod
    def from_relation(
        cls,
        relation: "Relation",
        space: "PredicateSpace",
        include_participation: bool = True,
    ) -> "TileKernel":
        """Resolve a relation/predicate-space pair into a compact kernel."""
        return cls(
            prepare_groups(relation, space),
            relation.n_rows,
            len(space),
            include_participation,
        )

    def tile_words(self, tile: "Tile") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair evidence words of one tile, with the pair's tuple ids.

        Returns ``(words, left_ids, right_ids)`` where ``words[k]`` is the
        packed evidence word row of the ordered pair
        ``(left_ids[k], right_ids[k])``; diagonal pairs are excluded.  This
        is the un-deduplicated view :meth:`run` aggregates — the violation
        serving layer replays it to reconstruct *which* pairs carry an
        evidence, something the deduplicated evidence set no longer knows.
        """
        i0, i1, j0, j1 = tile.i0, tile.i1, tile.j0, tile.j1
        if self._packed is not None:
            kinds, a, b, lookup = self._packed
            flat = native_dispatch.get_backend().kernels.tile_plane(
                kinds, a, b, lookup, i0, i1, j0, j1, self.n_words
            )
        else:
            plane = np.zeros((i1 - i0, j1 - j0, self.n_words), dtype=np.uint64)
            for group in self.groups:
                categories = group.tile_categories(i0, i1, j0, j1)
                plane |= group.lookup[categories]
            flat = plane.reshape(-1, self.n_words)
        left_ids = np.repeat(np.arange(i0, i1, dtype=np.int64), j1 - j0)
        right_ids = np.tile(np.arange(j0, j1, dtype=np.int64), i1 - i0)
        keep = left_ids != right_ids
        if not keep.all():
            flat = flat[keep]
            left_ids = left_ids[keep]
            right_ids = right_ids[keep]
        return flat, left_ids, right_ids

    def run(self, tile: "Tile") -> TilePartial | None:
        """Compute one tile's :class:`TilePartial` (``None`` if empty)."""
        flat, left_ids, right_ids = self.tile_words(tile)
        if not len(flat):
            return None

        unique_words, inverse, counts = unique_word_rows(flat)
        part_keys = part_counts = None
        if self.include_participation:
            n = self.n_rows
            pair_ids = inverse
            keys = np.concatenate([pair_ids * n + left_ids, pair_ids * n + right_ids])
            part_keys, part_counts = np.unique(keys, return_counts=True)
        return TilePartial(unique_words, counts, part_keys, part_counts)
