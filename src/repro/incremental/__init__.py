"""Incremental evidence store and violation-serving layer.

The batch pipeline (evidence set → ADCEnum) answers "what are the ADCs of
this snapshot?"; this package answers the production-shaped questions that
follow once data keeps arriving:

* :mod:`repro.incremental.delta` — delta evidence construction: appending
  ``m`` rows to ``n`` costs the ``O(n·m + m²)`` cross/new tile blocks, not
  a full ``O((n+m)²)`` rebuild.  Built on the engine's rectangular tile
  schedules and the associative
  :class:`~repro.engine.partial.PartialEvidenceSet` merge.
* :mod:`repro.incremental.store` — :class:`EvidenceStore`, the long-lived
  holder of the relation snapshot and unfinalized partial, with ``append``
  / cached ``evidence()`` / ``remine(epsilon)``.  Invariant: append +
  finalize is bit-identical to a full rebuild on the concatenated relation.
* :mod:`repro.incremental.serve` — :class:`ViolationService`: per-DC
  violation counts and rates off the word planes, violating-pair
  reconstruction by tile replay, per-row batch admission against an
  epsilon budget, and per-tuple violation scores feeding the repair
  ranking.
"""

from repro.incremental.delta import DeltaEvidenceBuilder, delta_tiles
from repro.incremental.store import EvidenceStore
from repro.incremental.serve import (
    RowAdmission,
    ViolationReport,
    ViolationService,
)

__all__ = [
    "DeltaEvidenceBuilder",
    "delta_tiles",
    "EvidenceStore",
    "RowAdmission",
    "ViolationReport",
    "ViolationService",
]
