"""End-to-end baseline miners (AFASTDC- and DCFinder-style pipelines).

The paper's Figure 7 compares the total running time of three pipelines:

* **ADCMiner** — fast (DCFinder-style) evidence construction + ADCEnum;
* **DCFinder** — fast evidence construction + SearchMC enumeration;
* **AFASTDC** — naive quadratic evidence construction + SearchMC enumeration.

:class:`PairwiseEvidenceBuilder` wraps the naive construction so the
benchmark harness can time the two evidence strategies symmetrically, and
:func:`afastdc_mine` / :func:`dcfinder_mine` assemble the two baseline
pipelines with the same result/timing structure as
:class:`repro.core.miner.ADCMiner`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.fastdc import SearchMC
from repro.core.adc_enum import DiscoveredADC
from repro.core.approximation import ApproximationFunction, F1
from repro.core.evidence import EvidenceSet
from repro.core.evidence_builder import build_evidence_set, build_evidence_set_pairwise
from repro.core.miner import MiningTimings
from repro.core.predicate_space import PredicateSpace, PredicateSpaceConfig, build_predicate_space
from repro.core.sampling import draw_sample
from repro.data.relation import Relation


@dataclass
class PairwiseEvidenceBuilder:
    """The naive (AFASTDC-style) evidence constructor as a named component."""

    include_participation: bool = False

    def build(self, relation: Relation, space: PredicateSpace) -> EvidenceSet:
        """Build the evidence set by scanning every ordered tuple pair."""
        return build_evidence_set_pairwise(
            relation, space, include_participation=self.include_participation
        )


@dataclass
class BaselineResult:
    """Result of one baseline pipeline run (mirrors ``MiningResult``)."""

    adcs: list[DiscoveredADC]
    timings: MiningTimings
    n_predicates: int
    n_evidences: int

    def __len__(self) -> int:
        return len(self.adcs)


def _run_pipeline(
    relation: Relation,
    function: ApproximationFunction,
    epsilon: float,
    sample_fraction: float,
    seed: int | None,
    evidence_method: str,
    space_config: PredicateSpaceConfig | None,
    max_cover_size: int | None,
) -> BaselineResult:
    timings = MiningTimings()

    started = time.perf_counter()
    space = build_predicate_space(relation, space_config)
    timings.predicate_space = time.perf_counter() - started

    started = time.perf_counter()
    plan = draw_sample(relation, sample_fraction, seed)
    timings.sampling = time.perf_counter() - started

    started = time.perf_counter()
    needs_participation = function.requires_participation
    evidence = build_evidence_set(
        plan.sample, space, include_participation=needs_participation, method=evidence_method
    )
    timings.evidence = time.perf_counter() - started

    started = time.perf_counter()
    adcs = SearchMC(evidence, function, epsilon, max_cover_size=max_cover_size).enumerate()
    timings.enumeration = time.perf_counter() - started

    return BaselineResult(adcs, timings, len(space), len(evidence))


def afastdc_mine(
    relation: Relation,
    function: ApproximationFunction | None = None,
    epsilon: float = 0.01,
    sample_fraction: float = 1.0,
    seed: int | None = None,
    space_config: PredicateSpaceConfig | None = None,
    max_cover_size: int | None = None,
) -> BaselineResult:
    """The AFASTDC pipeline: naive evidence construction + SearchMC."""
    return _run_pipeline(
        relation, function or F1(), epsilon, sample_fraction, seed,
        "pairwise", space_config, max_cover_size,
    )


def dcfinder_mine(
    relation: Relation,
    function: ApproximationFunction | None = None,
    epsilon: float = 0.01,
    sample_fraction: float = 1.0,
    seed: int | None = None,
    space_config: PredicateSpaceConfig | None = None,
    max_cover_size: int | None = None,
) -> BaselineResult:
    """The DCFinder pipeline: fast evidence construction + SearchMC."""
    return _run_pipeline(
        relation, function or F1(), epsilon, sample_fraction, seed,
        "tiled", space_config, max_cover_size,
    )
