"""Shared configuration of the experiment harness.

The paper runs on datasets of 32K–1M tuples on a 12-core Xeon with Java
implementations; this reproduction runs pure Python on a laptop, so every
experiment is scaled down.  Two standard configurations are provided:

* ``SMALL_CONFIG`` — the benchmark configuration (hundreds of tuples per
  dataset, DC size capped at 3 predicates, which covers every golden DC);
* ``TINY_CONFIG`` — a configuration small enough for the test suite.

``default_config()`` honours the ``REPRO_SCALE`` environment variable so the
whole benchmark suite can be scaled up or down without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.data.datasets import DATASET_NAMES, Dataset, generate_dataset

#: Per-dataset row counts of the benchmark configuration (relative ordering
#: follows Table 4: Tax and NCVoter largest, Adult smallest).
_BENCHMARK_ROWS: dict[str, int] = {
    "tax": 200,
    "stock": 150,
    "hospital": 140,
    "food": 150,
    "airport": 120,
    "adult": 100,
    "flight": 150,
    "voter": 180,
}

_TINY_ROWS: dict[str, int] = {name: 40 for name in DATASET_NAMES}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    rows:
        Tuples generated per dataset.
    datasets:
        Which datasets to run on (defaults to all eight).
    epsilon:
        Default approximation threshold (the paper uses 0.1 for the runtime
        experiments and 0.01/0.1 for the sampling-quality experiments).
    max_dc_size:
        Cap on predicates per DC.  The paper enumerates unboundedly (Java,
        hours of compute); capping at 3 keeps pure-Python runs tractable
        while covering every golden DC, and is applied identically to
        ADCEnum and the SearchMC baseline.
    seed:
        Seed for data generation, sampling and noise.
    """

    rows: dict[str, int] = field(default_factory=lambda: dict(_BENCHMARK_ROWS))
    datasets: tuple[str, ...] = DATASET_NAMES
    epsilon: float = 0.1
    max_dc_size: int | None = 3
    seed: int = 7

    def dataset(self, name: str) -> Dataset:
        """Generate one configured dataset."""
        return generate_dataset(name, n_rows=self.rows[name], seed=self.seed)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A copy of the configuration with row counts scaled by ``factor``."""
        scaled_rows = {name: max(20, int(count * factor)) for name, count in self.rows.items()}
        return replace(self, rows=scaled_rows)

    def restricted(self, datasets: tuple[str, ...]) -> "ExperimentConfig":
        """A copy restricted to a subset of the datasets."""
        return replace(self, datasets=datasets)


SMALL_CONFIG = ExperimentConfig()
TINY_CONFIG = ExperimentConfig(rows=dict(_TINY_ROWS), datasets=("tax", "stock"), epsilon=0.1)


def default_config() -> ExperimentConfig:
    """The benchmark configuration, scaled by the ``REPRO_SCALE`` env var."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    config = SMALL_CONFIG
    if scale != 1.0:
        config = config.scaled(scale)
    return config
