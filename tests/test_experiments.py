"""Smoke tests for the experiment harness (tiny configurations).

Each experiment function must stay runnable and produce rows with the schema
the benchmark suite prints; the heavy lifting is exercised at benchmark scale
by ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    TINY_CONFIG,
    default_config,
    figure6_enum_vs_searchmc,
    figure7_total_runtime,
    figure8_approx_functions,
    figure10_selection_strategy,
    figure11_sampling_quality,
    figure13_estimator_gap,
    figure14_grecall,
    table4_statistics,
    table5_qualitative,
)
from repro.experiments.runtime import figure9_sample_sizes, figure12_miner_sample_sizes


@pytest.fixture(scope="module")
def tiny():
    return TINY_CONFIG


class TestConfig:
    def test_default_config_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        scaled = default_config()
        assert scaled.rows["tax"] == ExperimentConfig().rows["tax"] // 2

    def test_scaled_and_restricted(self):
        config = ExperimentConfig().scaled(0.5).restricted(("tax",))
        assert config.datasets == ("tax",)
        assert config.rows["tax"] == 100

    def test_dataset_generation(self, tiny):
        dataset = tiny.dataset("tax")
        assert dataset.n_rows == tiny.rows["tax"]


class TestExperimentSchemas:
    def test_table4(self, tiny):
        rows = table4_statistics(tiny)
        assert [row["dataset"] for row in rows] == list(tiny.datasets)

    def test_figure6(self, tiny):
        rows = figure6_enum_vs_searchmc(tiny)
        assert all(row["adcenum_dcs"] == row["searchmc_dcs"] for row in rows)
        assert all(row["adcenum_seconds"] > 0 for row in rows)

    def test_figure7(self, tiny):
        rows = figure7_total_runtime(tiny)
        assert {row["dataset"] for row in rows} == set(tiny.datasets)

    def test_figure8(self, tiny):
        rows = figure8_approx_functions(tiny)
        assert len(rows) == len(tiny.datasets) * 3

    def test_figure9_and_12(self, tiny):
        config = tiny.restricted(("tax",))
        rows9 = figure9_sample_sizes(config)
        rows12 = figure12_miner_sample_sizes(config)
        assert len(rows9) == len(rows12) == 5

    def test_figure10(self, tiny):
        rows = figure10_selection_strategy(tiny)
        assert all("max_intersection_seconds" in row for row in rows)

    def test_figure11(self, tiny):
        config = tiny.restricted(("tax",))
        rows = figure11_sampling_quality(config, sample_fractions=(0.5,), thresholds=(0.1,))
        assert {row["sweep"] for row in rows} == {"sample", "threshold"}
        assert all(0.0 <= row["f1_score"] <= 1.0 for row in rows)

    def test_figure13(self, tiny):
        rows = figure13_estimator_gap(tiny.restricted(("tax",)), sample_fractions=(0.5, 0.8))
        assert all(row["avg_epsilon_minus_phat"] >= 0 for row in rows)

    def test_figure14(self, tiny):
        rows = figure14_grecall(tiny.restricted(("tax",)), thresholds=(1e-3, 1e-1), functions=("f1",))
        assert all(0.0 <= row["g_recall"] <= 1.0 for row in rows)

    def test_table5(self, tiny):
        rows = table5_qualitative(tiny.restricted(("tax",)))
        assert all("approximate_dc" in row and "valid_dc" in row for row in rows)
