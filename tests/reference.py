"""Brute-force reference implementations used to validate the real algorithms.

These are deliberately naive (exponential) and only run on tiny inputs; they
follow the paper's definitions as literally as possible so that agreement
with the optimised implementations is meaningful.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.approximation import ApproximationFunction
from repro.core.dc import DenialConstraint
from repro.core.evidence import EvidenceSet
from repro.core.predicate_space import PredicateSpace, iter_bits


def brute_force_minimal_adc_hitting_sets(
    evidence: EvidenceSet,
    function: ApproximationFunction,
    epsilon: float,
    max_size: int = 4,
) -> set[int]:
    """All minimal approximate hitting sets, by exhaustive subset enumeration.

    Mirrors the restrictions the paper's enumerator applies: at most one
    predicate per column-pair group (operator-only variants are pruned by
    ``RemoveRedundantPreds``), and the corresponding DC must be nontrivial.
    Subsets are capped at ``max_size`` elements to keep the search feasible;
    callers must pass the same cap to the algorithm under test.
    """
    space = evidence.space
    n = len(space)
    passing: set[int] = set()
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(range(n), size):
            if not _one_per_group(space, combo):
                continue
            mask = 0
            for index in combo:
                mask |= 1 << index
            if _dc_of(space, mask).is_trivial():
                continue
            uncovered = evidence.uncovered_indices(mask)
            if function.violation_score(evidence, uncovered) <= epsilon:
                passing.add(mask)
    minimal: set[int] = set()
    for mask in passing:
        has_smaller = any(other != mask and other & mask == other for other in passing)
        if not has_smaller:
            minimal.add(mask)
    return minimal


def _one_per_group(space: PredicateSpace, indices: Iterable[int]) -> bool:
    """Whether the hitting set uses at most one predicate per group."""
    groups = [space[index].group_key for index in indices]
    return len(groups) == len(set(groups))


def _dc_of(space: PredicateSpace, hitting_mask: int) -> DenialConstraint:
    """DC corresponding to a hitting set (complement of every element)."""
    return DenialConstraint(
        space[space.complement_index(index)] for index in iter_bits(hitting_mask)
    )


def brute_force_adcs(
    evidence: EvidenceSet,
    function: ApproximationFunction,
    epsilon: float,
    max_size: int = 4,
) -> set[frozenset]:
    """Normalised predicate sets of all minimal nontrivial ADCs."""
    space = evidence.space
    hitting_sets = brute_force_minimal_adc_hitting_sets(evidence, function, epsilon, max_size)
    return {_dc_of(space, mask).predicates for mask in hitting_sets}


def brute_force_violation_count(relation, constraint: DenialConstraint) -> int:
    """Violations of a DC by direct evaluation of every ordered pair."""
    rows = [relation.row(index) for index in range(relation.n_rows)]
    count = 0
    for i, j in itertools.permutations(range(relation.n_rows), 2):
        if all(p.evaluate(rows[i], rows[j]) for p in constraint.predicates):
            count += 1
    return count
