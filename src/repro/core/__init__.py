"""Core algorithms of the ADC reproduction.

Everything the paper contributes lives here: predicate spaces, evidence
sets, the family of approximation functions, the MMCS and ADCEnum
enumerators, the sampling theory, and the ADCMiner pipeline.
"""

from repro.core.operators import Operator, OrderCategory, operators_satisfiable_together
from repro.core.predicates import (
    Predicate,
    PredicateForm,
    cross_column_predicate,
    same_column_predicate,
    single_tuple_predicate,
)
from repro.core.predicate_space import (
    PredicateSpace,
    PredicateSpaceConfig,
    build_predicate_space,
)
from repro.core.bitset import (
    CriticalityPlanes,
    bits_to_indices,
    full_bits,
    indices_to_bits,
    pack_bool_rows,
    popcount,
    unpack_bits,
)
from repro.core.dc import DenialConstraint, format_dc_set, minimize_dcs
from repro.core.evidence import (
    EvidenceSet,
    TupleParticipation,
    evidence_from_pair_masks,
    lexsort_word_rows,
    mask_to_words,
    masks_to_words,
    words_to_mask,
)
from repro.core.evidence_builder import (
    EVIDENCE_METHODS,
    build_evidence_set,
    build_evidence_set_dense,
    build_evidence_set_pairwise,
    build_evidence_set_tiled,
)
from repro.engine import (
    PartialEvidenceSet,
    TileKernel,
    TileScheduler,
    build_evidence_set_parallel,
    choose_tile_rows,
)
from repro.core.approximation import (
    ApproximationFunction,
    F1,
    F1Adjusted,
    F2,
    F3Greedy,
    STANDARD_FUNCTIONS,
    get_approximation_function,
)
from repro.core.hitting_set import MMCS, minimal_hitting_sets
from repro.core.adc_enum import ADCEnum, DiscoveredADC, enumerate_adcs
from repro.core.sampling import (
    SamplePlan,
    accept_on_sample,
    adjusted_function,
    chebyshev_error_bound,
    draw_sample,
    estimate_violation_fraction,
    normal_confidence_interval,
    sample_threshold,
)
from repro.core.repair import (
    ConflictGraph,
    build_conflict_graph,
    cardinality_repair,
    exact_f3_violation,
    minimum_vertex_cover_exact,
    vertex_cover_2_approximation,
    vertex_cover_greedy,
)
from repro.core.miner import ADCMiner, MiningResult, mine_adcs

__all__ = [
    "Operator",
    "OrderCategory",
    "operators_satisfiable_together",
    "Predicate",
    "PredicateForm",
    "same_column_predicate",
    "cross_column_predicate",
    "single_tuple_predicate",
    "PredicateSpace",
    "PredicateSpaceConfig",
    "build_predicate_space",
    "CriticalityPlanes",
    "bits_to_indices",
    "full_bits",
    "indices_to_bits",
    "pack_bool_rows",
    "popcount",
    "unpack_bits",
    "DenialConstraint",
    "minimize_dcs",
    "format_dc_set",
    "EvidenceSet",
    "TupleParticipation",
    "evidence_from_pair_masks",
    "lexsort_word_rows",
    "mask_to_words",
    "masks_to_words",
    "words_to_mask",
    "EVIDENCE_METHODS",
    "build_evidence_set",
    "build_evidence_set_dense",
    "build_evidence_set_pairwise",
    "build_evidence_set_tiled",
    "PartialEvidenceSet",
    "TileKernel",
    "TileScheduler",
    "build_evidence_set_parallel",
    "choose_tile_rows",
    "ApproximationFunction",
    "F1",
    "F2",
    "F3Greedy",
    "F1Adjusted",
    "STANDARD_FUNCTIONS",
    "get_approximation_function",
    "MMCS",
    "minimal_hitting_sets",
    "ADCEnum",
    "DiscoveredADC",
    "enumerate_adcs",
    "SamplePlan",
    "draw_sample",
    "estimate_violation_fraction",
    "chebyshev_error_bound",
    "normal_confidence_interval",
    "sample_threshold",
    "accept_on_sample",
    "adjusted_function",
    "ConflictGraph",
    "build_conflict_graph",
    "minimum_vertex_cover_exact",
    "vertex_cover_2_approximation",
    "vertex_cover_greedy",
    "exact_f3_violation",
    "cardinality_repair",
    "ADCMiner",
    "MiningResult",
    "mine_adcs",
]
