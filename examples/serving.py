"""Serving walkthrough: a violation server, a client, and live traffic.

The serving layer (``repro.serve``) turns the incremental machinery into a
network service.  This walkthrough stands up a real asyncio server on a
loopback TCP port (via :class:`~repro.serve.server.ServerThread`, the same
harness the tests use), then drives it with the blocking
:class:`~repro.serve.client.ServeClient`:

1. ``create_store`` registers a tenant dataset (the paper's running
   example) and ``remine`` mines + installs its minimal ADCs server-side;
2. ``report`` and ``violations`` answer from *push-based counters* — per-DC
   violating-pair counts maintained at append time, so reads stay cheap no
   matter how many appends are pending an evidence finalize;
3. concurrent ``append`` requests coalesce into a single delta fold (watch
   ``stats`` report fewer flushes than requests);
4. ``check_batch`` screens incoming rows against the epsilon budget before
   they are admitted, and ``violating_pairs`` names the offending tuple
   pairs for repair.

Run with::

    PYTHONPATH=src python examples/serving.py

For a standalone daemon use ``python -m repro.serve --listen host:port``
and connect the same client from any process.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro import running_example
from repro.serve import ServeClient, ServerThread

EPSILON = 0.05


def main() -> None:
    relation = running_example()
    rows = [relation.row(i) for i in range(relation.n_rows)]

    with ServerThread() as (host, port):
        print(f"server listening on {host}:{port}")
        with ServeClient(host, port) as client:
            # 1. Register a tenant and mine its constraints server-side.
            created = client.create_store("tax", rows[:10])
            print(f"created store 'tax' with {created['n_rows']} rows over "
                  f"{created['n_predicates']} predicates")
            mined = client.remine("tax", epsilon=EPSILON, limit=4)
            print(f"mined {mined['mined']} ADCs at epsilon={EPSILON}; serving:")
            for constraint in mined["constraints"]:
                print(f"  {constraint}")

            # 2. Reads come from push-based counters: one consistent
            #    snapshot, no evidence finalize on the read path.
            report = client.report("tax")
            for entry in report["report"]:
                print(f"  DC {entry['dc']}: {entry['count']} violating pairs "
                      f"({entry['rate']:.2%})")

            # 3. Concurrent appends coalesce into shared delta folds.
            def append_one(index: int) -> int:
                with ServeClient(host, port) as own:
                    return own.append("tax", [rows[index]])["coalesced"]

            with ThreadPoolExecutor(5) as pool:
                coalesced = list(pool.map(append_one, range(10, 15)))
            stats = client.stats()["stores"]["tax"]["append"]
            print(f"appended 5 rows from 5 clients in {stats['flushes']} "
                  f"flush(es) (coalesced groups: {sorted(coalesced)})")

            report = client.report("tax")
            drifted = [e for e in report["report"] if e["exceeds_epsilon"]]
            print(f"store now at {report['n_rows']} rows; "
                  f"{len(drifted)} DC(s) drifted past epsilon")

            # 4. Admission control and repair targets, still over the wire.
            verdicts = client.check_batch("tax", [rows[0], rows[7]])
            for entry in verdicts["rows"]:
                label = "admissible" if entry["admissible"] else "REJECT"
                print(f"  incoming row {entry['row']}: worst rate "
                      f"{entry['worst_rate']:.2%} -> {label}")
            pairs = client.violating_pairs("tax", 0, limit=5)
            print(f"  DC 0 violating pairs (first {len(pairs['pairs'])}): "
                  f"{[tuple(p) for p in pairs['pairs']]}")

        print("client disconnected; draining server")
    print("server drained and stopped")


if __name__ == "__main__":
    main()
