"""Incremental updates: append batches, watch violations drift, remine.

A discover-then-monitor deployment on the paper's running example (Table 1):

1. build an :class:`~repro.incremental.store.EvidenceStore` on an initial
   snapshot and mine its minimal ADCs once;
2. stand up a :class:`~repro.incremental.serve.ViolationService` over the
   mined DCs and stream the remaining tuples in as appended batches — each
   append costs only the delta tiles, and the per-DC violation rates are
   re-read from the updated word planes;
3. watch a DC's violation rate drift past the epsilon budget as dirty
   tuples arrive, use ``check_batch`` to see which incoming rows are to
   blame before admitting them, and finally ``remine`` on the grown store.

Run with::

    PYTHONPATH=src python examples/incremental_updates.py
"""

from __future__ import annotations

from repro import EvidenceStore, ViolationService, running_example

EPSILON = 0.02


def main() -> None:
    relation = running_example()
    initial = relation.take(range(10))

    # 1. Seed store + one-time mining pass on the first 10 tuples.
    store = EvidenceStore(initial)
    adcs = store.remine(EPSILON)
    print(f"seeded store on {store.n_rows} rows; mined {len(adcs)} minimal ADCs "
          f"at epsilon={EPSILON}")
    served = sorted(adcs, key=lambda adc: adc.violation_score)[:4]
    service = ViolationService(store, served, epsilon=EPSILON)

    # 2. Stream the remaining tuples in small batches and watch the served
    #    DCs' violation rates move as each delta merges in.
    for lo, hi in ((10, 12), (12, 14), (14, 15)):
        batch = relation.take(range(lo, hi))

        # Admission control: which incoming rows would push a DC past
        # epsilon if appended right now?
        flagged = [entry for entry in service.check_batch(batch) if not entry.admissible]
        for entry in flagged:
            print(f"  warning: batch row {entry.row_index} would raise a DC "
                  f"to {entry.worst_rate:.2%} > {EPSILON:.0%}")

        store.append(batch)
        print(f"appended rows [{lo}, {hi}) -> store at {store.n_rows} rows, "
              f"{store.recorded_pairs} pairs")
        for index in range(len(service)):
            report = service.violations(index)
            drifted = "  <-- past epsilon" if report.exceeds(EPSILON) else ""
            print(f"    DC {index}: {report.count} violating pairs "
                  f"({report.rate:.2%}){drifted}")

    # 3. The drifted constraints, their worst offenders, and a fresh mine.
    for report in service.exceeded():
        ranking = service.repair_ranking(report.constraint)
        print(f"drifted: {report.constraint}")
        print(f"  violation rate {report.rate:.2%}; repair first: tuples {ranking[:3]}")

    remined = store.remine(EPSILON)
    print(f"remined on {store.n_rows} rows: {len(remined)} minimal ADCs "
          f"(evidence served straight from the incremental word planes)")


if __name__ == "__main__":
    main()
