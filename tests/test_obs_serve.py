"""End-to-end observability through the serving stack.

Boots real servers (:class:`~repro.serve.server.ServerThread`) and checks
the three exposure surfaces the obs layer promises: the ``metrics`` wire
op (JSON snapshot and Prometheus text), the ``--metrics-port`` HTTP
endpoint (well-formed exposition covering the serve/durability/cluster/
mining series), and per-request trace spans whose disjoint segments sum
to the request's wall latency.  The process metrics registry is global
and cumulative, so every assertion here is a before/after delta or a
lower bound, never an absolute count.
"""

from __future__ import annotations

import random
import re
import time
import urllib.request

import pytest

from repro.cluster.local import LocalCluster
from repro.obs import metrics as obs_metrics
from repro.obs.registry import get_registry
from repro.serve import ServeClient, ServerThread


def random_rows(n: int, seed: int, domain: int = 6) -> list[dict]:
    rng = random.Random(seed)
    return [
        {"A": rng.randrange(domain), "B": rng.randrange(domain),
         "C": f"v{rng.randrange(domain)}"}
        for _ in range(n)
    ]


def scrape(address: tuple[str, int]) -> str:
    url = f"http://{address[0]}:{address[1]}/metrics"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


#: One exposition sample line: name, optional {labels}, numeric value.
_SAMPLE = re.compile(
    r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)


class TestMetricsOp:
    def test_json_snapshot_counts_requests(self, tmp_path):
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("mt1", random_rows(40, seed=1))
                client.append("mt1", random_rows(10, seed=2))
                result = client.metrics()
                assert result["format"] == "json"
                assert result["enabled"] is True
                families = result["metrics"]
                requests = families["repro_serve_requests_total"]
                assert requests["type"] == "counter"
                appended = [
                    s for s in requests["samples"]
                    if s["labels"]
                    == {"op": "append", "store": "mt1", "code": "ok"}
                ]
                assert appended and appended[0]["value"] >= 1
                latency = families["repro_serve_request_seconds"]
                assert any(
                    s["labels"] == {"op": "append"} and s["count"] >= 1
                    for s in latency["samples"]
                )

    def test_text_format_matches_http_exposition(self):
        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                client.ping()
                result = client.metrics(format="text")
                assert result["format"] == "text"
                assert (
                    "# TYPE repro_serve_requests_total counter"
                    in result["text"]
                )

    def test_unknown_format_rejected(self):
        from repro.serve import ServeError

        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.metrics(format="xml")
                assert excinfo.value.code == "bad_request"

    def test_error_codes_labelled(self):
        from repro.serve import ServeError

        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(ServeError):
                    client.report("no-such-store")
                families = client.metrics()["metrics"]
                samples = families["repro_serve_requests_total"]["samples"]
                assert any(
                    s["labels"]["op"] == "report"
                    and s["labels"]["code"] == "unknown_store"
                    and s["value"] >= 1
                    for s in samples
                )


class TestRequestHygiene:
    def test_client_supplied_span_key_is_stripped(self, tmp_path):
        """A smuggled ``_span`` field must not reach the append scheduler.

        Regression: a raw ``{"op": "append", ..., "_span": {}}`` request
        used to hand a plain dict to the flush loop as the trace span,
        crashing it and stranding every co-batched append.
        """
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("hy1", random_rows(20, seed=11))
                smuggled = client.request(
                    "append", store="hy1",
                    rows=random_rows(5, seed=12), _span={"bogus": 1},
                )
                assert smuggled["appended"] == 5
                # The flush loop survived: later appends still commit.
                follow_up = client.append("hy1", random_rows(5, seed=13))
                assert follow_up["appended"] == 5

    def test_invented_ops_and_stores_collapse_to_sentinel_labels(self):
        from repro.serve import ServeError

        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(ServeError):
                    client.request("hy_no_such_op_x")
                with pytest.raises(ServeError):
                    client.request("report", store="hy_no_such_store_y")
                samples = client.metrics()["metrics"][
                    "repro_serve_requests_total"]["samples"]
                ops = {s["labels"]["op"] for s in samples}
                stores = {s["labels"]["store"] for s in samples}
                assert "_unknown" in ops and "_unknown" in stores
                assert "hy_no_such_op_x" not in ops
                assert "hy_no_such_store_y" not in stores


class TestPrometheusEndpoint:
    def test_exposition_well_formed_and_covers_subsystems(self, tmp_path):
        thread = ServerThread(data_dir=tmp_path, metrics_port=0)
        try:
            host, port = thread.address
            assert thread.metrics_address is not None
            with ServeClient(host, port, timeout=120.0) as client:
                client.create_store("pe2", random_rows(60, seed=5))
                client.append("pe2", random_rows(30, seed=6))
                client.remine("pe2", epsilon=0.1)
            text = scrape(thread.metrics_address)

            # Structurally well-formed: every line is a comment or a
            # sample; histograms' cumulative buckets are monotone.
            help_names, type_names = set(), set()
            for line in text.splitlines():
                if line.startswith("# HELP "):
                    help_names.add(line.split(" ", 3)[2])
                elif line.startswith("# TYPE "):
                    type_names.add(line.split(" ", 3)[2])
                else:
                    assert _SAMPLE.match(line), f"malformed line: {line!r}"
            assert help_names == type_names

            # Group buckets by (name, labels-without-le): each child's
            # cumulative counts must be monotone in exposition order.
            bucket_counts: dict[str, list[int]] = {}
            for line in text.splitlines():
                if "_bucket{" in line:
                    name, labels = line.split("{", 1)
                    labels = re.sub(r'le="[^"]*",?', "", labels.split("}")[0])
                    bucket_counts.setdefault(f"{name}{{{labels}}}", []).append(
                        int(float(line.rsplit(" ", 1)[1]))
                    )
            assert bucket_counts, "no histogram buckets in exposition"
            for series, counts in bucket_counts.items():
                assert counts == sorted(counts), f"{series} not cumulative"

            # Every subsystem's series are visible...
            for family in (
                "repro_serve_requests_total",
                "repro_serve_request_seconds",
                "repro_serve_connections",
                "repro_serve_append_pending_rows",
                "repro_wal_records_total",
                "repro_wal_fsync_seconds",
                "repro_durability_recovery_stores_total",
                "repro_cluster_tasks_dispatched_total",
                "repro_cluster_submit_seconds",
                "repro_mining_runs_total",
                "repro_mining_nodes_visited",
                "repro_evidence_tiles_total",
            ):
                assert f"# TYPE {family} " in text, family

            # ...and the exercised ones carry real samples.
            assert re.search(
                r'repro_serve_requests_total\{[^}]*op="append"[^}]*\} [1-9]',
                text,
            )
            assert re.search(r"repro_wal_records_total [1-9]", text)
            assert re.search(
                r'repro_mining_runs_total\{store="pe2"\} [1-9]', text
            )
            assert re.search(
                r'repro_mining_nodes_visited\{store="pe2"\} [1-9]', text
            )
        finally:
            thread.stop()

    def test_404_and_405(self, tmp_path):
        thread = ServerThread(metrics_port=0)
        try:
            address = thread.metrics_address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{address[0]}:{address[1]}/nope", timeout=10.0
                )
            assert excinfo.value.code == 404
            request = urllib.request.Request(
                f"http://{address[0]}:{address[1]}/metrics",
                data=b"x",  # POST
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 405
        finally:
            thread.stop()

    def test_healthz_reports_liveness_json(self, tmp_path):
        import json

        thread = ServerThread(data_dir=tmp_path, metrics_port=0)
        try:
            host, port = thread.address
            with ServeClient(host, port) as client:
                client.create_store("hz1", random_rows(20, seed=9))
            address = thread.metrics_address
            with urllib.request.urlopen(
                f"http://{address[0]}:{address[1]}/healthz", timeout=10.0
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "application/json"
                )
                health = json.loads(response.read().decode("utf-8"))
            assert health["status"] == "ok"
            assert health["stores"] == 1
            assert health["recovery_failures"] == 0
            assert health["uptime_seconds"] >= 0.0
            assert health["requests_served"] >= 1
        finally:
            thread.stop()


class TestTraceSpans:
    def test_traced_append_segments_sum_to_wall_latency(self, tmp_path):
        """The acceptance contract: queue + fold + journal_fsync + commit +
        ack account for the traced append's latency to within 10%."""
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port, timeout=120.0) as client:
                # Sized so the fold dominates: client-side encode and the
                # loopback round trip must stay inside the 10% tolerance.
                client.create_store("tr1", random_rows(1000, seed=7))
                batch = random_rows(600, seed=8)
                started = time.perf_counter()
                result = client.append("tr1", batch, trace=True)
                client_wall = time.perf_counter() - started
                trace = result["trace"]
                assert trace["op"] == "append"
                assert trace["store"] == "tr1"
                segments = trace["segments"]
                for name in ("queue", "fold", "journal_fsync", "commit",
                             "ack"):
                    assert name in segments, segments
                total = sum(segments.values())
                assert total == pytest.approx(trace["seconds"], rel=0.10)
                assert total == pytest.approx(client_wall, rel=0.10)

    def test_trace_id_echoed_and_absent_without_request(self):
        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("tr2", random_rows(30, seed=9))
                plain = client.append("tr2", random_rows(5, seed=10))
                assert "trace" not in plain
                traced = client.append(
                    "tr2", random_rows(5, seed=11), trace="deadbeef00112233"
                )
                assert traced["trace"]["trace_id"] == "deadbeef00112233"

    def test_traced_remine_has_finalize_and_enumerate(self):
        with ServerThread() as (host, port):
            with ServeClient(host, port, timeout=120.0) as client:
                client.create_store("tr3", random_rows(50, seed=12))
                result = client.remine("tr3", epsilon=0.1, trace=True)
                segments = result["trace"]["segments"]
                assert "finalize" in segments
                assert "enumerate" in segments
                assert "ack" in segments


class TestRemineEnvelope:
    def test_enumeration_statistics_returned(self):
        with ServerThread() as (host, port):
            with ServeClient(host, port, timeout=120.0) as client:
                client.create_store("re1", random_rows(50, seed=13))
                result = client.remine("re1", epsilon=0.1)
                stats = result["enumeration"]
                assert stats["recursive_calls"] > 0
                assert stats["outputs"] == result["mined"] or (
                    # a limit clips the installed list, not the search
                    stats["outputs"] >= result["mined"]
                )
                assert stats["elapsed_seconds"] > 0.0
                assert stats["nodes_per_second"] > 0.0
                assert "max_stack_depth" in stats["extra"]


class TestClusterSeries:
    def test_cluster_counters_fire_through_server(self, tmp_path):
        dispatched_before = sum(
            child.value
            for _, child in obs_metrics.CLUSTER_DISPATCHED._items()
        )
        with LocalCluster(2, transport="local") as cluster:
            with ServerThread(cluster=cluster) as (host, port):
                with ServeClient(host, port, timeout=120.0) as client:
                    client.create_store("cl1", random_rows(300, seed=14))
                    client.append("cl1", random_rows(200, seed=15))
        dispatched_after = sum(
            child.value
            for _, child in obs_metrics.CLUSTER_DISPATCHED._items()
        )
        assert dispatched_after > dispatched_before
        results = {
            labels: child.value
            for labels, child in obs_metrics.CLUSTER_RESULTS._items()
        }
        assert sum(results.values()) > 0


class TestRecoverySeries:
    def test_recovery_outcome_counted(self, tmp_path):
        before = obs_metrics.RECOVERY_STORES.value_labels("recovered")
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("rec1", random_rows(30, seed=16))
                client.append("rec1", random_rows(10, seed=17))
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                assert "rec1" in client.ping()["stores"]
        after = obs_metrics.RECOVERY_STORES.value_labels("recovered")
        assert after == before + 1


class TestEnabledGate:
    def test_disabled_registry_stops_counting_but_not_tracing(self):
        registry = get_registry()
        with ServerThread() as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("gate1", random_rows(30, seed=18))
                before = obs_metrics.SERVE_REQUESTS.value_labels(
                    "append", "gate1", "ok"
                )
                registry.enabled = False
                try:
                    result = client.append(
                        "gate1", random_rows(5, seed=19), trace=True
                    )
                    # Tracing is per-request opt-in, independent of the gate.
                    assert "fold" in result["trace"]["segments"]
                    after = obs_metrics.SERVE_REQUESTS.value_labels(
                        "append", "gate1", "ok"
                    )
                    assert after == before
                finally:
                    registry.enabled = True
