"""Minimal asyncio HTTP endpoint serving Prometheus text exposition.

Stdlib only, runs on the server's own event loop (no extra threads): each
connection reads one request, answers ``GET /metrics`` (or ``/``) with the
registry rendered by :func:`~repro.obs.prometheus.render_text`, and closes
(``Connection: close`` — scrapers reconnect per scrape).  ``GET /healthz``
is a liveness probe distinct from the scrape: 200 with a small JSON body
(uptime plus whatever the owner's ``health`` callable reports), so an
orchestrator can restart a wedged process without parsing an exposition.
Anything else gets a 404.  Malformed requests are dropped silently; this
listener is meant for a trusted scrape network, same as the serving port.

``collect`` lets the owner replace the plain registry render with a richer
one — the serving layer plugs in the cluster-federated exposition
(:func:`~repro.obs.federate.render_federated`) there.  It may block on
worker round-trips, so it runs in the loop's default executor.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable

from repro.obs.prometheus import CONTENT_TYPE, render_text
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsHTTPServer"]

_MAX_REQUEST_BYTES = 8192


class MetricsHTTPServer:
    """``GET /metrics`` (+ ``/healthz``) over a loop-local ``asyncio.start_server``."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str,
        port: int,
        collect: Callable[[], str] | None = None,
        health: Callable[[], dict] | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.collect = collect
        self.health = health
        self._started_at = time.monotonic()
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def _render(self) -> bytes:
        if self.collect is None:
            return render_text(self.registry).encode("utf-8")
        loop = asyncio.get_running_loop()
        try:
            text = await loop.run_in_executor(None, self.collect)
        except Exception:
            # A federation hiccup must not break the local scrape.
            text = render_text(self.registry)
        return text.encode("utf-8")

    def _health_body(self) -> bytes:
        body = {"status": "ok", "uptime_seconds": round(
            time.monotonic() - self._started_at, 3
        )}
        if self.health is not None:
            try:
                body.update(self.health())
            except Exception as error:
                body["health_error"] = repr(error)
        return (json.dumps(body) + "\n").encode("utf-8")

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0
                )
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError):
                return
            if len(request) > _MAX_REQUEST_BYTES:
                return
            parts = request.split(b" ", 2)
            if len(parts) < 3 or parts[0] not in (b"GET", b"HEAD"):
                writer.write(_response(405, b"method not allowed\n"))
                return
            path = parts[1].split(b"?", 1)[0]
            if path in (b"/metrics", b"/"):
                body = await self._render()
                if parts[0] == b"HEAD":
                    body = b""
                writer.write(_response(200, body, content_type=CONTENT_TYPE))
            elif path == b"/healthz":
                body = self._health_body()
                if parts[0] == b"HEAD":
                    body = b""
                writer.write(
                    _response(200, body, content_type="application/json")
                )
            else:
                writer.write(_response(404, b"not found\n"))
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


def _response(status: int, body: bytes,
              content_type: str = "text/plain; charset=utf-8") -> bytes:
    reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}[status]
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body
