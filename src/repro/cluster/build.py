"""Cluster-backed evidence construction (``method="cluster"``).

The distributed twin of :func:`~repro.engine.parallel.build_evidence_set_parallel`:
the same :class:`~repro.engine.kernel.TileKernel`, the same
pair-count-balanced shard schedule, but fanned over a
:class:`~repro.cluster.coordinator.ClusterCoordinator` instead of a process
pool, and reduced with a balanced binary *merge tree* rather than a left
fold.  Because :meth:`PartialEvidenceSet.merge` is associative/commutative
and finalization orders evidences canonically, any transport, worker count,
failure schedule, or merge-tree shape finalizes bit-identically to the
serial tiled builder — the invariant the chaos tests and
``benchmarks/bench_cluster.py`` enforce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.contexts import TileFoldContext, shard_tasks
from repro.cluster.local import resolve_coordinator
from repro.core.evidence import EvidenceSet, n_words_for
from repro.engine.kernel import TileKernel
from repro.engine.parallel import parallel_tile_rows
from repro.engine.partial import PartialEvidenceSet
from repro.engine.scheduler import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    TileScheduler,
    choose_tile_rows,
)

if TYPE_CHECKING:
    from repro.core.predicate_space import PredicateSpace
    from repro.data.relation import Relation
    from repro.engine.scheduler import Tile

#: Shard tasks issued per worker; >1 smooths stragglers and re-balances
#: naturally after a worker death (same rationale as the process pool's
#: :data:`~repro.engine.parallel.SHARDS_PER_WORKER`).
TASKS_PER_WORKER = 2


def merge_partials_tree(partials: list[PartialEvidenceSet]) -> PartialEvidenceSet:
    """Reduce partials with a balanced binary merge tree.

    A tree keeps every intermediate merge between partials of comparable
    size — ``O(log k)`` levels instead of the left fold's ``k`` sequential
    absorptions into one ever-growing accumulator — and is the shape a
    multi-level (per-rack, per-datacenter) reduction would use.  Any tree
    finalizes identically (property-tested in
    ``tests/test_engine_properties.py``).
    """
    if not partials:
        raise ValueError("cannot merge zero partials")
    layer = list(partials)
    while len(layer) > 1:
        merged = [
            layer[index].merge(layer[index + 1])
            for index in range(0, len(layer) - 1, 2)
        ]
        if len(layer) % 2:
            merged.append(layer[-1])
        layer = merged
    return layer[0]


def fold_tiles_cluster(
    kernel: TileKernel,
    tiles: tuple["Tile", ...],
    cluster: object,
    tasks_per_worker: int = TASKS_PER_WORKER,
) -> PartialEvidenceSet:
    """Fold kernel results over ``tiles`` on a cluster; one merged partial.

    The distributed counterpart of
    :func:`~repro.engine.parallel.fold_tiles_pooled`: tiles are balanced
    into ``tasks_per_worker × n_workers`` shard ranges, the kernel ships
    once per worker inside the :class:`TileFoldContext`, and the returned
    partials are reduced with :func:`merge_partials_tree`.
    """
    coordinator = resolve_coordinator(cluster)
    tiles = tuple(tiles)
    if not tiles:
        return PartialEvidenceSet(
            kernel.n_rows, kernel.n_words, kernel.include_participation
        )
    n_workers = max(coordinator.n_alive, 1)
    tasks, weights = shard_tasks(tiles, max(1, tasks_per_worker * n_workers))
    context = TileFoldContext(kernel, tiles)
    partials = coordinator.submit(context, tasks, weights)
    return merge_partials_tree(partials)


def build_evidence_set_cluster(
    relation: "Relation",
    space: "PredicateSpace",
    cluster: object,
    include_participation: bool = True,
    tile_rows: int | None = None,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EvidenceSet:
    """Build ``Evi(D)`` over a worker cluster (``method="cluster"``).

    Parameters
    ----------
    relation:
        The database ``D`` (or a sample of it).
    space:
        Predicate space produced by
        :func:`repro.core.predicate_space.build_predicate_space`.
    cluster:
        A :class:`~repro.cluster.coordinator.ClusterCoordinator` with
        registered workers, or a :class:`~repro.cluster.local.LocalCluster`.
    include_participation:
        Whether to also build the per-evidence tuple-participation
        structure (needed by the f2/f3 approximation functions).
    tile_rows:
        Tile edge length; ``None`` (default) selects it adaptively from
        the memory budget, word width and worker count, exactly as the
        process-pool builder does.
    memory_budget_bytes:
        Transient-memory budget shared by the workers' concurrent kernels.
    """
    coordinator = resolve_coordinator(cluster)
    n = relation.n_rows
    if n < 2:
        return EvidenceSet(space, [], [], n, [] if include_participation else None)
    n_words = n_words_for(len(space))
    n_workers = max(coordinator.n_alive, 1)
    if tile_rows is None:
        if n_workers > 1:
            tile_rows = parallel_tile_rows(n, n_words, n_workers, memory_budget_bytes)
        else:
            tile_rows = choose_tile_rows(n, n_words, memory_budget_bytes)
    scheduler = TileScheduler(n, tile_rows=tile_rows, n_words=n_words)
    kernel = TileKernel.from_relation(relation, space, include_participation)
    return fold_tiles_cluster(kernel, scheduler.tiles(), coordinator).finalize(space)
