"""Push-based per-DC violation counters.

:class:`ViolationCounters` keeps one violating-pair count per served DC and
maintains it *forward* from each appended batch's delta
:class:`~repro.engine.partial.PartialEvidenceSet` — the incremental-
maintenance move: instead of finalizing the store's evidence on every read
(a full lexsort over all distinct evidences, invalidated by every append),
the counters pay one pass over the delta's distinct words at append time
and make every read O(#DCs).

Correctness rests on two facts:

* a DC's violating-pair count is ``sum of multiplicities over evidence
  words its hitting set misses`` — a sum, so it distributes over any
  partition of the pairs into partials, and duplicate word rows group
  without changing it (:meth:`PartialEvidenceSet.word_histogram` documents
  this contract);
* the delta partial the store hands its append listeners is exactly what
  was merged into the stored partial, so ``seed count + sum of delta
  contributions`` equals the count a fresh finalize would report — *bit-
  identical*, not approximately (property-tested over random interleavings
  in ``tests/test_serve.py``).

Readers are lock-free: every update builds a new ``(counts, n_rows)``
state tuple and swaps the reference atomically, so a reader on another
thread sees either the pre-append or the post-append state, never a
half-updated mixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.engine.partial import PartialEvidenceSet
    from repro.incremental.store import EvidenceStore


@dataclass(frozen=True)
class CounterSnapshot:
    """One consistent read of the counters: counts + the rows they cover."""

    counts: tuple[int, ...]
    n_rows: int

    @property
    def total_pairs(self) -> int:
        """Ordered distinct pairs of the covered relation."""
        return self.n_rows * (self.n_rows - 1)

    def rate(self, index: int) -> float:
        """Violation rate of one DC (``count / total_pairs``)."""
        total = self.total_pairs
        return self.counts[index] / total if total else 0.0


def partial_violation_counts(
    partial: "PartialEvidenceSet", hitting_words: Sequence[np.ndarray]
) -> np.ndarray:
    """Per-DC violating-pair counts contributed by one partial.

    One histogram pass over the partial's distinct words, then one packed
    intersection per DC: a word violates a DC when it shares no bit with
    the DC's hitting-set word vector.
    """
    counts = np.zeros(len(hitting_words), dtype=np.int64)
    if not len(hitting_words):
        return counts
    words, totals = partial.word_histogram()
    if not len(words):
        return counts
    for index, hitting in enumerate(hitting_words):
        violating = ~np.bitwise_and(words, hitting).any(axis=1)
        counts[index] = int(totals[violating].sum())
    return counts


class ViolationCounters:
    """Per-DC violation counts maintained from delta partials alone.

    Parameters
    ----------
    hitting_words:
        Per-DC hitting-set word vectors, in constraint order (what
        :attr:`~repro.incremental.serve.ViolationService.hitting_words`
        exposes) — the counters count against identical bit patterns.
    store:
        The evidence store to seed from and follow.  The seed pass runs
        over the store's *unfinalized* partial, and an append listener is
        registered so every committed batch's delta flows in
        automatically; no call on this object ever finalizes evidence.
    """

    def __init__(
        self, hitting_words: Sequence[np.ndarray], store: "EvidenceStore"
    ) -> None:
        self._hitting_words = [np.asarray(words, dtype=np.uint64) for words in hitting_words]
        self._store = store
        seed = partial_violation_counts(store.partial, self._hitting_words)
        self._state: tuple[np.ndarray, int] = (seed, store.n_rows)
        self.applied_deltas = 0
        store.add_append_listener(self._on_append)

    def __len__(self) -> int:
        return len(self._hitting_words)

    def detach(self) -> None:
        """Stop following the store (when a new constraint set supersedes us)."""
        self._store.remove_append_listener(self._on_append)

    def _on_append(
        self, delta: "PartialEvidenceSet", n_before: int, n_after: int
    ) -> None:
        """Fold one committed batch's delta contribution into the counts.

        Runs synchronously inside :meth:`EvidenceStore.append` (possibly on
        an executor thread); the new state is built on the side and the
        reference swapped last, keeping concurrent readers consistent.
        """
        counts, _ = self._state
        self._state = (counts + partial_violation_counts(delta, self._hitting_words), n_after)
        self.applied_deltas += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> CounterSnapshot:
        """A consistent (counts, n_rows) view — the read path of the server."""
        counts, n_rows = self._state
        return CounterSnapshot(tuple(int(count) for count in counts), n_rows)

    def counts(self) -> np.ndarray:
        """Current per-DC counts (a copy, safe to hand out)."""
        return self._state[0].copy()

    @property
    def n_rows(self) -> int:
        """Rows covered by the current counts."""
        return self._state[1]
