"""Qualitative experiments (Figure 14 and Table 5).

Clean datasets are dirtied with the Section 8.4 noise models (errors spread
over cells vs concentrated in few tuples) and ADCs are mined at a range of
thresholds; the G-recall against the golden DCs is reported per
approximation function (Figure 14), and the recovered approximate DC is
contrasted with the valid DC discovered on the same dirty data (Table 5).
"""

from __future__ import annotations

from repro.analysis.metrics import g_recall, recovered_golden
from repro.core.approximation import STANDARD_FUNCTIONS
from repro.core.miner import ADCMiner
from repro.data.noise import add_concentrated_noise, add_spread_noise
from repro.experiments.config import ExperimentConfig

#: Thresholds swept by Figure 14 (the paper sweeps 1e-6 .. 1e-1).
FIG14_THRESHOLDS: tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1)

#: Cell corruption probability.  The paper uses 0.001 on 10K-tuple samples;
#: the scaled-down datasets use a proportionally larger rate so that a
#: comparable number of cells is dirtied.
NOISE_CELL_PROBABILITY = 0.005

#: Per-function thresholds found best by the paper (Section 8.4).
BEST_THRESHOLDS: dict[str, float] = {"f1": 1e-4, "f2": 1e-2, "f3": 1e-1}


def _dirty_variants(config: ExperimentConfig, name: str):
    """Spread-noise and concentrated-noise copies of one dataset."""
    dataset = config.dataset(name)
    spread, _ = add_spread_noise(dataset.relation, NOISE_CELL_PROBABILITY, seed=config.seed)
    concentrated, _ = add_concentrated_noise(
        dataset.relation, NOISE_CELL_PROBABILITY, seed=config.seed
    )
    return dataset, {"spread": spread, "concentrated": concentrated}


def figure14_grecall(
    config: ExperimentConfig,
    thresholds: tuple[float, ...] = FIG14_THRESHOLDS,
    functions: tuple[str, ...] = tuple(STANDARD_FUNCTIONS),
) -> list[dict[str, object]]:
    """Figure 14: G-recall vs threshold, per function and noise model."""
    rows = []
    for name in config.datasets:
        dataset, variants = _dirty_variants(config, name)
        for noise_kind, dirty in variants.items():
            for function_name in functions:
                for epsilon in thresholds:
                    miner = ADCMiner(function_name, epsilon,
                                     max_dc_size=config.max_dc_size, seed=config.seed)
                    result = miner.mine(dirty)
                    rows.append({
                        "dataset": name,
                        "noise": noise_kind,
                        "function": function_name,
                        "epsilon": epsilon,
                        "g_recall": g_recall(result.constraints, dataset.golden),
                        "dcs": len(result),
                    })
    return rows


def figure14_valid_dc_grecall(config: ExperimentConfig) -> list[dict[str, object]]:
    """The parenthesised numbers of Figure 14: G-recall of *valid* DCs (eps = 0)."""
    rows = []
    for name in config.datasets:
        dataset, variants = _dirty_variants(config, name)
        for noise_kind, dirty in variants.items():
            miner = ADCMiner("f1", 0.0, max_dc_size=config.max_dc_size, seed=config.seed)
            result = miner.mine(dirty)
            rows.append({
                "dataset": name,
                "noise": noise_kind,
                "g_recall_valid": g_recall(result.constraints, dataset.golden),
            })
    return rows


def table5_qualitative(
    config: ExperimentConfig,
    functions: tuple[str, ...] = ("f1",),
) -> list[dict[str, object]]:
    """Table 5: recovered approximate DC vs the valid DC found on dirty data.

    For each dataset the golden DCs recovered at the per-function best
    threshold are listed next to an example valid DC (epsilon = 0) involving
    the same leading attributes, illustrating how exact discovery compensates
    for errors by appending predicates.
    """
    rows = []
    for name in config.datasets:
        dataset, variants = _dirty_variants(config, name)
        dirty = variants["spread"]
        valid_result = ADCMiner("f1", 0.0, max_dc_size=config.max_dc_size,
                                seed=config.seed).mine(dirty)
        for function_name in functions:
            epsilon = BEST_THRESHOLDS.get(function_name, config.epsilon)
            approx_result = ADCMiner(function_name, epsilon,
                                     max_dc_size=config.max_dc_size, seed=config.seed).mine(dirty)
            matched = recovered_golden(approx_result.constraints, dataset.golden)
            for golden_dc in matched[:2]:
                valid_example = _matching_valid_dc(golden_dc, valid_result.constraints)
                rows.append({
                    "dataset": name,
                    "function": function_name,
                    "approximate_dc": str(golden_dc),
                    "valid_dc": str(valid_example) if valid_example is not None else "(none found)",
                })
    return rows


def _matching_valid_dc(golden_dc, valid_constraints):
    """A valid DC sharing at least one predicate with the golden DC, if any."""
    golden_predicates = golden_dc.normalized().predicates
    best = None
    best_overlap = 0
    for constraint in valid_constraints:
        overlap = len(constraint.predicates & golden_predicates)
        if overlap > best_overlap:
            best, best_overlap = constraint, overlap
    return best
