"""Shared fixtures of the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.approximation import F1
from repro.core.evidence_builder import build_evidence_set
from repro.core.predicate_space import PredicateSpaceConfig, build_predicate_space
from repro.data.relation import Relation, running_example


@pytest.fixture(scope="session")
def example_relation() -> Relation:
    """The 15-tuple running example of Table 1."""
    return running_example()


@pytest.fixture(scope="session")
def example_space(example_relation):
    """Predicate space of the running example."""
    return build_predicate_space(example_relation)


@pytest.fixture(scope="session")
def example_evidence(example_relation, example_space):
    """Evidence set of the running example (with tuple participation)."""
    return build_evidence_set(example_relation, example_space, include_participation=True)


@pytest.fixture(scope="session")
def f1_function() -> F1:
    """The pair-based approximation function."""
    return F1()


def make_random_relation(
    n_rows: int = 8,
    n_string_columns: int = 2,
    n_numeric_columns: int = 2,
    domain_size: int = 3,
    seed: int = 0,
    name: str = "random",
) -> Relation:
    """Small random relation used by correctness and property tests.

    Small domains force plenty of coincidences (equalities, order ties) so
    the evidence sets are interesting despite the tiny size.
    """
    rng = random.Random(seed)
    columns: dict[str, list[object]] = {}
    for index in range(n_string_columns):
        columns[f"S{index}"] = [
            f"v{rng.randrange(domain_size)}" for _ in range(n_rows)
        ]
    for index in range(n_numeric_columns):
        columns[f"N{index}"] = [rng.randrange(domain_size) for _ in range(n_rows)]
    return Relation(name, columns)


@pytest.fixture
def small_relation() -> Relation:
    """A deterministic tiny relation for exhaustive cross-checks."""
    return make_random_relation(n_rows=7, seed=42)


@pytest.fixture(scope="session")
def small_space_config() -> PredicateSpaceConfig:
    """Predicate space configuration keeping tiny test spaces tiny."""
    return PredicateSpaceConfig(include_cross_column=False, include_single_tuple=False)
