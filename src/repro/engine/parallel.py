"""Process-pool evidence construction.

:func:`build_evidence_set_parallel` fans the tile schedule out over a
:class:`concurrent.futures.ProcessPoolExecutor`: the picklable
:class:`~repro.engine.kernel.TileKernel` and tile list are shipped once per
worker through the pool initializer, tasks are plain ``(start, stop)``
shard ranges, and every worker returns one
:class:`~repro.engine.partial.PartialEvidenceSet` that the parent merges
and finalizes.  Because the merge is associative/commutative and
finalization orders evidences canonically, the result is bit-identical to
the serial tiled builder's.

Exposed as ``method="parallel"`` of
:func:`repro.core.evidence_builder.build_evidence_set` and via the
``n_workers`` knob of :class:`repro.core.miner.ADCMiner`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro.core.evidence import EvidenceSet, n_words_for
from repro.engine.kernel import TileKernel
from repro.engine.partial import PartialEvidenceSet
from repro.engine.scheduler import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    TileScheduler,
    choose_tile_rows,
    shard_tiles,
)
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:
    from repro.core.predicate_space import PredicateSpace
    from repro.data.relation import Relation
    from repro.engine.scheduler import Tile

#: Shards handed to the pool per worker; >1 smooths load imbalance from
#: tiles whose evidence distributions dedup at different speeds.
SHARDS_PER_WORKER = 2

# Worker-process state, installed once by the pool initializer so that the
# per-shard tasks only carry two integers.
_worker_kernel: TileKernel | None = None
_worker_tiles: tuple["Tile", ...] = ()


def _init_worker(kernel: TileKernel, tiles: tuple["Tile", ...]) -> None:
    global _worker_kernel, _worker_tiles
    _worker_kernel = kernel
    _worker_tiles = tiles


def fold_tiles(kernel: TileKernel, tiles: tuple["Tile", ...]) -> PartialEvidenceSet:
    """Fold kernel results over a tile sequence into one partial."""
    partial = PartialEvidenceSet(
        kernel.n_rows, kernel.n_words, kernel.include_participation
    )
    # Tile-throughput metrics: in pool/cluster workers these land in the
    # worker process's own registry; the serving layer's default
    # (store_workers=1, serial in-process folds) reports here directly.
    for tile in tiles:
        tile_start = time.perf_counter()
        tile_partial = kernel.run(tile)
        obs_metrics.EVIDENCE_TILE_SECONDS.observe(time.perf_counter() - tile_start)
        obs_metrics.EVIDENCE_TILES.inc()
        obs_metrics.EVIDENCE_PAIRS.inc(tile.n_pairs)
        if tile_partial is not None:
            partial.add_tile(tile_partial)
    return partial


def _run_shard(shard_range: tuple[int, int]) -> PartialEvidenceSet:
    """Run the worker's kernel over one ``tiles[start:stop]`` shard."""
    kernel = _worker_kernel
    if kernel is None:
        raise RuntimeError("worker process was not initialized with a kernel")
    start, stop = shard_range
    return fold_tiles(kernel, _worker_tiles[start:stop])


def fold_tiles_pooled(
    kernel: TileKernel,
    tiles: tuple["Tile", ...],
    n_workers: int,
) -> PartialEvidenceSet:
    """Fold kernel results over ``tiles``, pooling only when it pays.

    The tile list is balanced into pair-count shards
    (:func:`~repro.engine.scheduler.shard_tiles`) and fanned over a process
    pool.  When ``n_workers <= 1``, or the schedule yields fewer shards than
    workers (too little work to amortize fork/pickle spin-up), the call
    falls through to the in-process serial fold — so single-worker callers
    such as ``ADCMiner(n_workers=1)`` never pay executor overhead.

    Both the full-grid builder and the incremental delta builder drive this
    entry point, so their serial and pooled results are bit-identical by the
    same merge-algebra argument.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    tiles = tuple(tiles)
    if n_workers <= 1:
        return fold_tiles(kernel, tiles)
    shards = shard_tiles(tiles, SHARDS_PER_WORKER * n_workers)
    if len(shards) < n_workers:
        return fold_tiles(kernel, tiles)

    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(shards)),
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(kernel, tiles),
    ) as pool:
        partials = list(
            pool.map(_run_shard, [(shard.start, shard.stop) for shard in shards])
        )

    merged = partials[0]
    for partial in partials[1:]:
        merged.merge(partial)
    return merged


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork on Linux (cheap initargs, inherited sys.path).

    macOS is left on its platform default (spawn): CPython switched it away
    from fork because forking a process with Objective-C frameworks loaded
    can abort or deadlock the children.
    """
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_tile_rows(
    n_rows: int, n_words: int, n_workers: int, memory_budget_bytes: int
) -> int:
    """Adaptive tile edge for a pool of ``n_workers`` kernels.

    The memory budget is split across the workers (each runs its own
    kernel concurrently), and the edge is additionally capped so the grid
    has at least ``SHARDS_PER_WORKER * n_workers`` tiles — otherwise a
    large budget would yield one giant tile and no parallelism.
    """
    per_worker_budget = max(1, memory_budget_bytes // n_workers)
    tile_rows = choose_tile_rows(n_rows, n_words, per_worker_budget)
    min_tiles = max(1, SHARDS_PER_WORKER * n_workers)
    grid = math.ceil(math.sqrt(min_tiles))
    target_edge = math.ceil(n_rows / grid)
    return max(1, min(tile_rows, target_edge))


def build_evidence_set_parallel(
    relation: "Relation",
    space: "PredicateSpace",
    include_participation: bool = True,
    tile_rows: int | None = None,
    n_workers: int | None = None,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EvidenceSet:
    """Build ``Evi(D)`` with a process pool over tile shards.

    Parameters
    ----------
    relation:
        The database ``D`` (or a sample of it).
    space:
        Predicate space produced by
        :func:`repro.core.predicate_space.build_predicate_space`.
    include_participation:
        Whether to also build the per-evidence tuple-participation
        structure (needed by the f2/f3 approximation functions).
    tile_rows:
        Tile edge length; ``None`` (default) selects it adaptively from
        the memory budget, the word width and the worker count.
    n_workers:
        Worker processes; ``None`` uses ``os.cpu_count()``.  ``1`` runs
        the schedule in-process without a pool (no fork/pickle overhead);
        the same fall-through applies whenever the schedule balances into
        fewer shards than workers (see :func:`fold_tiles_pooled`).
    memory_budget_bytes:
        Total transient-memory budget shared by the concurrent kernels
        (only consulted when ``tile_rows`` is ``None``).
    """
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    n = relation.n_rows
    if n < 2:
        return EvidenceSet(space, [], [], n, [] if include_participation else None)
    n_words = n_words_for(len(space))
    if tile_rows is None:
        if n_workers > 1:
            tile_rows = parallel_tile_rows(n, n_words, n_workers, memory_budget_bytes)
        else:
            tile_rows = choose_tile_rows(n, n_words, memory_budget_bytes)

    scheduler = TileScheduler(n, tile_rows=tile_rows, n_words=n_words)
    kernel = TileKernel.from_relation(relation, space, include_participation)
    return fold_tiles_pooled(kernel, scheduler.tiles(), n_workers).finalize(space)
