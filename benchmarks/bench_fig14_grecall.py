"""Figure 14 — G-recall vs threshold under f1/f2/f3, spread vs concentrated noise."""

from conftest import report

from repro.experiments import figure14_grecall
from repro.experiments.qualitative import figure14_valid_dc_grecall


def test_figure14_grecall(benchmark, config):
    restricted = config.restricted(("tax", "stock", "food"))
    rows = benchmark.pedantic(
        figure14_grecall,
        args=(restricted,),
        kwargs={"thresholds": (1e-5, 1e-4, 1e-2, 1e-1)},
        iterations=1,
        rounds=1,
    )
    report("Figure 14: G-recall for varying thresholds, per function and noise model", rows)
    # Approximate discovery must recover golden DCs somewhere in the sweep.
    best = max(row["g_recall"] for row in rows)
    assert best > 0.5


def test_figure14_valid_dc_grecall(benchmark, config):
    restricted = config.restricted(("tax", "stock", "food"))
    rows = benchmark.pedantic(
        figure14_valid_dc_grecall, args=(restricted,), iterations=1, rounds=1
    )
    report("Figure 14 (parenthesised): G-recall of valid DCs (epsilon = 0)", rows)
    # The paper's observation: exact discovery on dirty data recovers (close
    # to) none of the golden DCs.
    assert all(row["g_recall_valid"] <= 0.5 for row in rows)
