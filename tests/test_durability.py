"""Durability layer: WAL, snapshots, journals, and crash-point recovery.

The central claim under test: recovery after a crash at *any* fault point
is **bit-identical** to a fresh build on the rows that survived — same
finalized evidence words and counts, same tuple participation, same
generation — property-tested over seeded random crash schedules, plus
deterministic tests for each recovery source (wal-only, snapshot+tail,
snapshot-only) and every edge case the format can produce.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import LocalCluster
from repro.data.relation import Relation, running_example
from repro.data.types import ColumnType
from repro.durability import (
    DedupWindow,
    DurabilityError,
    FaultSchedule,
    RecoveryError,
    SimulatedCrash,
    SnapshotError,
    StoreJournal,
    SubmissionJournal,
    WriteAheadLog,
    load_snapshot,
    write_snapshot,
)
from repro.durability.journal import plain_rows, relation_types
from repro.durability.wal import MAGIC
from repro.engine.partial import PartialEvidenceSet
from repro.incremental.store import EvidenceStore

#: Hand-written DC specs over the running example's schema (valid in the
#: seed relation's predicate space: same-column equality predicates).
SPECS = [
    [
        {"left": "State", "op": "==", "right": "State",
         "form": "two_tuple_same_column"},
        {"left": "Zip", "op": "!=", "right": "Zip",
         "form": "two_tuple_same_column"},
    ],
]


def example_rows() -> tuple[list[dict], dict[str, str]]:
    relation = running_example()
    return plain_rows(relation), relation_types(relation)


def column_types(types: dict[str, str]) -> dict[str, ColumnType]:
    return {column: ColumnType(text) for column, text in types.items()}


def build_oracle(
    name: str, types: dict[str, str], seed: list[dict], batches: list[list[dict]]
) -> EvidenceStore:
    """The ground truth: a fresh store fed the same batches, no journal."""
    store = EvidenceStore(Relation.from_records(name, seed, column_types(types)))
    for batch in batches:
        store.append(batch)
    return store


def assert_bit_identical(recovered: EvidenceStore, oracle: EvidenceStore) -> None:
    assert recovered.n_rows == oracle.n_rows
    assert recovered.generation == oracle.generation
    a, b = recovered.evidence(), oracle.evidence()
    assert a.words.tobytes() == b.words.tobytes()
    assert np.array_equal(a.counts, b.counts)
    for index in range(len(a.counts)):
        pa, pb = a.participation(index), b.participation(index)
        assert np.array_equal(pa.tuple_ids, pb.tuple_ids)
        assert np.array_equal(pa.pair_counts, pb.pair_counts)


# ----------------------------------------------------------------------
# WriteAheadLog
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [b"alpha", b"", b"\x00" * 100, b"omega" * 50]
        with WriteAheadLog(path) as wal:
            for payload in payloads:
                wal.append(payload)
            wal.sync()
            assert list(wal.replay()) == payloads

    def test_reopen_continues_appending(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(b"one")
            wal.sync()
        with WriteAheadLog(path) as wal:
            assert wal.n_records == 1
            wal.append(b"two")
            wal.sync()
            assert list(wal.replay()) == [b"one", b"two"]

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(b"keep-me")
            wal.append(b"torn-away")
            wal.sync()
        intact = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(intact - 4)  # tear the last record's tail
        with WriteAheadLog(path) as wal:
            assert wal.n_records == 1
            assert wal.truncated_bytes > 0
            assert list(wal.replay()) == [b"keep-me"]
            wal.append(b"after-heal")  # the healed log keeps working
            wal.sync()
            assert list(wal.replay()) == [b"keep-me", b"after-heal"]

    def test_corrupt_record_truncates_from_there(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(b"good")
            wal.append(b"bad-to-be")
            wal.append(b"unreachable")
            wal.sync()
        raw = bytearray(path.read_bytes())
        # Flip a byte inside the second record's payload: its CRC fails,
        # and everything after it is unreachable garbage by definition.
        offset = len(MAGIC) + 8 + len(b"good") + 8
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [b"good"]

    def test_reset_empties_the_log(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(b"gone-after-reset")
            wal.sync()
            wal.reset()
            assert wal.n_records == 0
            assert list(wal.replay()) == []
            assert path.stat().st_size == len(MAGIC)

    def test_fsync_policies_all_round_trip(self, tmp_path):
        for policy in ("always", "commit", "never"):
            path = tmp_path / f"wal-{policy}.log"
            with WriteAheadLog(path, fsync=policy) as wal:
                wal.append(b"payload")
                wal.sync()
                assert list(wal.replay()) == [b"payload"]

    def test_torn_write_fault_persists_only_a_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = FaultSchedule(torn_writes={("wal_write", 1): 5})
        with WriteAheadLog(path, faults=faults) as wal:
            wal.append(b"whole")
            wal.sync()
            with pytest.raises(SimulatedCrash):
                wal.append(b"torn-record-payload")
        assert faults.fired  # the scheduled point was actually reached
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [b"whole"]
            assert wal.truncated_bytes > 0

    def test_fsync_failure_surfaces_as_oserror(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = FaultSchedule(sync_failures=frozenset({("wal_sync", 1)}))
        with WriteAheadLog(path, fsync="commit", faults=faults) as wal:
            wal.append(b"first")
            wal.sync()  # occurrence 0: fine
            wal.append(b"second")
            with pytest.raises(OSError):
                wal.sync()


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_round_trip_preserves_meta_key_order_and_arrays(self, tmp_path):
        path = tmp_path / "snapshot-00000001.snap"
        meta = {"zebra": 1, "alpha": 2, "rows": [{"B": 1, "A": 2}]}
        arrays = {
            "words": np.arange(12, dtype=np.uint64).reshape(3, 4),
            "totals": np.array([5, 6, 7], dtype=np.int64),
        }
        write_snapshot(path, meta, arrays)
        loaded_meta, loaded_arrays = load_snapshot(path)
        # Key order is semantic (column order derives the bit layout), so
        # the JSON round trip must preserve it exactly.
        assert list(loaded_meta["rows"][0]) == ["B", "A"]
        assert list(loaded_meta)[:3] == ["zebra", "alpha", "rows"]
        for name, array in arrays.items():
            assert np.array_equal(loaded_arrays[name], array)
            assert loaded_arrays[name].dtype == array.dtype

    def test_corruption_is_detected(self, tmp_path):
        path = tmp_path / "snapshot-00000001.snap"
        write_snapshot(path, {"v": 1}, {"a": np.arange(3)})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_crash_before_rename_leaves_old_version_live(self, tmp_path):
        path = tmp_path / "snapshot-00000001.snap"
        write_snapshot(path, {"v": 1}, {"a": np.arange(3)})
        faults = FaultSchedule.crash_at("snapshot_rename")
        with pytest.raises(SimulatedCrash):
            write_snapshot(path, {"v": 2}, {"a": np.arange(9)}, faults=faults)
        meta, arrays = load_snapshot(path)
        assert meta["v"] == 1 and len(arrays["a"]) == 3

    def test_not_a_snapshot_file(self, tmp_path):
        path = tmp_path / "snapshot-00000001.snap"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(SnapshotError):
            load_snapshot(path)


# ----------------------------------------------------------------------
# PartialEvidenceSet state arrays
# ----------------------------------------------------------------------
class TestPartialStateRoundTrip:
    def test_state_arrays_round_trip_is_bit_identical(self):
        rows, types = example_rows()
        store = build_oracle("people", types, rows[:8], [rows[8:12], rows[12:15]])
        partial = store.partial
        words, totals, part_keys, part_counts = partial.state_arrays()
        restored = PartialEvidenceSet.from_state_arrays(
            partial.n_rows, partial.n_words, True,
            words, totals, part_keys, part_counts,
        )
        a = partial.finalize(store.space)
        b = restored.finalize(store.space)
        assert a.words.tobytes() == b.words.tobytes()
        assert np.array_equal(a.counts, b.counts)
        for index in range(len(a.counts)):
            pa, pb = a.participation(index), b.participation(index)
            assert np.array_equal(pa.tuple_ids, pb.tuple_ids)
            assert np.array_equal(pa.pair_counts, pb.pair_counts)


# ----------------------------------------------------------------------
# StoreJournal: the three recovery sources
# ----------------------------------------------------------------------
def run_journaled_workload(
    directory: Path,
    seed: list[dict],
    batches: list[list[dict]],
    types: dict[str, str],
    snapshot_every_bytes: int = 1 << 30,
    faults: FaultSchedule | None = None,
) -> tuple[StoreJournal, EvidenceStore, int]:
    """Create + append through the journal exactly as the server does.

    Returns ``(journal, store, acked_batches)``; raises whatever the fault
    schedule injects (the caller catches and recovers).
    """
    journal = StoreJournal.create(
        directory, "people", seed, types,
        snapshot_every_bytes=snapshot_every_bytes, faults=faults,
    )
    store = EvidenceStore(Relation.from_records("people", seed, column_types(types)))
    acked = 0
    for index, batch in enumerate(batches):
        if index == 2:
            journal.log_constraints(SPECS, 0.05, "declared")
        store.append(
            batch,
            pre_commit=lambda n, b=batch, k=index: journal.log_append(
                b, [[f"req-{k}", len(b)]]
            ),
        )
        acked = index + 1
        journal.maybe_snapshot(store, None)
    return journal, store, acked


class TestStoreJournalRecovery:
    def make_batches(self, rows):
        return [rows[8:10], rows[10:12], rows[12:14], rows[14:15],
                [dict(row, Name=row["Name"] + "-dup") for row in rows[3:6]]]

    def test_wal_only_recovery(self, tmp_path):
        rows, types = example_rows()
        batches = self.make_batches(rows)
        journal, live, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], batches, types
        )
        journal.close()
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            assert recovered.stats.source == "wal"
            assert_bit_identical(recovered.store, live)
            assert recovered.constraint_specs == SPECS
            assert recovered.epsilon == 0.05
            assert recovered.constraint_source == "declared"
        finally:
            recovered.journal.close()

    def test_snapshot_plus_tail_recovery(self, tmp_path):
        rows, types = example_rows()
        batches = self.make_batches(rows)
        journal, live, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], batches, types
        )
        # Snapshot now, then append a post-snapshot tail.
        journal.snapshot(live, None)
        tail = [dict(row, Name=row["Name"] + "-tail") for row in rows[:3]]
        live.append(tail, pre_commit=lambda n: journal.log_append(
            tail, [["req-tail", len(tail)]]
        ))
        journal.close()
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            assert recovered.stats.source == "snapshot+wal"
            assert recovered.stats.replayed_records == 1
            assert_bit_identical(recovered.store, live)
            assert recovered.constraint_specs == SPECS
            # The replayed tail rebuilds its dedup entry.
            assert any(key == "req-tail" for key, _ in recovered.dedup_entries)
        finally:
            recovered.journal.close()

    def test_snapshot_only_recovery(self, tmp_path):
        rows, types = example_rows()
        batches = self.make_batches(rows)
        journal, live, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], batches, types
        )
        journal.snapshot(live, None)
        journal.close()
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            assert recovered.stats.source == "snapshot"
            assert_bit_identical(recovered.store, live)
        finally:
            recovered.journal.close()

    def test_recovery_matches_fresh_build_oracle(self, tmp_path):
        rows, types = example_rows()
        batches = self.make_batches(rows)
        journal, _, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], batches, types,
            snapshot_every_bytes=1,  # snapshot after every append
        )
        journal.close()
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            oracle = build_oracle("people", types, rows[:8], batches)
            assert_bit_identical(recovered.store, oracle)
        finally:
            recovered.journal.close()


# ----------------------------------------------------------------------
# Property: recovery is bit-identical at every seeded crash point
# ----------------------------------------------------------------------
class TestCrashPointSweep:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_recovery_bit_identical_after_seeded_crash(self, seed):
        rows, types = example_rows()
        seed_rows = rows[:8]
        batches = [rows[8:10], rows[10:12], rows[12:14], rows[14:15],
                   [dict(row, Name=row["Name"] + "-x") for row in rows[5:8]]]
        sizes = [len(seed_rows)]
        for batch in batches:
            sizes.append(sizes[-1] + len(batch))
        faults = FaultSchedule.seeded(seed)
        snapshot_every = 1 if seed % 2 else 1 << 30
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "people"
            created = False
            acked = 0
            constraints_acked = False
            journal = None
            try:
                journal = StoreJournal.create(
                    directory, "people", seed_rows, types,
                    snapshot_every_bytes=snapshot_every, faults=faults,
                )
                created = True
                store = EvidenceStore(
                    Relation.from_records("people", seed_rows, column_types(types))
                )
                for index, batch in enumerate(batches):
                    if index == 2:
                        journal.log_constraints(SPECS, 0.05, "declared")
                        constraints_acked = True
                    store.append(
                        batch,
                        pre_commit=lambda n, b=batch, k=index: journal.log_append(
                            b, [[f"req-{k}", len(b)]]
                        ),
                    )
                    acked = index + 1
                    journal.maybe_snapshot(store, None)
            except (SimulatedCrash, OSError):
                pass
            finally:
                if journal is not None and not journal.closed:
                    try:
                        journal.close()
                    except (SimulatedCrash, OSError):
                        pass

            if not created and not directory.exists():
                return  # crashed before any directory existed

            try:
                recovered = StoreJournal.recover(directory)
            except RecoveryError:
                # Legal only when nothing was ever acknowledged: the
                # creation record itself died mid-write.
                assert not created
                return
            try:
                # The recovered row count must sit on a batch boundary at
                # or past everything acknowledged (fsync-crash simulations
                # leave buffered-but-unacked records readable).
                assert recovered.store.n_rows in sizes
                survived = sizes.index(recovered.store.n_rows)
                assert survived >= acked
                oracle = build_oracle(
                    "people", types, seed_rows, batches[:survived]
                )
                assert_bit_identical(recovered.store, oracle)
                if constraints_acked:
                    assert recovered.constraint_specs == SPECS
            finally:
                recovered.journal.close()


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
class TestRecoveryEdgeCases:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            StoreJournal.recover(tmp_path / "never-created")

    def test_empty_wal_without_snapshot_raises(self, tmp_path):
        directory = tmp_path / "people"
        directory.mkdir()
        WriteAheadLog(directory / "wal.log").close()  # magic only
        with pytest.raises(RecoveryError):
            StoreJournal.recover(directory)

    def test_create_refuses_existing_journal(self, tmp_path):
        rows, types = example_rows()
        journal = StoreJournal.create(tmp_path / "people", "people", rows[:4], types)
        journal.close()
        with pytest.raises(DurabilityError):
            StoreJournal.create(tmp_path / "people", "people", rows[:4], types)

    def test_truncated_final_record_drops_exactly_that_batch(self, tmp_path):
        rows, types = example_rows()
        batches = [rows[8:11], rows[11:15]]
        journal, _, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], batches, types
        )
        journal.close()
        wal_path = tmp_path / "people" / "wal.log"
        with open(wal_path, "r+b") as handle:
            handle.truncate(wal_path.stat().st_size - 3)
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            assert recovered.stats.truncated_bytes > 0
            oracle = build_oracle("people", types, rows[:8], batches[:-1])
            assert_bit_identical(recovered.store, oracle)
        finally:
            recovered.journal.close()

    def test_duplicate_request_key_replay_dedups(self, tmp_path):
        rows, types = example_rows()
        journal, store, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], [rows[8:10]], types
        )
        journal.close()
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            dedup = DedupWindow()
            dedup.load(recovered.dedup_entries)
            hit = dedup.get("req-0")
            assert hit is not None
            assert hit["appended"] == 2
            assert dedup.hits == 1
        finally:
            recovered.journal.close()

    def test_declared_but_never_mined_constraints_survive(self, tmp_path):
        rows, types = example_rows()
        journal = StoreJournal.create(tmp_path / "people", "people", rows[:8], types)
        journal.log_constraints(SPECS, 0.2, "declared")
        journal.log_epsilon(0.35)
        journal.close()
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            assert recovered.constraint_specs == SPECS
            assert recovered.epsilon == 0.35  # epsilon record wins
            assert recovered.constraint_source == "declared"
            assert recovered.store.n_rows == 8  # seed only, never appended
        finally:
            recovered.journal.close()

    def test_corrupt_newest_snapshot_falls_back_to_older(self, tmp_path):
        rows, types = example_rows()
        journal, live, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], [rows[8:12]], types
        )
        first = journal.snapshot(live, None)
        first_path = tmp_path / "people" / f"snapshot-{first:08d}.snap"
        first_bytes = first_path.read_bytes()
        live.append(rows[12:15], pre_commit=lambda n: journal.log_append(
            rows[12:15], [[None, 3]]
        ))
        second = journal.snapshot(live, None)
        journal.close()
        # Resurrect the older version (compaction deleted it) and corrupt
        # the newest: recovery must skip the bad file and fall back.
        first_path.write_bytes(first_bytes)
        second_path = tmp_path / "people" / f"snapshot-{second:08d}.snap"
        raw = bytearray(second_path.read_bytes())
        raw[-1] ^= 0x01
        second_path.write_bytes(bytes(raw))
        recovered = StoreJournal.recover(tmp_path / "people")
        try:
            assert recovered.stats.skipped_snapshots == [second]
            assert recovered.stats.snapshot_version == first
            # The WAL was reset by the second compaction, so the fallback
            # recovers exactly the first snapshot's state.
            oracle = build_oracle("people", types, rows[:8], [rows[8:12]])
            assert_bit_identical(recovered.store, oracle)
        finally:
            recovered.journal.close()

    def test_corrupt_sole_snapshot_with_empty_wal_raises(self, tmp_path):
        rows, types = example_rows()
        journal, live, _ = run_journaled_workload(
            tmp_path / "people", rows[:8], [rows[8:12]], types
        )
        version = journal.snapshot(live, None)
        journal.close()
        snap = tmp_path / "people" / f"snapshot-{version:08d}.snap"
        raw = bytearray(snap.read_bytes())
        raw[-1] ^= 0x01
        snap.write_bytes(bytes(raw))
        with pytest.raises(RecoveryError):
            StoreJournal.recover(tmp_path / "people")


# ----------------------------------------------------------------------
# SubmissionJournal + coordinator resume
# ----------------------------------------------------------------------
class SquareContext:
    """Module level so it pickles by reference through the transports."""

    def run(self, task):
        return task * task


class CrashAfter(SubmissionJournal):
    """A journal whose owner "dies" after k results have been recorded."""

    def __init__(self, path, crash_after: int) -> None:
        super().__init__(path)
        self.crash_after = crash_after

    def record_result(self, index, payload):
        super().record_result(index, payload)
        if len(self.completed) >= self.crash_after:
            raise SimulatedCrash("coordinator killed mid-fold")


class TestSubmissionJournal:
    def test_begin_record_finish_round_trip(self, tmp_path):
        path = tmp_path / "submission.wal"
        journal = SubmissionJournal(path)
        assert journal.begin(3, fingerprint="fold-1") == {}
        journal.record_result(0, "a")
        journal.record_result(2, "c")
        journal.close()
        resumed = SubmissionJournal(path)
        assert resumed.begin(3, fingerprint="fold-1") == {0: "a", 2: "c"}
        assert not resumed.finished
        resumed.record_result(1, "b")
        resumed.finish()
        resumed.close()

    def test_begin_rejects_mismatched_submission(self, tmp_path):
        path = tmp_path / "submission.wal"
        journal = SubmissionJournal(path)
        journal.begin(3, fingerprint="fold-1")
        journal.close()
        resumed = SubmissionJournal(path)
        with pytest.raises(DurabilityError):
            resumed.begin(5, fingerprint="fold-2")
        resumed.close()

    def test_coordinator_resumes_in_flight_fold(self, tmp_path):
        path = tmp_path / "submission.wal"
        tasks = list(range(8))
        expected = [task * task for task in tasks]
        with LocalCluster(2, transport="local") as cluster:
            crashing = CrashAfter(path, crash_after=3)
            with pytest.raises(SimulatedCrash):
                cluster.submit(SquareContext(), tasks, journal=crashing)
            crashing.close()

            resumed = SubmissionJournal(path)
            already = len(resumed.completed)
            assert already >= 3  # the crash fired after the 3rd result
            results = cluster.submit(SquareContext(), tasks, journal=resumed)
            assert results == expected
            assert resumed.finished
            resumed.close()

        # Exactly one result record per task across both runs: the resumed
        # submission re-ran only the tasks whose results never landed.
        final = SubmissionJournal(path)
        kinds = [record for record in final.wal.replay()]
        assert len(final.completed) == len(tasks)
        assert len(kinds) == 1 + len(tasks) + 1  # begin + results + finished
        # And resuming a finished journal schedules nothing at all.
        assert final.begin(len(tasks)) == {index: expected[index]
                                           for index in range(len(tasks))}
        final.close()

    def test_finished_journal_resumes_without_workers(self, tmp_path):
        from repro.cluster.coordinator import ClusterCoordinator

        path = tmp_path / "submission.wal"
        journal = SubmissionJournal(path)
        journal.begin(2)
        journal.record_result(0, "x")
        journal.record_result(1, "y")
        journal.close()
        coordinator = ClusterCoordinator()  # zero workers registered
        resumed = SubmissionJournal(path)
        assert coordinator.submit(object(), ["a", "b"], journal=resumed) == ["x", "y"]
        resumed.close()
