"""Quickstart: mine approximate denial constraints from the paper's example.

Runs ADCMiner on the 15-tuple income/tax relation of Table 1 and shows how
the two constraints discussed in Examples 1.1 and 1.2 surface as approximate
DCs even though the relation violates them.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ADCMiner, running_example
from repro.core.dc import DenialConstraint
from repro.core.operators import Operator
from repro.core.predicates import same_column_predicate


def main() -> None:
    relation = running_example()
    print(relation.describe())
    print()

    # The constraint of Example 1.1: within a state, higher income implies
    # higher tax.  Two ordered pairs (t6/t7 and t14/t15) violate it.
    income_tax_rule = DenialConstraint([
        same_column_predicate("State", Operator.EQ),
        same_column_predicate("Income", Operator.GT),
        same_column_predicate("Tax", Operator.LE),
    ])
    violations = income_tax_rule.violation_count(relation)
    total_pairs = relation.n_rows * (relation.n_rows - 1)
    print(f"Example 1.1 rule: {income_tax_rule}")
    print(f"  violating pairs: {violations} of {total_pairs} "
          f"({violations / total_pairs:.2%}) -> not a valid DC, but an ADC")
    print()

    # Mine all minimal approximate DCs with the pair-based function f1 and a
    # 5% exception rate.
    miner = ADCMiner(function="f1", epsilon=0.05)
    result = miner.mine(relation)
    print(f"ADCMiner found {len(result)} minimal ADCs "
          f"(predicate space: {len(result.predicate_space)} predicates, "
          f"evidence set: {len(result.evidence)} distinct evidences)")
    print()
    print("A few of the discovered constraints:")
    for adc in sorted(result.adcs, key=lambda a: a.violation_score)[:10]:
        print(f"  {adc}")

    # The Example 1.1 rule itself must be among them (possibly in a more
    # general form, i.e. with a subset of its predicates).
    recovered = [
        adc for adc in result.adcs
        if adc.constraint.predicates <= income_tax_rule.predicates
    ]
    print()
    print(f"Example 1.1 rule recovered by {len(recovered)} discovered ADC(s).")


if __name__ == "__main__":
    main()
