"""Tests for the SearchMC baseline and the baseline pipelines."""

from __future__ import annotations

import pytest

from tests.conftest import make_random_relation
from repro.baselines.fastdc import SearchMC, search_minimal_covers
from repro.baselines.pairwise import PairwiseEvidenceBuilder, afastdc_mine, dcfinder_mine
from repro.core.adc_enum import enumerate_adcs
from repro.core.approximation import F1
from repro.core.evidence_builder import build_evidence_set
from repro.core.predicate_space import build_predicate_space


def _normalised(adcs):
    return {adc.constraint.normalized().predicates for adc in adcs}


class TestSearchMCAgreesWithADCEnum:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("epsilon", [0.0, 0.1])
    def test_same_minimal_adcs(self, seed, epsilon):
        relation = make_random_relation(n_rows=7, seed=seed)
        space = build_predicate_space(relation)
        evidence = build_evidence_set(relation, space)
        ours = enumerate_adcs(evidence, F1(), epsilon, max_dc_size=3)
        baseline = search_minimal_covers(evidence, F1(), epsilon, max_cover_size=3)
        assert _normalised(ours) == _normalised(baseline)

    def test_running_example_agreement(self, example_evidence):
        ours = enumerate_adcs(example_evidence, F1(), 0.05)
        baseline = search_minimal_covers(example_evidence, F1(), 0.05)
        assert _normalised(ours) == _normalised(baseline)

    def test_statistics_populated(self, example_evidence):
        search = SearchMC(example_evidence, F1(), 0.05)
        results = search.enumerate()
        assert search.statistics.covers_found >= len(results)
        assert search.statistics.nodes_visited > 0

    def test_invalid_epsilon_rejected(self, example_evidence):
        with pytest.raises(ValueError):
            SearchMC(example_evidence, F1(), epsilon=-1)


class TestBaselinePipelines:
    def test_afastdc_and_dcfinder_agree_with_each_other(self, example_relation):
        afastdc = afastdc_mine(example_relation, F1(), 0.05)
        dcfinder = dcfinder_mine(example_relation, F1(), 0.05)
        assert _normalised(afastdc.adcs) == _normalised(dcfinder.adcs)
        assert afastdc.n_predicates == dcfinder.n_predicates
        assert afastdc.n_evidences == dcfinder.n_evidences

    def test_pairwise_builder_component(self, example_relation, example_space, example_evidence):
        builder = PairwiseEvidenceBuilder()
        evidence = builder.build(example_relation, example_space)
        assert sorted(zip(evidence.masks, evidence.counts.tolist())) == sorted(
            zip(example_evidence.masks, example_evidence.counts.tolist())
        )

    def test_timings_recorded(self, example_relation):
        result = dcfinder_mine(example_relation, F1(), 0.05)
        assert result.timings.total > 0
        assert result.timings.evidence >= 0
