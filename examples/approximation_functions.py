"""Comparing approximation functions (Example 1.2 of the paper).

The same DC can be approximate under one semantics and not under another:
the paper's Example 1.2 contrasts the pair-based measure (f1) with the
tuple-removal measure (f3) on the running example.  This script reproduces
those numbers and then mines the example under all three functions to show
how the discovered constraint sets differ.

Run with::

    python examples/approximation_functions.py
"""

from __future__ import annotations

from repro import ADCMiner, running_example
from repro.core.approximation import F1, F2, F3Greedy
from repro.core.dc import DenialConstraint
from repro.core.evidence_builder import build_evidence_set
from repro.core.operators import Operator
from repro.core.predicate_space import build_predicate_space
from repro.core.predicates import same_column_predicate
from repro.core.repair import build_conflict_graph, exact_f3_violation


def main() -> None:
    relation = running_example()
    space = build_predicate_space(relation)
    evidence = build_evidence_set(relation, space, include_participation=True)

    phi1 = DenialConstraint([
        same_column_predicate("State", Operator.EQ),
        same_column_predicate("Income", Operator.GT),
        same_column_predicate("Tax", Operator.LE),
    ])
    phi2 = DenialConstraint([
        same_column_predicate("Zip", Operator.EQ),
        same_column_predicate("State", Operator.NE),
    ])

    for label, constraint in [("phi1 (income/tax per state)", phi1), ("phi2 (zip -> state)", phi2)]:
        hitting_mask = space.complement_mask(space.mask_of(constraint.predicates))
        uncovered = evidence.uncovered_indices(hitting_mask)
        graph = build_conflict_graph(relation, constraint)
        print(label)
        print(f"  violating pairs:              {graph.n_violations} "
              f"({F1().violation_score(evidence, uncovered):.2%} of ordered pairs)")
        print(f"  problematic tuples (1 - f2):  {F2().violation_score(evidence, uncovered):.2%}")
        print(f"  greedy repair size (1 - f3):  {F3Greedy().violation_score(evidence, uncovered):.2%}")
        print(f"  exact repair size (1 - f3):   {exact_f3_violation(relation, constraint):.2%}")
        print()

    print("Example 1.2's point: with a 5% exception rate phi1 is an ADC under f1")
    print("but not under f3; with a 7% rate phi2 is an ADC under f3 but not f1.")
    print()

    for name in ("f1", "f2", "f3"):
        result = ADCMiner(function=name, epsilon=0.05).mine(relation)
        print(f"function {name}: {len(result)} minimal ADCs at epsilon = 5%")


if __name__ == "__main__":
    main()
