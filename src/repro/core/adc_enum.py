"""ADCEnum — enumeration of minimal approximate denial constraints.

This module implements the paper's main algorithmic contribution (Section 6,
Figures 4 and 5): a general algorithm for enumerating *minimal approximate
hitting sets* of the evidence set w.r.t. an arbitrary valid approximation
function, extended from the MMCS enumerator of Murakami and Uno with

* an approximate base case (``1 - f(D, S) <= epsilon``) plus an explicit
  minimality check (``IsMinimal``),
* a second recursive branch per chosen evidence that *does not* hit it,
  guarded by the ``canHit`` bookkeeping and the ``WillCover`` monotonicity
  prune,
* removal of same-group (operator-only variants) predicates from the
  candidate list once a predicate has been added, avoiding trivial and
  redundancy-non-minimal DCs,
* evidence selection by *maximal* intersection with the candidate list (the
  ablation of Figure 10 can switch back to the minimal-intersection rule of
  MMCS or a pseudo-random rule).

The enumerated hitting set ``S`` is a set of predicates; the reported DC is
``S_phi = complement(S)``.

The per-node work (which evidences a candidate set can still hit, how many
candidate predicates each uncovered evidence contains, which evidences a new
element covers) is vectorised directly over the evidence set's native packed
``(n_evidences, n_words)`` uint64 words — the Python-level reproduction of
DCFinder's bit-level engineering, without which the enumeration would be
orders of magnitude slower.  No representation conversion happens between
evidence construction and enumeration; only hitting-set/candidate masks are
split into words via :func:`repro.core.evidence.mask_to_words`.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass, field
from typing import Iterator, Literal, Sequence

import numpy as np

from repro.core.approximation import ApproximationFunction, F1
from repro.core.dc import DenialConstraint
from repro.core.evidence import EvidenceSet, mask_to_words
from repro.core.predicate_space import iter_bits

SelectionStrategy = Literal["max", "min", "random"]


@dataclass
class EnumerationStatistics:
    """Counters describing one ADCEnum run (reported by the benchmarks)."""

    recursive_calls: int = 0
    hit_branches: int = 0
    skip_branches: int = 0
    pruned_by_willcover: int = 0
    pruned_by_criticality: int = 0
    minimality_checks: int = 0
    outputs: int = 0
    elapsed_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class DiscoveredADC:
    """One minimal approximate denial constraint found by the enumerator."""

    constraint: DenialConstraint
    hitting_set_mask: int
    violation_score: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.constraint}   [1 - f = {self.violation_score:.6f}]"


class ADCEnum:
    """Enumerator of minimal approximate denial constraints.

    Parameters
    ----------
    evidence:
        Evidence set of the database (or sample).
    function:
        A valid approximation function (monotone + indifferent to
        redundancy).
    epsilon:
        Approximation threshold; a DC passes when ``1 - f(D, S_phi) <= epsilon``.
    selection:
        Evidence-selection rule: ``"max"`` (paper's choice), ``"min"``
        (Murakami & Uno) or ``"random"`` (deterministic pseudo-random,
        seeded by the recursion counter).
    max_dc_size:
        Optional cap on the number of predicates per DC; ``None`` means
        unbounded.  The cap applies to the hitting branch only, so all
        minimal ADCs within the bound are still enumerated.
    """

    def __init__(
        self,
        evidence: EvidenceSet,
        function: ApproximationFunction | None = None,
        epsilon: float = 0.01,
        selection: SelectionStrategy = "max",
        max_dc_size: int | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if selection not in ("max", "min", "random"):
            raise ValueError(f"unknown selection strategy {selection!r}")
        self.evidence = evidence
        self.function = function if function is not None else F1()
        self.epsilon = float(epsilon)
        self.selection: SelectionStrategy = selection
        self.max_dc_size = max_dc_size
        self.statistics = EnumerationStatistics()
        if self.function.requires_participation and not evidence.has_participation:
            raise ValueError(
                f"approximation function {self.function.name} needs tuple participation; "
                "build the evidence set with include_participation=True"
            )
        self._prepare_planes()

    # ------------------------------------------------------------------
    # Precomputed bit planes
    # ------------------------------------------------------------------
    def _prepare_planes(self) -> None:
        # The packed (n_evidences, n_words) uint64 array is the evidence
        # set's native representation, so it is consumed as-is; hitting-set
        # and candidate masks are split with the shared mask_to_words helper.
        self._n_evidences = len(self.evidence)
        self._n_words = self.evidence.n_words
        self._ev_words = self.evidence.words
        self._counts = np.asarray(self.evidence.counts, dtype=np.int64)
        # contains[p] is the boolean evidence-membership vector of predicate p.
        self._contains = self.evidence.predicate_membership()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enumerate(self) -> list[DiscoveredADC]:
        """Run the enumeration and return all minimal nontrivial ADCs."""
        return list(self.iter_adcs())

    def iter_adcs(self) -> Iterator[DiscoveredADC]:
        """Yield minimal nontrivial ADCs as they are discovered."""
        self.statistics = EnumerationStatistics()
        started = time.perf_counter()
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 50_000))

        space = self.evidence.space
        uncov = np.arange(self._n_evidences, dtype=np.int64)
        can_hit = np.ones(self._n_evidences, dtype=bool)
        uncovered_pairs = int(self._counts.sum()) if self._n_evidences else 0
        cand = (1 << len(space)) - 1
        crit: dict[int, set[int]] = {}
        seen_outputs: set[int] = set()

        yield from self._search(
            s_mask=0,
            s_elements=[],
            crit=crit,
            uncov=uncov,
            uncovered_pairs=uncovered_pairs,
            cand=cand,
            can_hit=can_hit,
            seen_outputs=seen_outputs,
        )
        self.statistics.elapsed_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Scoring helpers
    # ------------------------------------------------------------------
    def _violation_score(self, uncov_indices: Sequence[int], uncovered_pairs: int) -> float:
        """``1 - f`` for the given uncovered evidences.

        Pair-based functions are answered from the maintained pair counter;
        for the tuple-based ones the Proposition 5.3 pre-filter avoids the
        expensive computation when the pair-based bound already exceeds
        ``pair_bound_factor * epsilon``.
        """
        total = self.evidence.total_pairs
        if total == 0:
            return 0.0
        pair_fraction = uncovered_pairs / total
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return math.inf
        return self.function.violation_score(self.evidence, uncov_indices)

    def _passes(self, uncov_indices: Sequence[int], uncovered_pairs: int) -> bool:
        return self._violation_score(uncov_indices, uncovered_pairs) <= self.epsilon

    def _passes_lazy(self, uncov: np.ndarray, uncovered_pairs: int) -> bool:
        """Threshold test that only materialises index lists when necessary."""
        total = self.evidence.total_pairs
        if total == 0:
            return True
        pair_fraction = uncovered_pairs / total
        shortcut = self.function.violation_score_from_pair_fraction(pair_fraction, total)
        if shortcut is not None:
            return shortcut <= self.epsilon
        factor = self.function.pair_bound_factor
        if factor is not None and pair_fraction > factor * self.epsilon:
            return False
        score = self.function.violation_score(self.evidence, uncov)
        return score <= self.epsilon

    def _is_minimal(
        self,
        s_elements: list[int],
        crit: dict[int, set[int]],
        uncov: np.ndarray,
        uncovered_pairs: int,
    ) -> bool:
        """The IsMinimal subroutine of Figure 5.

        Removing element ``e`` from ``S`` un-covers exactly the evidences for
        which ``e`` is critical, so the score of ``S \\ {e}`` is evaluated on
        the current uncovered set extended with ``crit[e]``.
        """
        self.statistics.minimality_checks += 1
        uncov_indices: list[int] | None = None
        for element in s_elements:
            critical = crit.get(element, set())
            extra_pairs = int(self._counts[list(critical)].sum()) if critical else 0
            pair_fraction_known = self.function.violation_score_from_pair_fraction(
                (uncovered_pairs + extra_pairs) / max(self.evidence.total_pairs, 1),
                self.evidence.total_pairs,
            )
            if pair_fraction_known is not None:
                if pair_fraction_known <= self.epsilon:
                    return False
                continue
            if uncov_indices is None:
                uncov_indices = uncov.tolist()
            if self._passes(uncov_indices + list(critical), uncovered_pairs + extra_pairs):
                return False
        return True

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _search(
        self,
        s_mask: int,
        s_elements: list[int],
        crit: dict[int, set[int]],
        uncov: np.ndarray,
        uncovered_pairs: int,
        cand: int,
        can_hit: np.ndarray,
        seen_outputs: set[int],
    ) -> Iterator[DiscoveredADC]:
        self.statistics.recursive_calls += 1
        space = self.evidence.space

        # Base case (Figure 4, lines 1-3): report S when it passes the
        # threshold and is minimal.  Whenever the threshold is met, no strict
        # superset can be a *minimal* ADC (monotonicity), so the branch ends.
        if self._passes_lazy(uncov, uncovered_pairs):
            if self._is_minimal(s_elements, crit, uncov, uncovered_pairs):
                yield from self._emit(s_mask, uncov, seen_outputs)
            return

        # Line 4: choose an uncovered evidence that may still be hit.  We
        # additionally require a non-empty intersection with the candidate
        # list: an evidence without candidate predicates can never be hit in
        # this subtree, and because every approximation function here is
        # determined by the uncovered-evidence multiset, skipping it loses no
        # minimal ADC (it simply stays uncovered).
        cand_words = mask_to_words(cand, self._n_words)
        overlap = (self._ev_words[uncov] & cand_words).any(axis=1)
        hittable = can_hit[uncov]
        selectable = uncov[hittable & overlap]
        if selectable.size == 0:
            return
        chosen = self._choose_evidence(selectable, cand_words)
        chosen_mask = self.evidence.masks[chosen]

        # ------------------------------------------------------------------
        # First recursive call (lines 7-12): do NOT hit the chosen evidence.
        # ------------------------------------------------------------------
        reduced_cand = cand & ~chosen_mask
        reduced_words = mask_to_words(reduced_cand, self._n_words)
        reduced_overlap = (self._ev_words[uncov] & reduced_words).any(axis=1)
        blocked = uncov[hittable & ~reduced_overlap]
        will_cover_uncov = uncov[~reduced_overlap]
        will_cover_pairs = int(self._counts[will_cover_uncov].sum())
        if self._passes_lazy(will_cover_uncov, will_cover_pairs):
            self.statistics.skip_branches += 1
            can_hit[blocked] = False
            yield from self._search(
                s_mask, s_elements, crit, uncov, uncovered_pairs,
                reduced_cand, can_hit, seen_outputs,
            )
            can_hit[blocked] = True
        else:
            self.statistics.pruned_by_willcover += 1

        # ------------------------------------------------------------------
        # Second recursive call (lines 13-22): hit the chosen evidence with
        # each candidate predicate in turn (the MMCS expansion).
        # ------------------------------------------------------------------
        if self.max_dc_size is not None and len(s_elements) >= self.max_dc_size:
            return
        to_try = chosen_mask & cand
        cand &= ~chosen_mask
        for element in iter_bits(to_try):
            element_contains = self._contains[element]
            covered_here = element_contains[uncov]
            newly_covered = uncov[covered_here]
            remaining_uncov = uncov[~covered_here]
            covered_pairs = int(self._counts[newly_covered].sum())
            crit[element] = set(newly_covered.tolist())
            removed_from_crit: dict[int, list[int]] = {}
            for member in s_elements:
                critical = crit[member]
                if not critical:
                    continue
                critical_array = np.fromiter(critical, dtype=np.int64, count=len(critical))
                removed_array = critical_array[element_contains[critical_array]]
                if removed_array.size:
                    removed = removed_array.tolist()
                    removed_from_crit[member] = removed
                    crit[member].difference_update(removed)

            if all(crit[member] for member in s_elements):
                self.statistics.hit_branches += 1
                pruned_cand = cand & ~space.group_mask(element)
                s_elements.append(element)
                yield from self._search(
                    s_mask | (1 << element),
                    s_elements,
                    crit,
                    remaining_uncov,
                    uncovered_pairs - covered_pairs,
                    pruned_cand,
                    can_hit,
                    seen_outputs,
                )
                s_elements.pop()
                cand |= 1 << element
            else:
                self.statistics.pruned_by_criticality += 1

            crit.pop(element, None)
            for member, removed in removed_from_crit.items():
                crit[member].update(removed)

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _choose_evidence(self, selectable: np.ndarray, cand_words: np.ndarray) -> int:
        """Pick the next evidence to branch on according to the strategy."""
        if self.selection == "random":
            return int(selectable[self.statistics.recursive_calls % selectable.size])
        intersections = np.bitwise_count(
            self._ev_words[selectable] & cand_words
        ).sum(axis=1)
        if self.selection == "max":
            return int(selectable[int(np.argmax(intersections))])
        return int(selectable[int(np.argmin(intersections))])

    def _emit(
        self,
        s_mask: int,
        uncov: np.ndarray,
        seen_outputs: set[int],
    ) -> Iterator[DiscoveredADC]:
        """Build the DC from the hitting set and report it if nontrivial."""
        if s_mask == 0 or s_mask in seen_outputs:
            return
        space = self.evidence.space
        dc_predicates = [space[space.complement_index(index)] for index in iter_bits(s_mask)]
        constraint = DenialConstraint(dc_predicates)
        if constraint.is_trivial():
            return
        seen_outputs.add(s_mask)
        score = self.function.violation_score(self.evidence, uncov)
        self.statistics.outputs += 1
        yield DiscoveredADC(constraint, s_mask, score)


def enumerate_adcs(
    evidence: EvidenceSet,
    function: ApproximationFunction | None = None,
    epsilon: float = 0.01,
    selection: SelectionStrategy = "max",
    max_dc_size: int | None = None,
) -> list[DiscoveredADC]:
    """Convenience wrapper running :class:`ADCEnum` once."""
    return ADCEnum(evidence, function, epsilon, selection, max_dc_size).enumerate()
