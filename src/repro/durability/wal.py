"""An append-only, CRC-checksummed, torn-tail-tolerant record log.

The write-ahead log is the durability primitive everything else in
:mod:`repro.durability` is built from: a file of length-prefixed records

``[magic 8B] [u32 length][u32 crc32][payload] [u32 length][u32 crc32]...``

with three guarantees:

* **Append-only** — records are only ever added at the end; a record that
  :meth:`append` + :meth:`sync` returned for is on disk.
* **Torn tails truncate, never corrupt** — a crash mid-write leaves a
  partial or checksum-failing final record; :meth:`open <WriteAheadLog>`
  scans from the front, keeps the longest valid prefix, and truncates the
  rest (reported in :attr:`truncated_bytes`).  Recovery therefore sees
  exactly the records whose writes completed.
* **Configurable durability** — ``fsync="always"`` syncs every record
  (each append survives a crash), ``"commit"`` leaves syncing to the
  caller's commit points (:meth:`sync`), ``"never"`` flushes to the OS
  only (survives process death, not power loss — the benchmark baseline).

Payloads are opaque bytes; encoding (JSON for serve-tenant journals,
pickle for trusted coordinator state) belongs to the callers in
:mod:`repro.durability.journal`.  Single-writer: callers serialize appends
(the serve layer's flush loop and the coordinator's submit lock already
do).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:
    from repro.durability.faults import FaultSchedule

MAGIC = b"RPROWAL\x01"
_RECORD = struct.Struct(">II")  # payload length, crc32
FSYNC_POLICIES = ("always", "commit", "never")


class WALError(RuntimeError):
    """The log cannot be opened or written (not a torn tail — those heal)."""


class WriteAheadLog:
    """One append-only record log file.

    Parameters
    ----------
    path:
        Log file; created (with its magic header fsynced) when missing.
    fsync:
        ``"always"`` / ``"commit"`` / ``"never"``, see module docstring.
    faults:
        Optional :class:`~repro.durability.faults.FaultSchedule`; fault
        points are ``wal_write`` (record bytes, may tear), ``wal_record``
        (after a complete record), and ``wal_sync``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        fsync: str = "commit",
        faults: "FaultSchedule | None" = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r} (one of {FSYNC_POLICIES})")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.faults = faults
        self.truncated_bytes = 0
        self.n_records = 0
        created = not self.path.exists()
        self._file = open(self.path, "a+b" if created else "r+b")
        if created:
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            _fsync_directory(self.path.parent)
            self._end = len(MAGIC)
        else:
            self._end = self._scan()
        self._file.seek(self._end)

    # ------------------------------------------------------------------
    # Open-time scan
    # ------------------------------------------------------------------
    def _scan(self) -> int:
        """Validate the record chain; truncate everything past the last
        valid record and return the end offset."""
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        self._file.seek(0)
        head = self._file.read(len(MAGIC))
        if len(head) < len(MAGIC):
            # Torn creation: the magic itself never hit the disk whole.
            self.truncated_bytes = size
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            return len(MAGIC)
        if head != MAGIC:
            raise WALError(f"{self.path} is not a write-ahead log")
        offset = len(MAGIC)
        while True:
            header = self._file.read(_RECORD.size)
            if len(header) < _RECORD.size:
                break
            length, crc = _RECORD.unpack(header)
            payload = self._file.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            offset += _RECORD.size + length
            self.n_records += 1
        if offset < size:
            self.truncated_bytes = size - offset
            self._file.seek(offset)
            self._file.truncate(offset)
            self._file.flush()
            os.fsync(self._file.fileno())
        return offset

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> int:
        """Append one record; returns its 0-based record index.

        With ``fsync="always"`` the record is synced before returning;
        otherwise durability waits for the next :meth:`sync`.
        """
        if self._file.closed:
            raise WALError(f"{self.path} is closed")
        record = _RECORD.pack(len(payload), zlib.crc32(payload)) + payload
        if self.faults is not None:
            action = self.faults.at("wal_write", size=len(record))
            if action.keep_bytes is not None:
                # Torn write: a prefix reaches the disk, then the process dies.
                self._file.write(record[: action.keep_bytes])
                self._file.flush()
                os.fsync(self._file.fileno())
                from repro.durability.faults import SimulatedCrash

                raise SimulatedCrash(f"torn write at record {self.n_records}")
            if action.crash:
                from repro.durability.faults import SimulatedCrash

                raise SimulatedCrash(f"crash before record {self.n_records}")
        self._file.write(record)
        self._end += len(record)
        index = self.n_records
        self.n_records += 1
        obs_metrics.WAL_RECORDS.inc()
        obs_metrics.WAL_BYTES.inc(len(record))
        if self.fsync_policy == "always":
            self.sync()
        if self.faults is not None and self.faults.at("wal_record").crash:
            # Crash at a record boundary: the record is fully written
            # (flushed so recovery sees what a real page-cache survivor
            # would), but nothing after it happened.
            self._file.flush()
            from repro.durability.faults import SimulatedCrash

            raise SimulatedCrash(f"crash after record {index}")
        return index

    def sync(self) -> None:
        """Flush and (policy permitting) fsync the log — the commit point."""
        if self.faults is not None:
            action = self.faults.at("wal_sync")
            if action.crash:
                self._file.flush()
                from repro.durability.faults import SimulatedCrash

                raise SimulatedCrash("crash during sync")
            if action.fail_sync:
                raise OSError("injected fsync failure")
        sync_start = time.perf_counter()
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
        obs_metrics.WAL_FSYNC_SECONDS.observe(time.perf_counter() - sync_start)

    def reset(self) -> None:
        """Drop every record (post-snapshot truncation); keeps the magic."""
        if self._file.closed:
            raise WALError(f"{self.path} is closed")
        self._file.seek(len(MAGIC))
        self._file.truncate(len(MAGIC))
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
        self._end = len(MAGIC)
        self.n_records = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[bytes]:
        """Yield every record payload, in append order.

        Reads back from the file (not a cache), so it reflects exactly what
        recovery after a real crash would see.  Do not append mid-replay.
        """
        self._file.flush()
        with open(self.path, "rb") as reader:
            reader.seek(len(MAGIC))
            position = len(MAGIC)
            while position < self._end:
                header = reader.read(_RECORD.size)
                length, _ = _RECORD.unpack(header)
                yield reader.read(length)
                position += _RECORD.size + length
        self._file.seek(self._end)

    @property
    def size_bytes(self) -> int:
        """Bytes of record data currently in the log (magic excluded)."""
        return self._end - len(MAGIC)

    @property
    def closed(self) -> bool:
        return self._file.closed

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _fsync_directory(directory: Path) -> None:
    """Make a file creation/rename durable by syncing its directory."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
