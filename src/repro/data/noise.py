"""Noise injection (Section 8.4).

The qualitative analysis of the paper dirties clean datasets in two ways:

* **spread noise** — every cell is modified with a small probability
  (0.001 in the paper); a modified cell becomes, with equal probability,
  either another value from the active domain of its column or a typo;
* **concentrated noise** — the same cell-level corruption, but restricted to
  a small fraction of the tuples, so errors cluster in few rows.

Both models return a :class:`NoiseReport` describing exactly which cells were
touched, which the tests use to verify the advertised noise rates.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

import numpy as np

from repro.data.relation import Relation
from repro.data.types import ColumnType


@dataclass
class NoiseReport:
    """Record of the cells modified by a noise model."""

    modified_cells: list[tuple[int, str]] = field(default_factory=list)
    modified_tuples: set[int] = field(default_factory=set)
    typo_count: int = 0
    swap_count: int = 0

    @property
    def n_modified_cells(self) -> int:
        """Number of cells whose value changed."""
        return len(self.modified_cells)

    @property
    def n_modified_tuples(self) -> int:
        """Number of distinct rows with at least one modified cell."""
        return len(self.modified_tuples)


def add_spread_noise(
    relation: Relation,
    cell_probability: float = 0.001,
    seed: int | None = None,
) -> tuple[Relation, NoiseReport]:
    """Corrupt each cell independently with probability ``cell_probability``."""
    if not 0 <= cell_probability <= 1:
        raise ValueError("cell_probability must lie in [0, 1]")
    rng = random.Random(seed)
    dirty = relation.copy()
    report = NoiseReport()
    for column in relation.column_names:
        values = dirty.column(column).values.copy()
        column_type = dirty.column_type(column)
        domain = _active_domain(values)
        for row in range(relation.n_rows):
            if rng.random() >= cell_probability:
                continue
            values[row] = _corrupt_value(values[row], column_type, domain, rng, report)
            report.modified_cells.append((row, column))
            report.modified_tuples.add(row)
        dirty = dirty.with_values(column, values)
    return dirty, report


def add_concentrated_noise(
    relation: Relation,
    tuple_probability: float = 0.001,
    cells_per_tuple: int = 3,
    seed: int | None = None,
) -> tuple[Relation, NoiseReport]:
    """Corrupt a ``tuple_probability`` fraction of the rows.

    Every selected row gets ``cells_per_tuple`` of its cells corrupted, so the
    total number of modified values is comparable to the spread model while
    the errors stay concentrated in few tuples (the second dirty dataset of
    Section 8.4).
    """
    if not 0 <= tuple_probability <= 1:
        raise ValueError("tuple_probability must lie in [0, 1]")
    rng = random.Random(seed)
    report = NoiseReport()
    target_rows = [row for row in range(relation.n_rows) if rng.random() < tuple_probability]
    columns = {
        name: relation.column(name).values.copy() for name in relation.column_names
    }
    domains = {name: _active_domain(values) for name, values in columns.items()}
    for row in target_rows:
        chosen_columns = rng.sample(
            relation.column_names, min(cells_per_tuple, relation.n_columns)
        )
        for column in chosen_columns:
            column_type = relation.column_type(column)
            columns[column][row] = _corrupt_value(
                columns[column][row], column_type, domains[column], rng, report
            )
            report.modified_cells.append((row, column))
            report.modified_tuples.add(row)
    dirty = relation
    for column, values in columns.items():
        dirty = dirty.with_values(column, values)
    return dirty, report


# ----------------------------------------------------------------------
# Cell-level corruption
# ----------------------------------------------------------------------
def _active_domain(values: np.ndarray) -> list[object]:
    """Distinct values currently present in a column."""
    return list(dict.fromkeys(values.tolist()))


def _corrupt_value(
    value: object,
    column_type: ColumnType,
    domain: list[object],
    rng: random.Random,
    report: NoiseReport,
) -> object:
    """Replace one value by a domain swap or a typo (50/50, as in §8.4)."""
    if rng.random() < 0.5 and len(domain) > 1:
        report.swap_count += 1
        candidates = [candidate for candidate in domain if candidate != value]
        return rng.choice(candidates)
    report.typo_count += 1
    return _typo(value, column_type, rng)


def _typo(value: object, column_type: ColumnType, rng: random.Random) -> object:
    """Introduce a small random perturbation of a single value."""
    if column_type is ColumnType.STRING:
        text = str(value)
        if not text:
            return rng.choice(string.ascii_lowercase)
        position = rng.randrange(len(text))
        replacement = rng.choice(string.ascii_lowercase)
        return text[:position] + replacement + text[position + 1:]
    if column_type is ColumnType.INTEGER:
        magnitude = max(1, abs(int(value)) // 10)
        return int(value) + rng.choice([-1, 1]) * rng.randint(1, magnitude)
    perturbation = rng.choice([-1, 1]) * rng.uniform(0.05, 0.5) * (abs(float(value)) + 1.0)
    return float(value) + perturbation
