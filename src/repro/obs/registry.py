"""Dependency-free metrics registry: counters, gauges, histograms.

Design constraints (see ISSUE 9):

* **Lock-cheap.**  Each metric *child* (one label combination) owns its own
  ``threading.Lock``; an ``inc``/``observe`` takes exactly one uncontended
  lock plus a float add.  The registry-level lock is only taken when a new
  family or child is created, never on the hot path.
* **Thread-agnostic.**  The same child can be driven from asyncio callbacks,
  executor threads, and cluster reader threads; snapshots are consistent
  per-child (taken under the child lock).
* **Gateable.**  ``REPRO_OBS=0`` (or ``off``/``false``) disables the default
  registry: every mutator early-returns before touching a lock so the
  instrumented hot paths cost a single attribute load.  The overhead budget
  is enforced by ``benchmarks/bench_obs.py``.
* **Fixed buckets.**  Histograms use explicit upper bounds chosen at
  registration (no dynamic resizing); counts live in a numpy ``int64``
  array so Prometheus-style cumulative buckets are one ``cumsum`` away.

The module-level :func:`get_registry` returns the process-wide default
registry used by the instrumented subsystems; tests that need isolation
construct their own :class:`MetricsRegistry`.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "set_registry",
]

# Seconds, spanning ~10us .. 60s: wide enough for fsync latencies and whole
# remine runs without per-metric tuning.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.00001, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

# Row/batch sizes (powers of two-ish).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


def _check_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")


class _Child:
    """State for one label combination of a family."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class _CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild(_Child):
    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]) -> None:
        super().__init__()
        self._bounds = list(bounds)
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            counts = self._counts.copy()
            total = self._count
            total_sum = self._sum
        cumulative = np.cumsum(counts)
        buckets = [
            [bound, int(cumulative[i])] for i, bound in enumerate(self._bounds)
        ]
        buckets.append(["+Inf", int(cumulative[-1])])
        return {"count": int(total), "sum": float(total_sum), "buckets": buckets}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class _Family:
    """A named metric with a fixed label schema and per-combination children."""

    kind = "untyped"
    _child_cls: type[_Child] = _Child

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
    ) -> None:
        _check_name(name)
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()
        if not labelnames:
            # Pre-create the single child so unlabeled metrics never pay the
            # child-lookup dict access on the hot path.
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> _Child:
        return self._child_cls()

    def labels(self, *values: object) -> _Child:
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _items(self) -> list[tuple[tuple[str, ...], _Child]]:
        with self._lock:
            return sorted(self._children.items())


class Counter(_Family):
    """Monotonically increasing count (events, bytes, rows)."""

    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self._default.inc(amount)  # type: ignore[union-attr]

    def labels(self, *values: object) -> _CounterChild:  # type: ignore[override]
        return super().labels(*values)  # type: ignore[return-value]

    def inc_labels(self, *values: object, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self.labels(*values).inc(amount)

    @property
    def value(self) -> float:
        return self._default.value  # type: ignore[union-attr]

    def value_labels(self, *values: object) -> float:
        return self.labels(*values).value


class Gauge(_Family):
    """Point-in-time value (connections, backlog, live nodes/sec)."""

    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self._default.set(value)  # type: ignore[union-attr]

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self._default.inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self._default.dec(amount)  # type: ignore[union-attr]

    def labels(self, *values: object) -> _GaugeChild:  # type: ignore[override]
        return super().labels(*values)  # type: ignore[return-value]

    def set_labels(self, *values: object, value: float) -> None:
        if not self._registry.enabled:
            return
        self.labels(*values).set(value)

    @property
    def value(self) -> float:
        return self._default.value  # type: ignore[union-attr]

    def value_labels(self, *values: object) -> float:
        return self.labels(*values).value


class Histogram(_Family):
    """Fixed-bucket distribution (latencies in seconds, sizes in rows)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float],
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: histograms need at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: duplicate bucket bounds")
        self.buckets = tuple(bounds)
        super().__init__(registry, name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self._default.observe(value)  # type: ignore[union-attr]

    def labels(self, *values: object) -> _HistogramChild:  # type: ignore[override]
        return super().labels(*values)  # type: ignore[return-value]

    def observe_labels(self, *values: object, value: float) -> None:
        if not self._registry.enabled:
            return
        self.labels(*values).observe(value)


class MetricsRegistry:
    """Families keyed by name; registration is idempotent and type-checked."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _register(self, cls: type[_Family], name: str, help: str,
                  labelnames: Iterable[str], **kwargs: object) -> _Family:
        labels = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                return existing
            family = cls(self, name, help, labels, **kwargs)  # type: ignore[arg-type]
            self._families[name] = family
            return family

    def counter(self, name: str, help: str,
                labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str,
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(self, name: str, help: str,
                  labelnames: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)  # type: ignore[return-value]

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-friendly dump of every family (for the ``metrics`` wire op)."""
        out: dict[str, dict[str, object]] = {}
        for family in self.families():
            samples: list[dict[str, object]] = []
            for key, child in family._items():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, _HistogramChild):
                    sample: dict[str, object] = {"labels": labels}
                    sample.update(child.snapshot())
                else:
                    sample = {"labels": labels, "value": child.value}  # type: ignore[union-attr]
                samples.append(sample)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out


def _enabled_from_env() -> bool:
    return os.environ.get("REPRO_OBS", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


_default_registry = MetricsRegistry(enabled=_enabled_from_env())


def get_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation reports to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one.

    Only affects *new* family lookups — modules that cached family objects
    at import keep reporting to the old registry, so prefer toggling
    ``get_registry().enabled`` where possible.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
