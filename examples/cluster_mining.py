"""Distributed mining: two socket workers, one coordinator, exact results.

The smallest end-to-end cluster deployment, all on this machine:

1. stand up a :class:`~repro.cluster.local.LocalCluster` — a coordinator
   listening on localhost plus two real ``python -m repro.cluster.worker``
   subprocesses that dial in over TCP (on a real cluster you would start
   that command on each machine instead);
2. mine with :class:`~repro.core.miner.ADCMiner`, evidence tiles built
   over the workers and the enumeration's root subtrees farmed out too;
3. compare against a plain single-process ``method="tiled"`` run — the
   cluster invariant is *bit-identity*, not approximation, so the DC
   lists must match exactly.

Run with::

    PYTHONPATH=src python examples/cluster_mining.py
"""

from __future__ import annotations

from repro import ADCMiner, LocalCluster
from repro.data.datasets import generate_dataset

EPSILON = 0.01
ROWS = 400
MAX_DC_SIZE = 3  # keep the enumeration tractable on the dense tax space


def main() -> None:
    relation = generate_dataset("tax", n_rows=ROWS, seed=7).relation

    print(f"mining {ROWS} rows serially (method='tiled') ...")
    serial = ADCMiner("f1", EPSILON, max_dc_size=MAX_DC_SIZE).mine(relation)
    print(f"  {len(serial)} minimal ADCs in {serial.timings.total:.2f}s "
          f"(evidence {serial.timings.evidence:.2f}s)")

    print("spawning a coordinator + 2 socket workers on localhost ...")
    with LocalCluster(n_workers=2, transport="socket") as cluster:
        clustered = ADCMiner(
            "f1", EPSILON, max_dc_size=MAX_DC_SIZE,
            cluster=cluster, cluster_enumeration=True,
        ).mine(relation)
        print(f"  {len(clustered)} minimal ADCs in {clustered.timings.total:.2f}s "
              f"(evidence {clustered.timings.evidence:.2f}s over "
              f"{cluster.n_workers} workers, "
              f"{cluster.coordinator.bytes_received:,} result bytes back)")

    serial_dcs = [str(constraint) for constraint in serial.constraints]
    cluster_dcs = [str(constraint) for constraint in clustered.constraints]
    assert serial_dcs == cluster_dcs, "cluster mining must match serial exactly"
    print(f"cluster and serial DC lists are identical ({len(serial_dcs)} DCs):")
    for text in serial_dcs[:5]:
        print(f"  {text}")
    if len(serial_dcs) > 5:
        print(f"  ... and {len(serial_dcs) - 5} more")


if __name__ == "__main__":
    main()
